package dag

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/plan"
	"datachat/internal/skills"
	"datachat/internal/sqlengine"
)

// ExecOptions tunes how Run schedules work.
type ExecOptions struct {
	// Parallelism bounds the worker pool that executes independent DAG
	// branches. Values <= 0 mean runtime.GOMAXPROCS(0); 1 reproduces strict
	// serial execution (identical results and stats, by the §2.2 equivalence
	// property).
	Parallelism int
	// Retry re-attempts tasks that fail with transient errors, with capped
	// exponential backoff + jitter. The zero policy disables retrying: any
	// task error aborts the run, as before.
	Retry faults.RetryPolicy
	// Deadline bounds one Run's total (virtual) duration: a retry backoff
	// that would cross Now+Deadline is not taken and the task fails with
	// its last error. 0 means no deadline.
	Deadline time.Duration
	// Clock drives backoff sleeps and the deadline; nil means the wall
	// clock. Tests install a faults.VirtualClock so retry schedules
	// spanning minutes execute instantly.
	Clock faults.Clock
	// SQL tunes consolidated-fragment execution (e.g. DisableVectorized
	// forces the row reference path). The zero value uses engine defaults.
	SQL sqlengine.Options
	// StreamParallelism sets the morsel pipeline workers inside one streamed
	// SQL task (intra-operator parallelism, distinct from the inter-task
	// worker pool above). 0 inherits Parallelism (so a parallel DAG run also
	// parallelizes within its target fragment, defaulting to GOMAXPROCS);
	// 1 forces the serial pipeline; values > 1 set the worker count directly.
	StreamParallelism int
	// StreamMaxBufferedRows caps the rows streaming pipeline breakers may
	// buffer (sqlengine.StreamOptions.MaxBufferedRows). 0 means unlimited.
	StreamMaxBufferedRows int
	// StreamSpillDir is where budget overflow spills sorted/partitioned runs
	// ("" = the OS temp dir). Spilling engages only with a budget set.
	StreamSpillDir string
	// Stream, when non-nil, receives the target's result chunk-by-chunk. A
	// consolidated target fragment executes through the morsel pipeline and
	// forwards chunks as the engine produces them; any other target shape
	// (direct skill, cache hit, pinned result) re-chunks its materialized
	// table through the sink, so callers always observe the same protocol. A
	// sink error aborts the run. Chunks already forwarded are never re-sent,
	// even if the task retries after a transient failure.
	Stream func(chunk *dataset.Table) error
	// StreamChunkRows bounds the rows per forwarded chunk
	// (<= 0 means sqlengine.DefaultChunkRows).
	StreamChunkRows int
	// CostBudgetBytes caps one request's estimated cloud scan bytes: when
	// the cost model estimates more, the sample-substitution pass degrades
	// the most expensive scans to block samples (results annotated
	// Degraded, never cached). 0 means unlimited.
	CostBudgetBytes int64
}

// clock returns the configured time source.
func (o ExecOptions) clock() faults.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return faults.Real()
}

// task is one schedulable unit of a Run: a consolidated relational fragment
// executed as a single SQL statement (Figure 4), one direct skill
// application, or the republication of a plan-time cache hit.
type task struct {
	idx  int
	node *plan.Node     // the node whose output the task materializes
	frag *plan.Fragment // non-nil for consolidated SQL tasks

	key         string // sub-DAG cache key; "" when not cacheable
	cacheable   bool
	invalidates bool
	pinned      *skills.Result // plan-time cache hit: republish only

	deps       []int
	dependents []int

	// stream marks the run's target task: when ExecOptions.Stream is set its
	// result flows through the sink chunk-by-chunk. sunk/sunkAny track what
	// was already forwarded so a retried attempt never duplicates rows.
	stream  bool
	sunk    int
	sunkAny bool

	waiting int
	result  *skills.Result
}

// execPlan is the compiled form of one Run: the optimized logical plan plus
// tasks wired by dependency edges. Planning runs serially — lowering, every
// pass, and all cache probes happen before any worker starts, so key
// computation needs no locking.
type execPlan struct {
	logical *plan.Plan
	tasks   []*task
	byNode  map[NodeID]*task
}

// plan lowers the sub-DAG ending at target, runs the pass pipeline (see
// logicalPlan), and emits tasks: one per SQL fragment, one per remaining
// node. Nodes the cache probe pinned become republish-only tasks with their
// ancestors pruned from the plan entirely.
func (e *Executor) plan(g *Graph, target NodeID) (*execPlan, error) {
	lp, err := e.logicalPlan(g, target, false)
	if err != nil {
		return nil, err
	}
	p := &execPlan{logical: lp, byNode: map[NodeID]*task{}}
	owner := map[int]*task{}
	newTask := func(tail *plan.Node) *task {
		t := &task{idx: len(p.tasks), node: tail}
		p.tasks = append(p.tasks, t)
		return t
	}
	for i := range lp.Fragments {
		frag := &lp.Fragments[i]
		t := newTask(lp.Node(frag.Nodes[len(frag.Nodes)-1]))
		t.frag = frag
		for _, id := range frag.Nodes {
			owner[id] = t
		}
	}
	for _, n := range lp.Nodes {
		if owner[n.ID] != nil {
			continue
		}
		t := newTask(n)
		t.pinned = n.Pinned
		owner[n.ID] = t
	}
	for _, t := range p.tasks {
		t.key = t.node.Key
		t.cacheable = e.UseCache && t.key != ""
		members := []*plan.Node{t.node}
		if t.frag != nil {
			members = members[:0]
			for _, id := range t.frag.Nodes {
				members = append(members, lp.Node(id))
			}
		}
		depSeen := map[int]bool{}
		for _, m := range members {
			if m.Invalidates {
				t.invalidates = true
			}
			p.byNode[NodeID(m.ID)] = t
			for _, aid := range m.Absorbed {
				p.byNode[NodeID(aid)] = t
			}
			for _, in := range m.Inputs {
				if in.Node == plan.External {
					continue
				}
				dep := owner[in.Node]
				if dep == nil || dep == t {
					continue
				}
				if !depSeen[dep.idx] {
					depSeen[dep.idx] = true
					t.deps = append(t.deps, dep.idx)
					dep.dependents = append(dep.dependents, t.idx)
				}
			}
		}
	}
	if t := p.byNode[target]; t != nil {
		t.stream = true
	}
	return p, nil
}

// isCancellation reports whether err is (or wraps) context cancellation —
// the collateral error of a sibling task cancelled mid-retry, less
// informative than whatever caused the cancel.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runPlan executes a compiled plan on a bounded worker pool. Workers pull
// ready tasks (all dependencies satisfied), execute them, publish their
// outputs, and release dependents. The first error stops scheduling and
// cancels the run context, which aborts the retry backoffs of in-flight
// siblings; attempts already executing finish before runPlan returns. The
// recorded first error prefers a task's real failure over the cancellation
// errors it causes downstream.
func (e *Executor) runPlan(ctx context.Context, p *execPlan, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.tasks) {
		workers = len(p.tasks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var deadline time.Time
	if e.Options.Deadline > 0 {
		deadline = e.Options.clock().Now().Add(e.Options.Deadline)
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []*task
		done     int
		active   int
		firstErr error
	)
	for _, t := range p.tasks {
		t.waiting = len(t.deps)
		if t.waiting == 0 {
			ready = append(ready, t)
		}
	}

	worker := func() {
		mu.Lock()
		for {
			if firstErr != nil || done == len(p.tasks) {
				mu.Unlock()
				return
			}
			if len(ready) == 0 {
				if active == 0 {
					// Cannot happen for a well-formed plan (it is a DAG);
					// guard so a planner bug stalls loudly, not silently.
					firstErr = fmt.Errorf("dag: internal: scheduler stalled with %d/%d tasks done", done, len(p.tasks))
					cond.Broadcast()
					mu.Unlock()
					return
				}
				cond.Wait()
				continue
			}
			t := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			active++
			mu.Unlock()

			res, err := e.executeTask(ctx, p, t, deadline)

			mu.Lock()
			active--
			done++
			if err != nil {
				if firstErr == nil || (isCancellation(firstErr) && !isCancellation(err)) {
					firstErr = err
				}
				cancel()
			} else {
				t.result = res
				for _, di := range t.dependents {
					dep := p.tasks[di]
					dep.waiting--
					if dep.waiting == 0 {
						ready = append(ready, dep)
					}
				}
			}
			cond.Broadcast()
		}
	}

	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	return firstErr
}

// executeTask runs one task: republish a pinned plan-time cache hit, or
// execute — through the cache for cacheable tasks, sharing identical
// in-flight computations across sessions — and publish the output into
// the session context. The retry loop runs inside the cache's singleflight,
// so concurrent callers of the same key wait out the leader's retries
// instead of racing their own.
func (e *Executor) executeTask(ctx context.Context, p *execPlan, t *task, deadline time.Time) (*skills.Result, error) {
	var res *skills.Result
	switch {
	case t.pinned != nil:
		res = t.pinned
	case t.cacheable:
		r, hit, err := e.cache.Do(t.key, func() (*skills.Result, error) {
			return e.execTaskRetry(ctx, t, deadline)
		})
		if err != nil {
			return nil, err
		}
		if hit {
			e.counters.cacheHits.Add(1)
		} else {
			e.counters.cacheMisses.Add(1)
		}
		res = r
	default:
		r, err := e.execTaskRetry(ctx, t, deadline)
		if err != nil {
			return nil, err
		}
		res = r
	}
	if res != nil && res.Table != nil && !res.Degraded && t.node.Substituted {
		// A budget-substituted scan ran as a block sample: label the answer.
		// The substituted node is volatile and keyless, so the degraded
		// result was never stored by the cache arm above.
		wrapped := *res
		wrapped.Degraded = true
		wrapped.DegradedNote = t.node.SubstituteNote
		res = &wrapped
		e.counters.degraded.Add(1)
	}
	if res != nil && !res.Degraded {
		// Honesty propagates: anything computed from a degraded input is
		// itself degraded. Dependency results were published before this
		// task became ready, so the reads are ordered by the scheduler lock.
		for _, di := range t.deps {
			if dep := p.tasks[di].result; dep != nil && dep.Degraded {
				wrapped := *res
				wrapped.Degraded = true
				wrapped.DegradedNote = dep.DegradedNote
				res = &wrapped
				break
			}
		}
	}
	if e.CostModel && e.statsReg != nil && t.pinned == nil &&
		res != nil && res.Table != nil && !res.Degraded && t.node.Fingerprint != "" {
		// Feed measured output size back to the cost model; degraded
		// (sampled) outputs would poison full-scan estimates, so skip them.
		e.statsReg.Observe(t.node.Fingerprint, plan.ObservedStats{
			Rows:  int64(res.Table.NumRows()),
			Bytes: plan.ApproxTableBytes(res.Table),
		})
	}
	// A streamed target whose chunks did not flow live — a plan-time pin, a
	// cache hit, a direct skill, or a fragment that fell back — still owes
	// the sink its rows: re-chunk the materialized table so remote clients
	// observe one protocol regardless of where the result came from.
	if t.stream && e.Options.Stream != nil && !t.sunkAny && res != nil && res.Table != nil {
		if err := e.streamTable(t, res.Table); err != nil {
			return nil, err
		}
	}
	e.materialize(t.node, res)
	if t.invalidates {
		// Snapshot creation/refresh changes source data out from under every
		// cached key; bump the generation so nothing stale survives.
		e.cache.Invalidate()
	}
	return res, nil
}

// execTaskRetry executes a task body under the run's retry policy: transient
// errors re-attempt with capped backoff + jitter (per-task jitter streams are
// decorrelated by task index), permanent errors and plain execution errors
// fail immediately, and a backoff that would cross the run deadline is not
// taken.
func (e *Executor) execTaskRetry(ctx context.Context, t *task, deadline time.Time) (*skills.Result, error) {
	pol := e.Options.Retry
	pol.Seed += int64(t.idx)
	res, stats, err := faults.Do(ctx, e.Options.clock(), pol, deadline, nil,
		func() (*skills.Result, error) { return e.execTaskBody(ctx, t) })
	if stats.Attempts > 1 {
		e.counters.retries.Add(int64(stats.Attempts - 1))
	}
	if err != nil {
		if faults.IsPermanent(err) {
			e.counters.permanentFailures.Add(1)
		}
		return nil, err
	}
	if res != nil && res.Degraded {
		e.counters.degraded.Add(1)
	}
	return res, nil
}

func (e *Executor) execTaskBody(ctx context.Context, t *task) (*skills.Result, error) {
	if t.frag != nil {
		if t.stream && e.Options.Stream != nil {
			return e.execChainStream(ctx, t)
		}
		return e.execChain(t.frag)
	}
	return e.execDirect(t.node)
}

// streamChunkRows returns the configured sink chunk size.
func (e *Executor) streamChunkRows() int {
	if e.Options.StreamChunkRows > 0 {
		return e.Options.StreamChunkRows
	}
	return sqlengine.DefaultChunkRows
}

// streamParallelism resolves the morsel worker count for a streamed fragment:
// an explicit StreamParallelism wins; otherwise the fragment inherits the DAG
// pool setting, so Parallelism 1 keeps the whole run serial and the default
// parallel run also parallelizes inside its target (-1 = GOMAXPROCS to the
// engine).
func (e *Executor) streamParallelism() int {
	if p := e.Options.StreamParallelism; p != 0 {
		return p
	}
	if e.Options.Parallelism <= 0 {
		return -1
	}
	return e.Options.Parallelism
}

// emitChunk forwards one chunk to the sink, skipping any prefix a previous
// attempt of the same task already delivered. seen is the running row count
// of the current attempt before this chunk.
func (e *Executor) emitChunk(t *task, chunk *dataset.Table, seen int) error {
	n := chunk.NumRows()
	if n == 0 {
		// Empty chunks only exist to carry the schema; one is enough.
		if t.sunkAny {
			return nil
		}
		if err := e.Options.Stream(chunk); err != nil {
			return err
		}
		t.sunkAny = true
		e.counters.streamedChunks.Add(1)
		return nil
	}
	if seen+n <= t.sunk {
		return nil
	}
	if seen < t.sunk {
		chunk = chunk.Window(t.sunk-seen, n)
	}
	if err := e.Options.Stream(chunk); err != nil {
		return err
	}
	t.sunk = seen + n
	t.sunkAny = true
	e.counters.streamedChunks.Add(1)
	e.counters.streamedRows.Add(int64(chunk.NumRows()))
	return nil
}

// streamTable re-chunks a materialized table through the sink (the cache-hit
// and direct-skill arm of target streaming).
func (e *Executor) streamTable(t *task, tab *dataset.Table) error {
	n := tab.NumRows()
	if n == 0 {
		return e.emitChunk(t, tab, 0)
	}
	chunk := e.streamChunkRows()
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		if err := e.emitChunk(t, tab.Window(off, end), off); err != nil {
			return err
		}
	}
	return nil
}

// execChainStream runs the target consolidated fragment through the morsel
// pipeline, forwarding each chunk to the sink as the engine produces it while
// still assembling the full table for materialization and the sub-DAG cache.
// Fallback shapes are handled inside the engine (the stream re-chunks a
// materialized execution), so the rows — and their order — always match
// execChain's.
func (e *Executor) execChainStream(ctx context.Context, t *task) (*skills.Result, error) {
	frag := t.frag
	if frag.Base.Node == plan.External {
		if _, err := e.Ctx.Dataset(frag.Base.Name); err != nil {
			return nil, fmt.Errorf("dag: node %d: %w", frag.Nodes[0], err)
		}
	}
	par := e.streamParallelism()
	if par < 0 && e.CostModel && frag.EstBaseRows > 0 {
		// Adaptive fan-out: with no explicit worker ask, size the morsel
		// pool from the estimated base cardinality instead of bare
		// GOMAXPROCS, so small inputs skip the fan-out overhead.
		par = plan.AdaptiveWorkers(frag.EstBaseRows, runtime.GOMAXPROCS(0))
	}
	rs, err := sqlengine.ExecStreamStmt(e.Ctx, frag.Builder.Stmt(), sqlengine.StreamOptions{
		Options:         e.Options.SQL,
		ChunkRows:       e.streamChunkRows(),
		Parallelism:     par,
		MaxBufferedRows: e.Options.StreamMaxBufferedRows,
		SpillDir:        e.Options.StreamSpillDir,
		Ctx:             ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("dag: consolidated task %q: %w", frag.SQL, err)
	}
	seen := 0
	table, err := rs.Drain(func(chunk *dataset.Table) error {
		at := seen
		seen += chunk.NumRows()
		return e.emitChunk(t, chunk, at)
	})
	e.counters.notePeakBuffered(int64(rs.PeakBufferedRows()))
	e.counters.streamWorkers.Store(int64(rs.Workers()))
	if ss := rs.SpillStats(); ss.Runs > 0 {
		e.counters.spillRuns.Add(int64(ss.Runs))
		e.counters.spilledRows.Add(int64(ss.SpilledRows))
		e.counters.spilledBytes.Add(ss.SpilledBytes)
		if e.CostModel && e.statsReg != nil {
			e.statsReg.ObserveSpill(t.node.Fingerprint)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("dag: consolidated task %q: %w", frag.SQL, err)
	}
	e.counters.tasksRun.Add(1)
	e.counters.sqlTasks.Add(1)
	e.counters.nodesConsolidated.Add(int64(frag.DagNodes))
	e.counters.queryBlocks.Add(int64(frag.Blocks))
	return &skills.Result{Table: table, Message: "via " + frag.SQL}, nil
}

// materialize publishes a node result into the session datasets under its
// output name, so sibling branches and later requests can reference it.
func (e *Executor) materialize(n *plan.Node, res *skills.Result) {
	if res == nil || res.Table == nil {
		return
	}
	name := n.OutputName()
	e.Ctx.PutDataset(name, res.Table.WithName(name))
	e.counters.rowsMaterialized.Add(int64(res.Table.NumRows()))
	// Session-wide CSE folded duplicate producers into this node; publish
	// the one result under every name the duplicates answered to.
	for _, alias := range n.Aliases {
		e.Ctx.PutDataset(alias, res.Table.WithName(alias))
	}
}

// execDirect applies one skill node directly.
func (e *Executor) execDirect(n *plan.Node) (*skills.Result, error) {
	for _, in := range n.Inputs {
		if in.Node == plan.External {
			if _, err := e.Ctx.Dataset(in.Name); err != nil {
				return nil, fmt.Errorf("dag: node %d: %w", n.ID, err)
			}
		}
	}
	res, err := e.Registry.Execute(e.Ctx, n.Invocation())
	if err != nil {
		return nil, fmt.Errorf("dag: node %d (%s): %w", n.ID, n.Skill, err)
	}
	e.counters.tasksRun.Add(1)
	e.counters.directTasks.Add(1)
	return res, nil
}

// execChain runs a consolidated relational fragment as one flattened SQL
// task. The fragment's query was compiled by the consolidation pass; here it
// only gets executed and counted.
func (e *Executor) execChain(frag *plan.Fragment) (*skills.Result, error) {
	if frag.Base.Node == plan.External {
		if _, err := e.Ctx.Dataset(frag.Base.Name); err != nil {
			return nil, fmt.Errorf("dag: node %d: %w", frag.Nodes[0], err)
		}
	}
	table, err := sqlengine.ExecStmtOptions(e.Ctx, frag.Builder.Stmt(), e.Options.SQL)
	if err != nil {
		return nil, fmt.Errorf("dag: consolidated task %q: %w", frag.SQL, err)
	}
	e.counters.tasksRun.Add(1)
	e.counters.sqlTasks.Add(1)
	e.counters.nodesConsolidated.Add(int64(frag.DagNodes))
	e.counters.queryBlocks.Add(int64(frag.Blocks))
	return &skills.Result{Table: table, Message: "via " + frag.SQL}, nil
}
