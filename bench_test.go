// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus the ablations DESIGN.md calls out. Domain results (accuracy, query
// blocks, bytes scanned) are attached to each benchmark via ReportMetric so
// `go test -bench=. -benchmem` prints the reproduced numbers alongside the
// timings. EXPERIMENTS.md records a reference run.
package datachat_test

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/experiments"
	"datachat/internal/gel"
	"datachat/internal/nl2code"
	"datachat/internal/pyapi"
	"datachat/internal/skills"
	"datachat/internal/snapshot"
	"datachat/internal/spider"
	"datachat/internal/sqlengine"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func getSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite(1) })
	return suite
}

// BenchmarkTable1SkillCatalog builds the skill registry and renders the
// Table 1 catalog.
func BenchmarkTable1SkillCatalog(b *testing.B) {
	var nSkills int
	for i := 0; i < b.N; i++ {
		reg := skills.NewRegistry()
		byCat := reg.ByCategory()
		nSkills = 0
		for _, defs := range byCat {
			nSkills += len(defs)
		}
	}
	b.ReportMetric(float64(nSkills), "skills")
}

// BenchmarkTable2ExecutionAccuracy runs the Table 2 experiment (balanced
// per-zone sample) and reports the mean execution accuracies.
func BenchmarkTable2ExecutionAccuracy(b *testing.B) {
	s := getSuite()
	var result *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := s.Table2(experiments.Table2Options{PerZone: 25, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		result = r
	}
	b.ReportMetric(result.SpiderMean, "spider-meanEA")
	b.ReportMetric(result.CustomMean, "custom-meanEA")
	for i, z := range spider.Zones() {
		b.ReportMetric(result.Spider[i].MeanEA, "spider-"+zoneSlug(z))
		b.ReportMetric(result.Custom[i].MeanEA, "custom-"+zoneSlug(z))
	}
}

func zoneSlug(z spider.Zone) string {
	return strings.NewReplacer("(", "", ")", "", " ", "", ",", "-").Replace(z.String()) + "-EA"
}

// BenchmarkFigure7Characterization characterizes the full 1,040-sample dev
// split and reports the per-zone counts.
func BenchmarkFigure7Characterization(b *testing.B) {
	s := getSuite()
	var r *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = s.Figure7(42)
	}
	for _, z := range spider.Zones() {
		b.ReportMetric(float64(r.Counts[z]), strings.TrimSuffix(zoneSlug(z), "-EA"))
	}
}

// BenchmarkFigure1VisualizeCharts runs the Figure 1 Visualize fan-out over
// a collisions-style table.
func BenchmarkFigure1VisualizeCharts(b *testing.B) {
	reg := skills.NewRegistry()
	ctx := skills.NewContext()
	ctx.Datasets["parties"] = collisionsTable(5000)
	var nCharts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := reg.Execute(ctx, skills.Invocation{Skill: "Visualize", Inputs: []string{"parties"},
			Args: skills.Args{"kpi": "at_fault", "by": []string{"party_age", "party_sex", "cellphone_in_use"}}})
		if err != nil {
			b.Fatal(err)
		}
		nCharts = len(res.Charts)
	}
	b.ReportMetric(float64(nCharts), "charts")
}

// BenchmarkFigure2GDPRecipe executes the paper's 10-step GEL recipe end to
// end, including the time-series forecast and the final line chart.
func BenchmarkFigure2GDPRecipe(b *testing.B) {
	const url = "https://fred.example/fredgraph.csv"
	csv := gdpCSV()
	reg := skills.NewRegistry()
	lines := []string{
		"Load data from the URL " + url,
		"Keep the rows where DATE is between the dates 01-01-2005 to 12-31-2020",
		"Predict time series with measure columns GDPC1 for the next 12 values of DATE",
		"Keep the columns DATE, GDPC1, RecordType",
		"Use the dataset fredgraph, version 1",
		"Create a new column RecordType with text Actual",
		"Keep the columns DATE, GDPC1, RecordType",
		"Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
		"Keep the rows where DATE is after Today - 10 years",
		"Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
	}
	var series int
	for i := 0; i < b.N; i++ {
		ctx := skills.NewContext()
		ctx.Files[url] = csv
		parser := gel.MustNewParser(reg)
		parser.Now = time.Date(2023, 6, 18, 0, 0, 0, 0, time.UTC)
		runner := gel.NewRunner(parser, dag.NewExecutor(reg, ctx), lines)
		steps, err := runner.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		series = len(steps[len(steps)-1].Result.Charts[0].Series)
	}
	b.ReportMetric(float64(series), "series")
}

// BenchmarkFigure3EntryPaths measures the three skill-entry paths (direct
// invocation, Python API parse, GEL parse) converging on the same request.
func BenchmarkFigure3EntryPaths(b *testing.B) {
	reg := skills.NewRegistry()
	parser := gel.MustNewParser(reg)
	b.Run("form", func(b *testing.B) {
		ctx := skills.NewContext()
		ctx.Datasets["parties"] = collisionsTable(2000)
		inv := skills.Invocation{Skill: "Compute", Inputs: []string{"parties"},
			Args: skills.Args{"aggregates": []string{"count of records as NumberOfCases"},
				"for_each": []string{"party_sobriety"}}}
		for i := 0; i < b.N; i++ {
			if _, err := reg.Execute(ctx, inv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gel-parse", func(b *testing.B) {
		line := "Compute the count of records for each party_sobriety and call the computed columns NumberOfCases"
		for i := 0; i < b.N; i++ {
			if _, err := parser.Parse(line); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("python-parse", func(b *testing.B) {
		code := `parties.compute(aggregates = [Count("*", as_name="NumberOfCases")], for_each = ["party_sobriety"])`
		for i := 0; i < b.N; i++ {
			if _, err := parsePy(code); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure4Consolidation executes Load→Filter→Limit with
// consolidation on and off, reporting query blocks.
func BenchmarkFigure4Consolidation(b *testing.B) {
	reg := skills.NewRegistry()
	for _, consolidate := range []bool{true, false} {
		name := "consolidated"
		if !consolidate {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			var blocks float64
			for i := 0; i < b.N; i++ {
				ctx := skills.NewContext()
				ctx.Datasets["collisions"] = collisionsTable(20000)
				ex := dag.NewExecutor(reg, ctx)
				ex.Consolidate = consolidate
				ex.UseCache = false
				g := dag.NewGraph()
				g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"collisions"},
					Args: skills.Args{"condition": "party_age > 40"}, Output: "f"})
				last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
					Args: skills.Args{"count": 100}})
				if _, err := ex.Run(g, last); err != nil {
					b.Fatal(err)
				}
				if consolidate {
					blocks = float64(ex.Stats().QueryBlocks)
				} else {
					blocks = float64(ex.Stats().TasksRun)
				}
			}
			b.ReportMetric(blocks, "blocks")
		})
	}
}

// BenchmarkSection22NestedVsFlattened executes a deep projection chain as
// one flattened query vs nested per-step execution (§2.2's claim).
func BenchmarkSection22NestedVsFlattened(b *testing.B) {
	r, err := experiments.Consolidation(30000, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	if !r.SameResult {
		b.Fatal("nested and flattened disagree")
	}
	b.Run("flattened", func(b *testing.B) {
		benchChain(b, true)
	})
	b.Run("nested-steps", func(b *testing.B) {
		benchChain(b, false)
	})
	// The paper's exact comparison: ONE SQL statement, either a single
	// flattened block or the deep nested-subquery equivalent.
	b.Run("nested-sql", func(b *testing.B) {
		benchChainSQL(b, true)
	})
	b.Run("flattened-sql", func(b *testing.B) {
		benchChainSQL(b, false)
	})
}

// benchChainSQL executes the projection chain as one SQL statement, built
// with the nest-every-step baseline or the consolidating builder.
func benchChainSQL(b *testing.B, alwaysNest bool) {
	const steps = 8
	ctx := skills.NewContext()
	ctx.Datasets["base"] = wideTable(30000, steps+2)
	builder := skills.NewQueryBuilder("base")
	builder.AlwaysNest = alwaysNest
	for s := 0; s < steps; s++ {
		cols := []string{"id"}
		for c := 0; c < steps-s; c++ {
			cols = append(cols, fmt.Sprintf("c%d", c))
		}
		builder.Project(cols)
	}
	stmt := builder.Stmt()
	blocks := float64(sqlengine.CountSelectBlocks(stmt))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlengine.ExecStmt(ctx, stmt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(blocks, "blocks")
}

func benchChain(b *testing.B, consolidate bool) {
	reg := skills.NewRegistry()
	const steps = 8
	for i := 0; i < b.N; i++ {
		ctx := skills.NewContext()
		ctx.Datasets["base"] = wideTable(30000, steps+2)
		ex := dag.NewExecutor(reg, ctx)
		ex.Consolidate = consolidate
		// Disable fusion too: the chain is adjacent same-skill projections,
		// and the naive baseline must execute them one step at a time.
		ex.Fuse = consolidate
		ex.UseCache = false
		g := dag.NewGraph()
		prev := "base"
		var last dag.NodeID
		for s := 0; s < steps; s++ {
			cols := []string{"id"}
			for c := 0; c < steps-s; c++ {
				cols = append(cols, fmt.Sprintf("c%d", c))
			}
			out := fmt.Sprintf("p%d", s)
			last = g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{prev},
				Args: skills.Args{"columns": cols}, Output: out})
			prev = out
		}
		if _, err := ex.Run(g, last); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Slicing slices a branchy exploratory DAG down to one
// artifact's recipe.
func BenchmarkFigure5Slicing(b *testing.B) {
	var r *experiments.SlicingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Slicing(15)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Before), "nodes-before")
	b.ReportMetric(float64(r.After), "nodes-after")
}

// BenchmarkFigure6NL2CodePipeline runs the full NL2Code pipeline for one
// request (retrieval, prompt, generation, checking).
func BenchmarkFigure6NL2CodePipeline(b *testing.B) {
	s := getSuite()
	var sales *spider.Domain
	for _, d := range s.Domains {
		if d.Name == "sales" {
			sales = d
		}
	}
	var steps int
	for i := 0; i < b.N; i++ {
		resp, err := s.System.Generate(nl2code.Request{
			Question: "Which 3 region have the highest total price where status is Refunded?",
			Tables:   sales.Tables, Layer: sales.Layer,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps = len(resp.Program)
	}
	b.ReportMetric(float64(steps), "program-steps")
}

// BenchmarkSection3SamplingCost measures scan cost at full/10%/1% rates and
// reports the relative cost (the §3 "10× cheaper" claim).
func BenchmarkSection3SamplingCost(b *testing.B) {
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 4096)
	rows := 500_000
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 1000)
	}
	if err := db.CreateTable(dataset.MustNewTable("iot_events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("reading", vals, nil))); err != nil {
		b.Fatal(err)
	}
	db.Meter().Reset()
	if _, err := db.Scan("iot_events"); err != nil {
		b.Fatal(err)
	}
	fullBytes := db.Meter().BytesScanned()
	for _, rate := range []float64{1, 0.1, 0.01} {
		b.Run("rate="+strconv.FormatFloat(rate, 'g', -1, 64), func(b *testing.B) {
			var relative float64
			for i := 0; i < b.N; i++ {
				db.Meter().Reset()
				if rate >= 1 {
					if _, err := db.Scan("iot_events"); err != nil {
						b.Fatal(err)
					}
				} else if _, err := db.SampleBlocks("iot_events", rate, 7); err != nil {
					b.Fatal(err)
				}
				relative = float64(db.Meter().BytesScanned()) / float64(fullBytes)
			}
			b.ReportMetric(relative, "relative-cost")
		})
	}
}

// BenchmarkSection3SnapshotIteration contrasts iterating a query against
// the cloud (billed per scan) vs against a snapshot (free after the pull).
func BenchmarkSection3SnapshotIteration(b *testing.B) {
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 4096)
	rows := 100_000
	ids := make([]int64, rows)
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := db.CreateTable(dataset.MustNewTable("events",
		dataset.IntColumn("id", ids, nil))); err != nil {
		b.Fatal(err)
	}
	store := snapshot.NewStore(50)
	if _, err := store.Create("events", db, "events", 1, 7); err != nil {
		b.Fatal(err)
	}
	const query = "SELECT COUNT(*) AS n FROM events WHERE id > 50000"
	b.Run("cloud", func(b *testing.B) {
		db.Meter().Reset()
		for i := 0; i < b.N; i++ {
			if _, err := sqlengine.Exec(db, query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(db.Meter().BytesScanned())/float64(b.N), "bytes-billed/op")
	})
	b.Run("snapshot", func(b *testing.B) {
		db.Meter().Reset()
		for i := 0; i < b.N; i++ {
			if _, err := sqlengine.Exec(store, query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(db.Meter().BytesScanned())/float64(b.N), "bytes-billed/op")
	})
}

// BenchmarkAblationDAGCache measures repeated execution of a shared
// sub-DAG with the result cache on and off.
func BenchmarkAblationDAGCache(b *testing.B) {
	reg := skills.NewRegistry()
	for _, cached := range []bool{true, false} {
		name := "cache-on"
		if !cached {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			ctx := skills.NewContext()
			ctx.Datasets["base"] = wideTable(50000, 4)
			ex := dag.NewExecutor(reg, ctx)
			ex.UseCache = cached
			g := dag.NewGraph()
			g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
				Args: skills.Args{"condition": "c0 > 100"}, Output: "f"})
			last := g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"f"},
				Args: skills.Args{"aggregates": []string{"avg of c1 as m"}}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Run(g, last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBranchExecution runs a branchy DAG (a shared filter
// fanning out into independent filter→derive→sort branches that reconverge
// in a concatenation) serially and on the parallel scheduler. The cache is
// invalidated each iteration so every run recomputes; the duplicate branch
// still dedups in-run through the cache, whose counters are reported.
func BenchmarkParallelBranchExecution(b *testing.B) {
	reg := skills.NewRegistry()
	const branches = 6
	buildBranchy := func(g *dag.Graph) dag.NodeID {
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
			Args: skills.Args{"condition": "c0 >= 0"}, Output: "shared"})
		tails := make([]string, 0, branches+1)
		for i := 0; i < branches; i++ {
			fOut := fmt.Sprintf("b%df", i)
			g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"shared"},
				Args: skills.Args{"condition": fmt.Sprintf("c0 > %d", (i*37)%200)}, Output: fOut})
			cOut := fmt.Sprintf("b%dc", i)
			g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{fOut},
				Args: skills.Args{"name": fmt.Sprintf("w%d", i), "formula": fmt.Sprintf("c1 * %d", i+2)}, Output: cOut})
			tail := fmt.Sprintf("b%dt", i)
			g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{cOut},
				Args: skills.Args{"columns": "id"}, Output: tail})
			tails = append(tails, tail)
		}
		// A branch identical to branch 0 up to output names: in-run cache
		// dedup (structural signatures ignore output names) serves it.
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"shared"},
			Args: skills.Args{"condition": "c0 > 0"}, Output: "dupf"})
		g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{"dupf"},
			Args: skills.Args{"name": "w0", "formula": "c1 * 2"}, Output: "dupc"})
		g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{"dupc"},
			Args: skills.Args{"columns": "id"}, Output: "dupt"})
		tails = append(tails, "dupt")
		return g.Add(skills.Invocation{Skill: "Concatenate", Inputs: tails, Output: "all"})
	}
	for _, mode := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			ctx := skills.NewContext()
			ctx.Datasets["base"] = wideTable(40000, 4)
			ex := dag.NewExecutor(reg, ctx)
			ex.Options.Parallelism = mode.parallelism
			g := dag.NewGraph()
			last := buildBranchy(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex.InvalidateCache()
				if _, err := ex.Run(g, last); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cs := ex.CacheStats()
			b.ReportMetric(float64(cs.Hits)/float64(b.N), "cache-hits/op")
			b.ReportMetric(float64(cs.Misses)/float64(b.N), "cache-misses/op")
			b.ReportMetric(float64(cs.Evictions)/float64(b.N), "cache-evictions/op")
			// Speedup is bounded by the machine: on GOMAXPROCS=1 the two
			// modes time alike; report the proc count so runs are comparable.
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
		})
	}
}

// BenchmarkCacheContention hammers one shared sub-DAG cache from all procs
// with a keyspace larger than its capacity, mixing singleflight leaders,
// followers, hits, and evictions — the shape a busy multi-session platform
// puts on the cache.
func BenchmarkCacheContention(b *testing.B) {
	c := dag.NewCache(64)
	shared := dataset.MustNewTable("r", dataset.IntColumn("x", []int64{1, 2, 3}, nil))
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("k%d", i%96)
			if _, _, err := c.Do(key, func() (*skills.Result, error) {
				return &skills.Result{Table: shared}, nil
			}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	cs := c.Stats()
	total := cs.Hits + cs.Misses
	if total > 0 {
		b.ReportMetric(float64(cs.Hits)/float64(total), "hit-ratio")
	}
	b.ReportMetric(float64(cs.Evictions), "evictions")
}

// BenchmarkAblationSemanticLayer reports accuracy on high-misalignment
// questions with and without the semantic layer in prompts (§4.2).
func BenchmarkAblationSemanticLayer(b *testing.B) {
	s := getSuite()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.AblateSemanticLayer(10, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DefaultAccuracy, "with-SL")
	b.ReportMetric(r.AblatedAccuracy, "without-SL")
}

// BenchmarkAblationExampleRetrieval compares similarity+diversity example
// retrieval against random selection (§4.3).
func BenchmarkAblationExampleRetrieval(b *testing.B) {
	s := getSuite()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.AblateRetrieval(10, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DefaultAccuracy, "similar-diverse")
	b.ReportMetric(r.AblatedAccuracy, "random")
}

// BenchmarkAblationProgramChecker measures the checker's accuracy
// contribution (§4.5).
func BenchmarkAblationProgramChecker(b *testing.B) {
	s := getSuite()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.AblateChecker(10, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DefaultAccuracy, "with-checker")
	b.ReportMetric(r.AblatedAccuracy, "without-checker")
}

// ---- fixtures ----

func collisionsTable(n int) *dataset.Table {
	atFault := make([]string, n)
	ages := make([]int64, n)
	sexes := make([]string, n)
	phone := make([]string, n)
	sobriety := make([]string, n)
	levels := []string{"had not been drinking", "had been drinking", "impairment unknown", "not applicable"}
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			atFault[i] = "at fault"
		} else {
			atFault[i] = "not at fault"
		}
		ages[i] = int64(16 + (i*13)%60)
		if i%2 == 0 {
			sexes[i] = "male"
		} else {
			sexes[i] = "female"
		}
		if i%6 == 0 {
			phone[i] = "in use"
		} else {
			phone[i] = "not in use"
		}
		sobriety[i] = levels[i%4]
	}
	return dataset.MustNewTable("parties",
		dataset.StringColumn("at_fault", atFault, nil),
		dataset.IntColumn("party_age", ages, nil),
		dataset.StringColumn("party_sex", sexes, nil),
		dataset.StringColumn("cellphone_in_use", phone, nil),
		dataset.StringColumn("party_sobriety", sobriety, nil),
	)
}

func wideTable(rows, extraCols int) *dataset.Table {
	cols := []*dataset.Column{}
	ids := make([]int64, rows)
	for i := range ids {
		ids[i] = int64(i)
	}
	cols = append(cols, dataset.IntColumn("id", ids, nil))
	for c := 0; c < extraCols; c++ {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = float64((i * (c + 3)) % 997)
		}
		cols = append(cols, dataset.FloatColumn(fmt.Sprintf("c%d", c), vals, nil))
	}
	return dataset.MustNewTable("base", cols...)
}

func gdpCSV() string {
	var b strings.Builder
	b.WriteString("DATE,GDPC1\n")
	year, month := 1995, 1
	for q := 0; q < 104; q++ {
		val := 11000.0 + 46.5*float64(q)
		if year == 2020 {
			val -= 900
		}
		b.WriteString(time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC).Format("2006-01-02"))
		b.WriteString(",")
		b.WriteString(strconv.FormatFloat(val, 'f', 1, 64))
		b.WriteString("\n")
		month += 3
		if month > 12 {
			month = 1
			year++
		}
	}
	return b.String()
}

func parsePy(code string) (any, error) {
	return pyapi.Parse(code)
}

// BenchmarkAblationPromptBudget measures the §4.4 token-budget trade-off:
// a starved prompt loses the semantic hints high-M questions need.
func BenchmarkAblationPromptBudget(b *testing.B) {
	s := getSuite()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.AblatePromptBudget(10, 42, 120)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DefaultAccuracy, "budget-900")
	b.ReportMetric(r.AblatedAccuracy, "budget-120")
}
