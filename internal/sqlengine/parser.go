package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/expr"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParseExpr parses a standalone scalar expression (used by skills and GEL
// filter phrases).
func ParseExpr(src string) (expr.Expr, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	tokens []token
	i      int
}

func (p *parser) peek() token { return p.tokens[p.i] }
func (p *parser) next() token { t := p.tokens[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// keyword reports whether the next token is the given keyword (case-insensitive).
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.keyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q, found %q", op, p.peek().text)
	}
	return nil
}

// reservedAfterExpr lists keywords that terminate clauses; identifiers equal
// to these are never treated as aliases.
var reservedAfterExpr = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "JOIN": true, "LEFT": true, "INNER": true,
	"CROSS": true, "ON": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"ASC": true, "DESC": true, "UNION": true, "BY": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "DISTINCT": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"SELECT": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = ref
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sql: expected integer, found %q", t.text)
	}
	p.i++
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sql: invalid integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias after AS, found %q", t.text)
		}
		p.i++
		item.Alias = t.text
	} else if t := p.peek(); t.kind == tokIdent && !reservedAfterExpr[strings.ToUpper(t.text)] {
		p.i++
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryRef()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.acceptKeyword("JOIN"):
			kind = InnerJoin
		case p.keyword("INNER"):
			p.i++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = InnerJoin
		case p.keyword("LEFT"):
			p.i++
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = LeftJoin
		case p.keyword("CROSS"):
			p.i++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = CrossJoin
		default:
			return left, nil
		}
		right, err := p.parsePrimaryRef()
		if err != nil {
			return nil, err
		}
		join := &Join{Kind: kind, Left: left, Right: right}
		if kind != CrossJoin {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
		}
		left = join
	}
}

func (p *parser) parsePrimaryRef() (TableRef, error) {
	if p.acceptOp("(") {
		stmt, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		sub := &Subquery{Stmt: stmt}
		sub.Alias = p.parseOptionalAlias()
		return sub, nil
	}
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name, found %q", t.text)
	}
	p.i++
	ref := &BaseTable{Name: t.text}
	ref.Alias = p.parseOptionalAlias()
	if ref.Alias == "" {
		ref.Alias = ref.Name
	}
	return ref, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		t := p.next()
		return t.text
	}
	if t := p.peek(); t.kind == tokIdent && !reservedAfterExpr[strings.ToUpper(t.text)] {
		p.i++
		return t.text
	}
	return ""
}

// ---- expression parsing ----

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Not(operand), nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]expr.BinOp{
	"=": expr.OpEq, "<>": expr.OpNe, "!=": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp {
			if op, ok := comparisonOps[t.text]; ok {
				p.i++
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = expr.Bin(op, left, right)
				continue
			}
		}
		negated := false
		save := p.i
		if p.acceptKeyword("NOT") {
			negated = true
		}
		switch {
		case p.acceptKeyword("LIKE"):
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			like := expr.Bin(expr.OpLike, left, right)
			if negated {
				left = expr.Not(like)
			} else {
				left = like
			}
		case p.acceptKeyword("IN"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []expr.Expr
			for {
				item, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, item)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			left = &expr.In{Operand: left, List: list, Negated: negated}
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &expr.Between{Operand: left, Lo: lo, Hi: hi, Negated: negated}
		case !negated && p.acceptKeyword("IS"):
			isNot := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &expr.IsNull{Operand: left, Negated: isNot}
		default:
			if negated {
				p.i = save
			}
			return left, nil
		}
	}
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpAdd, left, right)
		case p.acceptOp("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpSub, left, right)
		case p.acceptOp("||"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpConcat, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpMul, left, right)
		case p.acceptOp("/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpDiv, left, right)
		case p.acceptOp("%"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpMod, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptOp("-") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Neg(operand), nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: invalid number %q", t.text)
			}
			return expr.Lit(dataset.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid number %q", t.text)
		}
		return expr.Lit(dataset.Int(n)), nil
	case tokString:
		p.i++
		return expr.Lit(dataset.Str(t.text)), nil
	case tokOp:
		if t.text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
	case tokIdent:
		return p.parseIdentExpr()
	default:
		return nil, fmt.Errorf("sql: unexpected end of input in expression")
	}
}

func (p *parser) parseIdentExpr() (expr.Expr, error) {
	t := p.next()
	upper := strings.ToUpper(t.text)
	switch upper {
	case "NULL":
		return expr.Lit(dataset.Null), nil
	case "TRUE":
		return expr.Lit(dataset.Bool(true)), nil
	case "FALSE":
		return expr.Lit(dataset.Bool(false)), nil
	case "CASE":
		return p.parseCase()
	case "CAST":
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		typeTok := p.next()
		if typeTok.kind != tokIdent {
			return nil, fmt.Errorf("sql: expected type name in CAST, found %q", typeTok.text)
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return expr.Func("CAST", operand, expr.Lit(dataset.Str(typeTok.text))), nil
	}
	if reservedAfterExpr[upper] {
		return nil, fmt.Errorf("sql: unexpected keyword %q in expression", t.text)
	}
	// Function call or aggregate?
	if p.acceptOp("(") {
		if aggregateNames[upper] {
			return p.parseAggTail(upper)
		}
		if _, known := expr.ScalarFuncs[upper]; !known {
			return nil, fmt.Errorf("sql: unknown function %q", t.text)
		}
		var args []expr.Expr
		if !p.acceptOp(")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		return expr.Func(upper, args...), nil
	}
	// Qualified column reference: ident(.ident)*
	name := t.text
	for p.acceptOp(".") {
		part := p.next()
		if part.kind != tokIdent {
			return nil, fmt.Errorf("sql: expected identifier after '.', found %q", part.text)
		}
		name += "." + part.text
	}
	return expr.Column(name), nil
}

func (p *parser) parseAggTail(name string) (expr.Expr, error) {
	agg := &AggCall{Name: name}
	if p.acceptOp("*") {
		if name != "COUNT" {
			return nil, fmt.Errorf("sql: %s(*) is not valid; only COUNT(*)", name)
		}
		agg.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return agg, nil
	}
	agg.Distinct = p.acceptKeyword("DISTINCT")
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	agg.Arg = arg
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

// parseCase parses a searched CASE expression; the CASE keyword has been
// consumed.
func (p *parser) parseCase() (expr.Expr, error) {
	c := &expr.Case{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.When{Cond: cond, Result: result})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		alt, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = alt
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
