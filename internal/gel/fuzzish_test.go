package gel

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds quasi-random sentences assembled from grammar
// vocabulary and junk into the parser: it must return an invocation or an
// error, never panic — console input is arbitrary.
func TestParseNeverPanics(t *testing.T) {
	p := parser(t)
	vocab := []string{
		"keep", "the", "rows", "columns", "where", "compute", "of", "for",
		"each", "and", "call", "computed", "load", "data", "from", "url",
		"visualize", "by", "plot", "a", "chart", "with", "x-axis", ",",
		"predict", "time", "series", "measure", "next", "values", "'quoted",
		"{", "}", "(", "12", "0.5", "-3", "...", "ünïcode", "", "sort",
	}
	f := func(picks []uint8) bool {
		var sentence string
		for i, pick := range picks {
			if i > 16 {
				break
			}
			sentence += vocab[int(pick)%len(vocab)] + " "
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", sentence, r)
			}
		}()
		_, _ = p.Parse(sentence)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSuggestNeverPanics does the same for autocomplete prefixes.
func TestSuggestNeverPanics(t *testing.T) {
	p := parser(t)
	f := func(prefix string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Suggest(%q) panicked: %v", prefix, r)
			}
		}()
		_ = p.Suggest(prefix, []string{"a", "b"})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTranslateConditionNeverPanics covers the friendly-phrase translator.
func TestTranslateConditionNeverPanics(t *testing.T) {
	p := parser(t)
	f := func(cond string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("TranslateCondition(%q) panicked: %v", cond, r)
			}
		}()
		_ = p.TranslateCondition(cond)
		_ = p.TranslateCondition("DATE is " + cond)
		_ = p.TranslateCondition("x is between the dates " + cond + " to " + cond)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
