package dataset

import (
	"fmt"
	"time"
)

// Column is a named, typed vector of values with a null mask. Storage is
// columnar: one typed slice per column plus a shared null bitmap, so scans
// and aggregations touch contiguous memory.
type Column struct {
	name  string
	typ   Type
	ints  []int64
	fls   []float64
	strs  []string
	bools []bool
	times []int64 // unix nanoseconds
	nulls []bool
	n     int
}

// NewColumn returns an empty column of the given name and type.
func NewColumn(name string, typ Type) *Column {
	return &Column{name: name, typ: typ}
}

// IntColumn builds an int column from values; a nil nulls mask means no nulls.
func IntColumn(name string, vals []int64, nulls []bool) *Column {
	c := &Column{name: name, typ: TypeInt, ints: vals, n: len(vals)}
	c.setNulls(nulls)
	return c
}

// FloatColumn builds a float column from values.
func FloatColumn(name string, vals []float64, nulls []bool) *Column {
	c := &Column{name: name, typ: TypeFloat, fls: vals, n: len(vals)}
	c.setNulls(nulls)
	return c
}

// StringColumn builds a string column from values.
func StringColumn(name string, vals []string, nulls []bool) *Column {
	c := &Column{name: name, typ: TypeString, strs: vals, n: len(vals)}
	c.setNulls(nulls)
	return c
}

// BoolColumn builds a bool column from values.
func BoolColumn(name string, vals []bool, nulls []bool) *Column {
	c := &Column{name: name, typ: TypeBool, bools: vals, n: len(vals)}
	c.setNulls(nulls)
	return c
}

// TimeColumn builds a time column from values.
func TimeColumn(name string, vals []time.Time, nulls []bool) *Column {
	nanos := make([]int64, len(vals))
	for i, t := range vals {
		nanos[i] = t.UnixNano()
	}
	c := &Column{name: name, typ: TypeTime, times: nanos, n: len(vals)}
	c.setNulls(nulls)
	return c
}

func (c *Column) setNulls(nulls []bool) {
	if nulls != nil {
		if len(nulls) != c.n {
			panic(fmt.Sprintf("dataset: null mask length %d != column length %d", len(nulls), c.n))
		}
		c.nulls = nulls
	}
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Type returns the column's logical type.
func (c *Column) Type() Type { return c.typ }

// Len returns the number of rows.
func (c *Column) Len() int { return c.n }

// IsNull reports whether row i is null.
func (c *Column) IsNull(i int) bool {
	if c.typ == TypeNull {
		return true
	}
	return c.nulls != nil && c.nulls[i]
}

// NullCount returns the number of null rows.
func (c *Column) NullCount() int {
	if c.typ == TypeNull {
		return c.n
	}
	count := 0
	for _, isNull := range c.nulls {
		if isNull {
			count++
		}
	}
	return count
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return Null
	}
	switch c.typ {
	case TypeInt:
		return Int(c.ints[i])
	case TypeFloat:
		return Float(c.fls[i])
	case TypeString:
		return Str(c.strs[i])
	case TypeBool:
		return Bool(c.bools[i])
	case TypeTime:
		return Time(time.Unix(0, c.times[i]).UTC())
	default:
		return Null
	}
}

// Append appends a value, coercing it to the column type. Appending a value
// that cannot coerce records a null.
func (c *Column) Append(v Value) {
	if v.IsNull() {
		c.appendNullSlot()
		return
	}
	coerced, ok := Coerce(v, c.typ)
	if !ok || coerced.IsNull() {
		c.appendNullSlot()
		return
	}
	switch c.typ {
	case TypeInt:
		c.ints = append(c.ints, coerced.I)
	case TypeFloat:
		c.fls = append(c.fls, coerced.F)
	case TypeString:
		c.strs = append(c.strs, coerced.S)
	case TypeBool:
		c.bools = append(c.bools, coerced.B)
	case TypeTime:
		c.times = append(c.times, coerced.T.UnixNano())
	}
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
	c.n++
}

func (c *Column) appendNullSlot() {
	switch c.typ {
	case TypeInt:
		c.ints = append(c.ints, 0)
	case TypeFloat:
		c.fls = append(c.fls, 0)
	case TypeString:
		c.strs = append(c.strs, "")
	case TypeBool:
		c.bools = append(c.bools, false)
	case TypeTime:
		c.times = append(c.times, 0)
	}
	if c.nulls == nil {
		c.nulls = make([]bool, c.n, c.n+1)
	}
	c.nulls = append(c.nulls, true)
	c.n++
}

// Rename returns a shallow copy of the column under a new name. The data is
// shared, which is safe because columns are immutable by convention once
// published in a Table.
func (c *Column) Rename(name string) *Column {
	copied := *c
	copied.name = name
	return &copied
}

// Take returns a new column containing the rows at the given indexes, in
// order. Indexes may repeat; a negative index produces a null (the
// null-extension rows of a left join use this). The gather runs one typed
// loop per column type rather than a per-element type switch.
func (c *Column) Take(idx []int) *Column {
	out := &Column{name: c.name, typ: c.typ, n: len(idx)}
	switch c.typ {
	case TypeInt:
		out.ints, out.nulls = takeSlice(c.ints, c.nulls, idx)
	case TypeFloat:
		out.fls, out.nulls = takeSlice(c.fls, c.nulls, idx)
	case TypeString:
		out.strs, out.nulls = takeSlice(c.strs, c.nulls, idx)
	case TypeBool:
		out.bools, out.nulls = takeSlice(c.bools, c.nulls, idx)
	case TypeTime:
		out.times, out.nulls = takeSlice(c.times, c.nulls, idx)
	}
	return out
}

// takeSlice gathers src rows at idx. The returned null mask is nil when no
// gathered row is null, preserving the no-mask representation.
func takeSlice[T any](src []T, srcNulls []bool, idx []int) ([]T, []bool) {
	vals := make([]T, len(idx))
	if srcNulls == nil {
		anyNeg := false
		for o, i := range idx {
			if i < 0 {
				anyNeg = true
				continue
			}
			vals[o] = src[i]
		}
		if !anyNeg {
			return vals, nil
		}
		nulls := make([]bool, len(idx))
		for o, i := range idx {
			if i < 0 {
				nulls[o] = true
			}
		}
		return vals, nulls
	}
	nulls := make([]bool, len(idx))
	anyNull := false
	for o, i := range idx {
		if i < 0 || srcNulls[i] {
			nulls[o] = true
			anyNull = true
			continue
		}
		vals[o] = src[i]
	}
	if !anyNull {
		nulls = nil
	}
	return vals, nulls
}

// Window returns rows [from, to) as a zero-copy view: the typed storage and
// null mask are subsliced, not gathered, so a morsel over a large column costs
// O(1) regardless of chunk size. The view shares storage with the parent,
// which is safe because columns are immutable by convention once published.
func (c *Column) Window(from, to int) *Column {
	if from < 0 {
		from = 0
	}
	if to > c.n {
		to = c.n
	}
	if from > to {
		from = to
	}
	out := &Column{name: c.name, typ: c.typ, n: to - from}
	switch c.typ {
	case TypeInt:
		out.ints = c.ints[from:to]
	case TypeFloat:
		out.fls = c.fls[from:to]
	case TypeString:
		out.strs = c.strs[from:to]
	case TypeBool:
		out.bools = c.bools[from:to]
	case TypeTime:
		out.times = c.times[from:to]
	}
	if c.nulls != nil {
		out.nulls = c.nulls[from:to]
	}
	return out
}

// Floats returns the column materialized as float64s with a validity mask
// (false where the row is null or non-numeric). ML skills consume this view.
func (c *Column) Floats() (vals []float64, valid []bool) {
	vals = make([]float64, c.n)
	valid = make([]bool, c.n)
	for i := 0; i < c.n; i++ {
		if c.IsNull(i) {
			continue
		}
		if f, ok := c.Value(i).AsFloat(); ok {
			vals[i], valid[i] = f, true
		}
	}
	return vals, valid
}
