module datachat

go 1.22
