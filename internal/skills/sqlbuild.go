package skills

import (
	"fmt"
	"strings"

	"datachat/internal/expr"
	"datachat/internal/sqlengine"
)

// QueryBuilder incrementally merges relational skills into a single SQL
// SELECT statement. Whenever a skill cannot legally merge into the current
// query block (e.g. filtering after an aggregation), the builder wraps the
// block as a subquery and continues — so the final statement is as flat as
// the skill chain allows. This is the §2.2 consolidation that turns
// Load→Filter→Limit into one query (Figure 4) instead of nested blocks.
type QueryBuilder struct {
	stmt    *sqlengine.SelectStmt
	grouped bool
	limited bool
	nestSeq int
	// AlwaysNest disables consolidation: every merge first wraps the
	// current block. Used by the naive-baseline benchmarks.
	AlwaysNest bool
}

// NewQueryBuilder starts a query as SELECT * FROM table.
func NewQueryBuilder(table string) *QueryBuilder {
	return &QueryBuilder{stmt: &sqlengine.SelectStmt{
		Items: []sqlengine.SelectItem{{Star: true}},
		From:  &sqlengine.BaseTable{Name: table, Alias: table},
		Limit: -1,
	}}
}

// Stmt returns the statement built so far.
func (b *QueryBuilder) Stmt() *sqlengine.SelectStmt { return b.stmt }

// SQL returns the statement as SQL text.
func (b *QueryBuilder) SQL() string { return b.stmt.String() }

// Blocks returns the number of SELECT blocks in the built query.
func (b *QueryBuilder) Blocks() int { return sqlengine.CountSelectBlocks(b.stmt) }

// Nest wraps the current statement as a FROM-clause subquery of a fresh
// SELECT * block.
func (b *QueryBuilder) Nest() {
	b.nestSeq++
	b.stmt = &sqlengine.SelectStmt{
		Items: []sqlengine.SelectItem{{Star: true}},
		From:  &sqlengine.Subquery{Stmt: b.stmt, Alias: fmt.Sprintf("q%d", b.nestSeq)},
		Limit: -1,
	}
	b.grouped = false
	b.limited = false
}

func (b *QueryBuilder) preMerge() {
	if b.AlwaysNest {
		b.Nest()
	}
}

// starOnly reports whether the current projection is a bare SELECT *.
func (b *QueryBuilder) starOnly() bool {
	return len(b.stmt.Items) == 1 && b.stmt.Items[0].Star
}

// Where ANDs a filter condition into the query, nesting first if the block
// already aggregates, limits, or deduplicates (where a later filter would
// change meaning).
func (b *QueryBuilder) Where(cond expr.Expr) {
	b.preMerge()
	if b.grouped || b.limited || b.stmt.Distinct || b.condUsesComputed(cond) {
		b.Nest()
	}
	if b.stmt.Where == nil {
		b.stmt.Where = cond
	} else {
		b.stmt.Where = expr.Bin(expr.OpAnd, b.stmt.Where, cond)
	}
}

// Project narrows the output to the named columns. Projections merge into a
// bare * block or narrow an existing explicit projection; anything else
// (aggregates, computed columns the projection keeps) nests.
func (b *QueryBuilder) Project(cols []string) {
	b.preMerge()
	if b.grouped {
		b.Nest()
	}
	if b.starOnly() {
		items := make([]sqlengine.SelectItem, len(cols))
		for i, c := range cols {
			items[i] = sqlengine.SelectItem{Expr: expr.Column(c)}
		}
		b.stmt.Items = items
		return
	}
	// Try narrowing the existing projection by output name.
	existing := map[string]sqlengine.SelectItem{}
	for _, item := range b.stmt.Items {
		if item.Star {
			continue
		}
		existing[strings.ToLower(itemName(item))] = item
	}
	items := make([]sqlengine.SelectItem, 0, len(cols))
	for _, c := range cols {
		item, ok := existing[strings.ToLower(c)]
		if !ok {
			// Column comes from a * that is also present, or is unknown:
			// nest and project plainly.
			b.Nest()
			b.Project(cols)
			return
		}
		items = append(items, item)
	}
	b.stmt.Items = items
}

func itemName(item sqlengine.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*expr.Col); ok {
		name := c.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		return name
	}
	return item.Expr.String()
}

// AddColumn appends a computed column (SELECT *, e AS name).
func (b *QueryBuilder) AddColumn(name string, e expr.Expr) {
	b.preMerge()
	if b.grouped || b.stmt.Distinct {
		b.Nest()
	}
	b.stmt.Items = append(b.stmt.Items, sqlengine.SelectItem{Expr: e, Alias: name})
}

// OrderBy sets the sort order, replacing any prior one; nests first when a
// limit has already been applied (sorting after a limit reorders only the
// retained rows, which is a different result).
func (b *QueryBuilder) OrderBy(keys []string, desc []bool) {
	b.preMerge()
	if b.limited {
		b.Nest()
	}
	items := make([]sqlengine.OrderItem, len(keys))
	for i, k := range keys {
		items[i] = sqlengine.OrderItem{Expr: expr.Column(k)}
		if i < len(desc) {
			items[i].Desc = desc[i]
		}
	}
	b.stmt.OrderBy = items
}

// Limit caps the row count; successive limits keep the minimum.
func (b *QueryBuilder) Limit(n int) {
	b.preMerge()
	if b.stmt.Limit < 0 || n < b.stmt.Limit {
		b.stmt.Limit = n
	}
	b.limited = true
}

// Distinct deduplicates the output rows.
func (b *QueryBuilder) Distinct() {
	b.preMerge()
	if b.limited {
		b.Nest()
	}
	b.stmt.Distinct = true
}

// GroupBy turns the block into an aggregation; a block that already
// projects, aggregates, or limits nests first.
func (b *QueryBuilder) GroupBy(aggs []AggSpec, keys []string) error {
	b.preMerge()
	if b.grouped || b.limited || !b.starOnly() || b.stmt.Distinct {
		b.Nest()
	}
	items := make([]sqlengine.SelectItem, 0, len(keys)+len(aggs))
	groupExprs := make([]expr.Expr, 0, len(keys))
	for _, k := range keys {
		items = append(items, sqlengine.SelectItem{Expr: expr.Column(k)})
		groupExprs = append(groupExprs, expr.Column(k))
	}
	for _, a := range aggs {
		call, err := aggCall(a)
		if err != nil {
			return err
		}
		items = append(items, sqlengine.SelectItem{Expr: call, Alias: a.OutName()})
	}
	b.stmt.Items = items
	b.stmt.GroupBy = groupExprs
	// Deterministic output order: the direct Compute implementation sorts
	// by the group keys, so the SQL path must too for the two execution
	// paths to stay interchangeable (§2.2).
	b.stmt.OrderBy = nil
	for _, k := range keys {
		b.stmt.OrderBy = append(b.stmt.OrderBy, sqlengine.OrderItem{Expr: expr.Column(k)})
	}
	b.grouped = true
	return nil
}

func aggCall(a AggSpec) (expr.Expr, error) {
	sqlName, ok := validAggFuncs[strings.ToLower(a.Func)]
	if !ok {
		return nil, fmt.Errorf("skills: unknown aggregate function %q", a.Func)
	}
	if a.Column == "*" || a.Column == "" {
		if sqlName != "COUNT" {
			return nil, fmt.Errorf("skills: %s requires a column", a.Func)
		}
		return &sqlengine.AggCall{Name: "COUNT", Star: true}, nil
	}
	if sqlName == "COUNT_DISTINCT" {
		return &sqlengine.AggCall{Name: "COUNT", Arg: expr.Column(a.Column), Distinct: true}, nil
	}
	return &sqlengine.AggCall{Name: sqlName, Arg: expr.Column(a.Column)}, nil
}

// condUsesComputed reports whether the condition references a column that is
// computed in the current projection (an aliased select item). SQL cannot
// reference select aliases in WHERE, so such filters force a subquery.
func (b *QueryBuilder) condUsesComputed(cond expr.Expr) bool {
	aliases := map[string]bool{}
	for _, item := range b.stmt.Items {
		if item.Alias != "" {
			aliases[strings.ToLower(item.Alias)] = true
		}
	}
	if len(aliases) == 0 {
		return false
	}
	for _, name := range cond.Columns(nil) {
		if aliases[strings.ToLower(name)] {
			return true
		}
	}
	return false
}
