package core

import (
	"strings"
	"testing"

	"datachat/internal/artifact"
	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/nl2code"
	"datachat/internal/semantic"
	"datachat/internal/session"
	"datachat/internal/skills"
	"datachat/internal/spider"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p := New()
	p.RegisterFile("people.csv", "name,age,dept\nann,30,eng\nbob,25,eng\ncarl,40,sales\n")
	return p
}

func TestSessionLifecycle(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("analysis", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateSession("analysis", "ann"); err == nil {
		t.Error("duplicate session should fail")
	}
	got, err := p.Session("Analysis")
	if err != nil || got != s {
		t.Errorf("Session lookup = %v, %v", got, err)
	}
	if _, err := p.Session("nope"); err == nil {
		t.Error("missing session should error")
	}
	if names := p.Sessions(); len(names) != 1 || names[0] != "analysis" {
		t.Errorf("sessions = %v", names)
	}
}

func TestRequestGELEndToEnd(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.CreateSession("s", "ann"); err != nil {
		t.Fatal(err)
	}
	res, err := p.RequestGEL("s", "ann", "Load data from the file people.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Errorf("rows = %d", res.Table.NumRows())
	}
	// The load materialized the output into the session; follow up on it.
	s, _ := p.Session("s")
	var current string
	for name := range s.Context().Datasets {
		if strings.HasPrefix(name, "node") {
			current = name
		}
	}
	if current == "" {
		t.Fatal("loaded dataset not materialized")
	}
	res, err = p.RequestGEL("s", "ann", "Keep the rows where age > 26", current)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Errorf("filtered rows = %d", res.Table.NumRows())
	}
	// Input-requiring sentence without a current dataset fails helpfully.
	if _, err := p.RequestGEL("s", "ann", "Count the rows", ""); err == nil {
		t.Error("missing current dataset should fail")
	}
	// Bad GEL fails at parse.
	if _, err := p.RequestGEL("s", "ann", "frobnicate", current); err == nil {
		t.Error("bad GEL should fail")
	}
}

func TestDatabasesAndSessionsSeeding(t *testing.T) {
	p := newPlatform(t)
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 100)
	ids := make([]int64, 500)
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := db.CreateTable(dataset.MustNewTable("events", dataset.IntColumn("id", ids, nil))); err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err == nil {
		t.Error("duplicate connect should fail")
	}
	if _, err := p.Database("warehouse"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Database("nope"); err == nil {
		t.Error("missing database should error")
	}
	if _, err := p.CreateSession("s", "ann"); err != nil {
		t.Fatal(err)
	}
	res, err := p.RequestGEL("s", "ann", "Sample 10% of the table events from the database warehouse", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 || res.Table.NumRows() >= 500 {
		t.Errorf("sample rows = %d", res.Table.NumRows())
	}
	// Snapshot skills work against the platform store.
	if _, err := p.RequestGEL("s", "ann", "Create a snapshot ev of the table events from the database warehouse", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Snapshots.Get("ev"); err != nil {
		t.Errorf("snapshot not in platform store: %v", err)
	}
}

func TestArtifactFlowWithBoards(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("s", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RequestGEL("s", "ann", "Load data from the file people.csv", ""); err != nil {
		t.Fatal(err)
	}
	_, id, err := s.Request("ann", skills.Invocation{Skill: "Compute", Inputs: []string{"node0"},
		Args: skills.Args{"aggregates": []string{"count of records as n"}, "for_each": []string{"dept"}}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SaveArtifact(p.Artifacts, "ann", "dept_counts", id, artifact.TypeTable)
	if err != nil {
		t.Fatal(err)
	}
	if a.Recipe == nil || len(a.Recipe.Steps) == 0 {
		t.Fatal("artifact has no recipe")
	}
	// Organize, share, pin.
	if err := p.Home.Place("reports", "dept_counts"); err != nil {
		t.Fatal(err)
	}
	secret, err := p.Artifacts.CreateSecretLink("dept_counts", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Artifacts.GetBySecret(secret); err != nil {
		t.Fatal(err)
	}
	board := p.Board("launch")
	if err := board.Pin(session.BoardItem{Artifact: "dept_counts", W: 6, H: 4}); err != nil {
		t.Fatal(err)
	}
	if p.Board("launch") != board {
		t.Error("Board should be idempotent")
	}
}

func TestNL2CodeThroughPlatform(t *testing.T) {
	p := newPlatform(t)
	domains := spider.Domains(1)
	var sales *spider.Domain
	for _, d := range domains {
		if d.Name == "sales" {
			sales = d
		}
	}
	var examples []*nl2code.LibraryExample
	for _, ex := range spider.GenerateLibrary(domains, 99, 6) {
		examples = append(examples, &nl2code.LibraryExample{Question: ex.Question, Program: ex.Gold, Domain: ex.Domain})
	}
	p.UseNL2Code(nl2code.NewSystem(p.Registry, nl2code.NewLibrary(examples)))
	for _, c := range sales.Layer.Concepts() {
		if err := p.Semantic.Define(*c); err != nil {
			t.Fatal(err)
		}
	}
	s, err := p.CreateSession("s", "ann")
	if err != nil {
		t.Fatal(err)
	}
	for name, table := range sales.Tables {
		s.Context().Datasets[name] = table
	}
	resp, err := p.NL2Code("s", "What is the average price for each region?")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Program) == 0 || resp.Python == "" || len(resp.GEL) == 0 {
		t.Errorf("response incomplete: %+v", resp)
	}
	if _, err := p.NL2Code("missing", "q"); err == nil {
		t.Error("missing session should error")
	}
}

func TestTranslatePhraseThroughPlatform(t *testing.T) {
	p := newPlatform(t)
	if err := p.Semantic.Define(semantic.Concept{
		Name: "veterans", Kind: semantic.Filter, Expansion: "age >= 40"}); err != nil {
		t.Fatal(err)
	}
	s, err := p.CreateSession("s", "ann")
	if err != nil {
		t.Fatal(err)
	}
	s.Context().Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("age", []int64{30, 25, 40}, nil),
		dataset.StringColumn("dept", []string{"eng", "eng", "sales"}, nil),
	)
	got, err := p.TranslatePhrase("s", "Visualize dept where veterans", "people")
	if err != nil {
		t.Fatal(err)
	}
	if got.Invocation.Args.StringOr("filter", "") != "(age >= 40)" {
		t.Errorf("filter = %v", got.Invocation.Args["filter"])
	}
	if _, err := p.TranslatePhrase("s", "Visualize dept", "missing"); err == nil {
		t.Error("missing dataset should error")
	}
}

func TestRefreshArtifact(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("s", "ann")
	if err != nil {
		t.Fatal(err)
	}
	s.Context().Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("age", []int64{10, 20, 30}, nil))
	_, id, err := s.Request("ann", skills.Invocation{Skill: "CountRows",
		Inputs: []string{"people"}, Output: "n"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SaveArtifact(p.Artifacts, "ann", "rowcount", id, artifact.TypeTable); err != nil {
		t.Fatal(err)
	}
	// Underlying data grows; refresh must see it.
	s.Context().Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("age", []int64{10, 20, 30, 40, 50}, nil))
	a, err := p.RefreshArtifact("s", "ann", "rowcount")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := a.Table.Column("rows")
	if c.Value(0).I != 5 {
		t.Errorf("refreshed count = %v, want 5", c.Value(0))
	}
	if !a.RefreshedAt.After(a.CreatedAt) {
		t.Error("RefreshedAt not advanced")
	}
	// Viewers cannot refresh.
	if err := p.Artifacts.Share("rowcount", "ann", "bob", artifact.ViewAccess); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RefreshArtifact("s", "bob", "rowcount"); err == nil {
		t.Error("viewer refresh should fail")
	}
	if _, err := p.RefreshArtifact("s", "ann", "missing"); err == nil {
		t.Error("missing artifact refresh should fail")
	}
}

func TestRenderBoard(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("s", "ann")
	if err != nil {
		t.Fatal(err)
	}
	s.Context().Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("age", []int64{10, 20, 30}, nil),
		dataset.StringColumn("dept", []string{"a", "b", "a"}, nil))
	_, id, err := s.Request("ann", skills.Invocation{Skill: "PlotChart", Inputs: []string{"people"},
		Args: skills.Args{"chart": "bar", "x": "dept", "title": "People by dept"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SaveArtifact(p.Artifacts, "ann", "dept_chart", id, ""); err != nil {
		t.Fatal(err)
	}
	board := p.Board("review")
	if err := board.Pin(session.BoardItem{Artifact: "dept_chart", W: 6, H: 4, Caption: "headcount"}); err != nil {
		t.Fatal(err)
	}
	board.AddText(session.TextBox{Text: "Q2 review"})
	out, err := p.RenderBoard("review", "ann")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Insights Board: review", "Q2 review", "dept_chart", "headcount", "People by dept"} {
		if !strings.Contains(out, want) {
			t.Errorf("board render missing %q:\n%s", want, out)
		}
	}
	// Rendering for a user without access to a pinned artifact fails.
	if _, err := p.RenderBoard("review", "stranger"); err == nil {
		t.Error("stranger should not render the board's artifacts")
	}
}

func TestSaveModelArtifact(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("s", "ann")
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]int64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = int64(i)
		ys[i] = 2 * float64(i)
	}
	s.Context().Datasets["lin"] = dataset.MustNewTable("lin",
		dataset.IntColumn("x", xs, nil), dataset.FloatColumn("y", ys, nil))
	_, id, err := s.Request("ann", skills.Invocation{Skill: "TrainModel", Inputs: []string{"lin"},
		Args: skills.Args{"target": "y", "features": []string{"x"}, "name": "m"}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SaveArtifact(p.Artifacts, "ann", "gdp_model", id, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != artifact.TypeModel {
		t.Errorf("type = %s, want model", a.Type)
	}
	if a.ModelName == "" {
		t.Error("model kind not recorded")
	}
}
