package dataset

// Typed slice accessors expose a column's backing storage without boxing
// each cell into a Value. They are the substrate the vectorized SQL
// executor's kernels run on, and they are available to any skill that wants
// to scan a column in bulk (mirroring the long-standing Floats view).
//
// Each accessor returns the raw value slice, the null bitmap, and an ok
// flag that is false when the column's logical type does not match. A nil
// null bitmap means the column has no nulls. Both slices are the column's
// own storage: callers must treat them as read-only, the same
// immutable-by-convention contract Table documents.

// Ints returns the backing int64 slice of an int column.
func (c *Column) Ints() (vals []int64, nulls []bool, ok bool) {
	if c.typ != TypeInt {
		return nil, nil, false
	}
	return c.ints, c.nulls, true
}

// FloatVals returns the backing float64 slice of a float column. Unlike
// Floats, which materializes a converted copy of any numeric column, this
// is a zero-copy view and only succeeds for TypeFloat columns.
func (c *Column) FloatVals() (vals []float64, nulls []bool, ok bool) {
	if c.typ != TypeFloat {
		return nil, nil, false
	}
	return c.fls, c.nulls, true
}

// Strs returns the backing string slice of a string column.
func (c *Column) Strs() (vals []string, nulls []bool, ok bool) {
	if c.typ != TypeString {
		return nil, nil, false
	}
	return c.strs, c.nulls, true
}

// Bools returns the backing bool slice of a bool column.
func (c *Column) Bools() (vals []bool, nulls []bool, ok bool) {
	if c.typ != TypeBool {
		return nil, nil, false
	}
	return c.bools, c.nulls, true
}

// Times returns the backing slice of a time column as unix nanoseconds,
// the representation time columns store internally.
func (c *Column) Times() (nanos []int64, nulls []bool, ok bool) {
	if c.typ != TypeTime {
		return nil, nil, false
	}
	return c.times, c.nulls, true
}

// Nulls returns the column's null bitmap (nil when the column has no
// nulls). Read-only, like the typed accessors.
func (c *Column) Nulls() []bool { return c.nulls }

// TimeNanosColumn builds a time column directly from unix-nanosecond
// values, the inverse of Times. It lets vectorized producers hand storage
// to a column without a []time.Time round trip.
func TimeNanosColumn(name string, nanos []int64, nulls []bool) *Column {
	c := &Column{name: name, typ: TypeTime, times: nanos, n: len(nanos)}
	c.setNulls(nulls)
	return c
}
