package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"

	"datachat/internal/dataset"
)

// forceGeneral rewrites "SELECT a, b …" into an equivalent query whose
// select list contains a computed expression, disabling the columnar fast
// path so both executor paths can be compared.
func TestColumnarFastPathMatchesGeneralPath(t *testing.T) {
	catalog := testCatalog()
	pairs := [][2]string{
		{
			"SELECT name, age FROM people WHERE age > 25 ORDER BY age DESC, name",
			"SELECT name, age + 0 AS age FROM people WHERE age > 25 ORDER BY age DESC, name",
		},
		{
			"SELECT * FROM people WHERE dept = 'eng'",
			"SELECT id, name, age + 0 AS age, dept, salary FROM people WHERE dept = 'eng'",
		},
		{
			"SELECT p.name FROM people p JOIN orders o ON p.id = o.person_id ORDER BY p.name",
			"SELECT CONCAT(p.name) AS name FROM people p JOIN orders o ON p.id = o.person_id ORDER BY p.name",
		},
	}
	for _, pair := range pairs {
		fast, err := Exec(catalog, pair[0])
		if err != nil {
			t.Fatalf("fast %q: %v", pair[0], err)
		}
		general, err := Exec(catalog, pair[1])
		if err != nil {
			t.Fatalf("general %q: %v", pair[1], err)
		}
		if fast.NumRows() != general.NumRows() {
			t.Fatalf("row counts differ for %q: %d vs %d", pair[0], fast.NumRows(), general.NumRows())
		}
		for r := 0; r < fast.NumRows(); r++ {
			for c := 0; c < fast.NumCols(); c++ {
				a := fast.Row(r)[c]
				b := general.Row(r)[c]
				if af, ok := a.AsFloat(); ok {
					bf, _ := b.AsFloat()
					if af != bf {
						t.Fatalf("%q cell (%d,%d): %v vs %v", pair[0], r, c, a, b)
					}
					continue
				}
				if a.String() != b.String() {
					t.Fatalf("%q cell (%d,%d): %v vs %v", pair[0], r, c, a, b)
				}
			}
		}
	}
}

func TestLimitPushdownEquivalence(t *testing.T) {
	// Property: for any limit and threshold, the limit-pushed-down plan
	// (WHERE + LIMIT, no ORDER BY) returns exactly the first k matching
	// rows in base order.
	n := 500
	ids := make([]int64, n)
	vals := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = int64((i * 37) % 100)
	}
	catalog := NewMapCatalog(map[string]*dataset.Table{"t": dataset.MustNewTable("t",
		dataset.IntColumn("id", ids, nil),
		dataset.IntColumn("v", vals, nil),
	)})
	f := func(rawLimit, rawThresh uint8) bool {
		limit := int(rawLimit % 30)
		thresh := int(rawThresh % 100)
		limited, err := Exec(catalog, fmt.Sprintf("SELECT id FROM t WHERE v > %d LIMIT %d", thresh, limit))
		if err != nil {
			return false
		}
		full, err := Exec(catalog, fmt.Sprintf("SELECT id FROM t WHERE v > %d", thresh))
		if err != nil {
			return false
		}
		want := full.Head(limit)
		return limited.Equal(want.WithName(limited.Name()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLimitPushdownWithOffset(t *testing.T) {
	out := mustExec(t, "SELECT id FROM people WHERE age >= 25 LIMIT 2 OFFSET 1")
	full := mustExec(t, "SELECT id FROM people WHERE age >= 25")
	want := full.Slice(1, 3)
	if !out.Equal(want.WithName(out.Name())) {
		t.Errorf("offset+limit = %s, want %s", out, want)
	}
	// Plain LIMIT without WHERE also truncates the scan.
	out = mustExec(t, "SELECT id FROM people LIMIT 2")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestFastPathDoesNotApplyToAliasOrder(t *testing.T) {
	// ORDER BY an output alias of a computed column goes through the
	// general path and still works.
	out := mustExec(t, "SELECT name, age * -1 AS neg FROM people ORDER BY neg LIMIT 1")
	c, _ := out.Column("name")
	if c.Value(0).S != "carl" {
		t.Errorf("first = %v", c.Value(0))
	}
}

func TestFastPathQualifiedStarAfterJoin(t *testing.T) {
	out := mustExec(t, "SELECT people.name, orders.amount FROM people JOIN orders ON people.id = orders.person_id ORDER BY orders.amount DESC")
	c, _ := out.Column("amount")
	if c.Value(0).F != 10 {
		t.Errorf("first amount = %v", c.Value(0))
	}
}

// TestParseNeverPanics assembles quasi-random SQL-ish text from vocabulary
// and junk: Parse must return a statement or an error, never panic.
func TestParseNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"JOIN", "LEFT", "ON", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE",
		"COUNT", "SUM", "(", ")", "*", ",", "=", "<", ">", "'str", "\"q",
		"people", "age", "1", "2.5", "-", "||", ".", "CASE", "WHEN", "END",
	}
	f := func(picks []uint8) bool {
		var src string
		for i, pick := range picks {
			if i > 20 {
				break
			}
			src += vocab[int(pick)%len(vocab)] + " "
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", src, r)
			}
		}()
		if stmt, err := Parse(src); err == nil {
			// Parsed statements must also render and re-parse.
			if _, err := Parse(stmt.String()); err != nil {
				t.Errorf("reparse of %q failed: %v", stmt.String(), err)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
