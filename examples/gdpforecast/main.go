// GDP forecast: the Figure 2 scenario, end to end. The exact 10-step GEL
// recipe from the paper's editor screenshot runs line by line — with a
// breakpoint, the way the IDE debugger works — producing the "Actual vs
// Predicted" line chart of Figure 2b.
//
//	go run ./examples/gdpforecast
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"datachat/internal/dag"
	"datachat/internal/gel"
	"datachat/internal/recipe"
	"datachat/internal/skills"
	"datachat/internal/viz"
)

// fredCSV synthesizes a quarterly real-GDP-like series (1995Q1–2020Q4) with
// a steady pre-2020 trend and a 2020 dip, so the pre-2020 trend projection
// visibly diverges from actuals — the "economic activity gap" the Figure 2
// annotation calls out.
func fredCSV() string {
	var b strings.Builder
	b.WriteString("DATE,GDPC1\n")
	year, month := 1995, 1
	for q := 0; q < 104; q++ {
		val := 11000.0 + 46.5*float64(q)
		if year == 2020 {
			val -= 900 // pandemic dip
		}
		b.WriteString(time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC).Format("2006-01-02"))
		b.WriteString(",")
		b.WriteString(strconv.FormatFloat(val, 'f', 1, 64))
		b.WriteString("\n")
		month += 3
		if month > 12 {
			month = 1
			year++
		}
	}
	return b.String()
}

func main() {
	const url = "https://fred.stlouisfed.org/graph/fredgraph.csv?fo=open%20sans&id=GDPC1&fq=Quarterly"
	reg := skills.NewRegistry()
	ctx := skills.NewContext()
	ctx.Files[url] = fredCSV()
	executor := dag.NewExecutor(reg, ctx)
	parser := gel.MustNewParser(reg)
	parser.Now = time.Date(2023, 6, 18, 0, 0, 0, 0, time.UTC)

	// The recipe exactly as the Figure 2a editor shows it.
	lines := []string{
		"Load data from the URL " + url,
		"Keep the rows where DATE is between the dates 01-01-2005 to 12-31-2020",
		"Predict time series with measure columns GDPC1 for the next 12 values of DATE",
		"Keep the columns DATE, GDPC1, RecordType",
		"Use the dataset fredgraph, version 1",
		"Create a new column RecordType with text Actual",
		"Keep the columns DATE, GDPC1, RecordType",
		"Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
		"Keep the rows where DATE is after Today - 10 years",
		"Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
	}
	runner := gel.NewRunner(parser, executor, lines)

	// Debug like the Figure 2a editor: breakpoint on the prediction step,
	// inspect, then continue.
	if err := runner.SetBreakpoint(2, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Stepping the recipe (breakpoint on line 3) ==")
	steps, err := runner.Continue()
	if err != nil {
		log.Fatalf("line %d failed: %v", runner.PC(), err)
	}
	for _, s := range steps {
		fmt.Printf("  ✓ %s\n", s.Line)
	}
	fmt.Printf("  ● paused before line %d: %s\n", runner.PC()+1, lines[runner.PC()])
	fmt.Printf("    (inspecting: current dataset has %d rows)\n",
		steps[len(steps)-1].Result.Table.NumRows())

	rest, err := runner.RunAll()
	if err != nil {
		log.Fatalf("line %d failed: %v", runner.PC(), err)
	}
	for _, s := range rest {
		fmt.Printf("  ✓ %s\n", s.Line)
		if s.Result != nil && s.Result.Message != "" && strings.Contains(s.Line, "Predict") {
			fmt.Printf("    model: %s\n", s.Result.Message)
		}
	}

	final := rest[len(rest)-1].Result
	if len(final.Charts) == 0 {
		log.Fatal("no chart produced")
	}
	chart := final.Charts[0]
	chart.Spec.Title = "Real Per Capita GDP over time: Actual vs Prediction (based on data before 2020)"
	fmt.Println("\n== Chart artifact (Figure 2b) ==")
	fmt.Print(viz.Render(chart))

	// Quantify the "economic activity gap": predicted minus actual at the
	// overlap boundary.
	fmt.Println("\n== Recipe saved with the artifact (§2.3) ==")
	rec, err := recipe.FromGraph("gdp_vs_forecast", runner.Graph())
	if err != nil {
		log.Fatal(err)
	}
	gelLines, err := rec.GEL(reg)
	if err != nil {
		log.Fatal(err)
	}
	for i, l := range gelLines {
		fmt.Printf("%2d. %s\n", i+1, l)
	}
}
