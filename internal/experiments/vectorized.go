package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/sqlengine"
)

// The vectorized experiment quantifies the columnar execution engine
// against the row-at-a-time reference on the consolidated-SQL hot path:
// filter, equi join, and group-by shapes at several row counts, reporting
// throughput (rows/sec) and allocations per query. Both paths run the same
// parsed statement against the same catalog, and results are
// cross-checked, so every timing row doubles as a correctness probe.

// VectorizedCase is one (shape, rows) cell of the grid.
type VectorizedCase struct {
	Shape        string  `json:"shape"`
	Rows         int     `json:"rows"`
	VecDurationS float64 `json:"vectorized_seconds"`
	RefDurationS float64 `json:"reference_seconds"`
	VecRowsPerS  float64 `json:"vectorized_rows_per_sec"`
	RefRowsPerS  float64 `json:"reference_rows_per_sec"`
	VecAllocs    uint64  `json:"vectorized_allocs_per_op"`
	RefAllocs    uint64  `json:"reference_allocs_per_op"`
	Speedup      float64 `json:"speedup"`
	AllocRatio   float64 `json:"alloc_ratio"`
	SameResult   bool    `json:"same_result"`
}

// VectorizedResult is the full grid plus engine counters.
type VectorizedResult struct {
	Cases    []VectorizedCase `json:"cases"`
	Counters map[string]int64 `json:"vec_counters"`
}

// vectorizedTables mirrors the engine benchmark fixtures: a fact table of n
// rows and a dims table with one row per distinct join key.
func vectorizedTables(n int) map[string]*dataset.Table {
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	nkeys := n / 100
	if nkeys < 8 {
		nkeys = 8
	}
	ids := make([]int64, n)
	ks := make([]int64, n)
	vs := make([]float64, n)
	ss := make([]string, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		ks[i] = int64(rng.Intn(nkeys))
		vs[i] = float64(rng.Intn(1000)) / 10
		ss[i] = vocab[rng.Intn(len(vocab))]
		nulls[i] = rng.Intn(100) < 5
	}
	big := dataset.MustNewTable("big",
		dataset.IntColumn("id", ids, nil),
		dataset.IntColumn("k", ks, nil),
		dataset.FloatColumn("v", vs, nulls),
		dataset.StringColumn("s", ss, nil),
	)
	dk := make([]int64, nkeys)
	dw := make([]float64, nkeys)
	for i := range dk {
		dk[i] = int64(i)
		dw[i] = float64(i) / 7
	}
	dims := dataset.MustNewTable("dims",
		dataset.IntColumn("dk", dk, nil),
		dataset.FloatColumn("dw", dw, nil),
	)
	return map[string]*dataset.Table{"big": big, "dims": dims}
}

// measureAllocs runs fn once and returns its duration and heap allocation
// count. A GC fence before the run keeps concurrent sweep noise out of the
// Mallocs delta.
func measureAllocs(fn func() error) (time.Duration, uint64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, err
}

// Vectorized runs the filter/join/group-by grid at the given row counts.
func Vectorized(rowCounts []int, trials int) (*VectorizedResult, error) {
	shapes := []struct {
		name  string
		query string
	}{
		{"filter", "SELECT id, v FROM big WHERE v > 25.0 AND v < 75.0 AND s != 'zeta' AND k % 3 = 1"},
		{"join", "SELECT big.id, dims.dw FROM big JOIN dims ON big.k = dims.dk WHERE big.v > 50.0"},
		{"groupby", "SELECT s, COUNT(*) AS c, SUM(v) AS sv, AVG(v) AS av, MIN(v) AS mn, MAX(v) AS mx FROM big GROUP BY s ORDER BY s"},
	}
	result := &VectorizedResult{}
	for _, n := range rowCounts {
		catalog := sqlengine.NewMapCatalog(vectorizedTables(n))
		for _, shape := range shapes {
			stmt, err := sqlengine.Parse(shape.query)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", shape.name, err)
			}
			var vecOut, refOut *dataset.Table
			vecDur := medianDuration(trials, func() error {
				out, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{})
				vecOut = out
				return err
			})
			refDur := medianDuration(trials, func() error {
				out, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{DisableVectorized: true})
				refOut = out
				return err
			})
			if vecOut == nil || refOut == nil {
				return nil, fmt.Errorf("%s at %d rows: execution failed", shape.name, n)
			}
			_, vecAllocs, err := measureAllocs(func() error {
				_, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{})
				return err
			})
			if err != nil {
				return nil, err
			}
			_, refAllocs, err := measureAllocs(func() error {
				_, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{DisableVectorized: true})
				return err
			})
			if err != nil {
				return nil, err
			}
			c := VectorizedCase{
				Shape:        shape.name,
				Rows:         n,
				VecDurationS: vecDur.Seconds(),
				RefDurationS: refDur.Seconds(),
				VecAllocs:    vecAllocs,
				RefAllocs:    refAllocs,
				SameResult:   vecOut.Equal(refOut),
			}
			if vecDur > 0 {
				c.VecRowsPerS = float64(n) / vecDur.Seconds()
				c.Speedup = refDur.Seconds() / vecDur.Seconds()
			}
			if refDur > 0 {
				c.RefRowsPerS = float64(n) / refDur.Seconds()
			}
			if vecAllocs > 0 {
				c.AllocRatio = float64(refAllocs) / float64(vecAllocs)
			}
			result.Cases = append(result.Cases, c)
		}
	}
	result.Counters = sqlengine.VecCounters()
	return result, nil
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *VectorizedResult) Report() string {
	var b strings.Builder
	b.WriteString("Vectorized columnar engine vs row-at-a-time reference\n")
	b.WriteString("  shape    rows     vec rows/s   ref rows/s   speedup  vec allocs  ref allocs  alloc-ratio  same\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-8s %-8d %-12.0f %-12.0f %-8.1f %-11d %-11d %-12.1f %v\n",
			c.Shape, c.Rows, c.VecRowsPerS, c.RefRowsPerS, c.Speedup,
			c.VecAllocs, c.RefAllocs, c.AllocRatio, c.SameResult)
	}
	fmt.Fprintf(&b, "  engine counters: %v\n", r.Counters)
	return b.String()
}

// JSON renders the result for BENCH_vectorized.json.
func (r *VectorizedResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
