package server_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"datachat/internal/client"
	"datachat/internal/dataset"
	"datachat/internal/server"
	"datachat/internal/skills"
	"datachat/internal/wire"
)

// wideCSV builds an n-row CSV in the sales shape so streaming tests have
// enough rows for several chunks.
func wideCSV(n int) string {
	var b strings.Builder
	b.WriteString("order_id,region,status,price,discount\n")
	regions := []string{"east", "west", "north", "south"}
	for i := 1; i <= n; i++ {
		status := "Successful"
		if i%7 == 0 {
			status = "Unsuccessful"
		}
		fmt.Fprintf(&b, "%d,%s,%s,%d.5,0.1\n", i, regions[i%4], status, 20+i%200)
	}
	return b.String()
}

// TestRowStreamBadChunkParam pins the regression where chunk<=0 was silently
// clamped to the server maximum instead of refused: a zero or negative chunk
// is a client bug and must come back as a typed 400 before any execution
// slot is consumed.
func TestRowStreamBadChunkParam(t *testing.T) {
	srv, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	final := runPipeline(t, c, "s", "ann")

	for _, chunk := range []int{0, -5} {
		_, err := c.StreamRows(ctx, "s", final, chunk, nil)
		if err == nil {
			t.Fatalf("chunk=%d: expected error, got nil", chunk)
		}
		var we *wire.Error
		if !errors.As(err, &we) {
			t.Fatalf("chunk=%d: error %v is not a wire.Error", chunk, err)
		}
		if we.Status != http.StatusBadRequest || we.Code != wire.CodeBadRequest {
			t.Fatalf("chunk=%d: status=%d code=%q, want 400/%q", chunk, we.Status, we.Code, wire.CodeBadRequest)
		}
	}
	if got := srv.Stats().Requests; got != 0 {
		// Five pipeline runs counted; refused streams must not be. The
		// pipeline ran 5 requests, so anything beyond that is a leak.
		if got != 5 {
			t.Fatalf("requests = %d, want 5 (refused streams must not count)", got)
		}
	}
}

// TestRowStreamUnderAdmission pins the regression where the dataset stream
// endpoint bypassed admission control entirely: with the single execution
// slot held by a blocked run, a stream must be refused with a typed 429, and
// once the slot frees it must succeed and be counted in Requests.
func TestRowStreamUnderAdmission(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, c := newTestDeployment(t, server.Config{MaxInFlight: 1, MaxQueue: 0})
	registerBlockingSkill(t, srv.Platform(), started, release)
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)
	before := srv.Stats().Requests

	// Park a run on the only slot, in a second session so the stream is not
	// blocked by the session lock but by admission alone.
	if _, err := c.CreateSession(ctx, "blocker", "bob"); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "blocker", wire.RunRequest{User: "bob", Program: program("Block", "b")})
		runDone <- err
	}()
	<-started

	if _, err := c.StreamRows(ctx, "s", base, 3, nil); !client.IsThrottled(err) {
		t.Fatalf("stream while saturated: err = %v, want throttled 429", err)
	}

	close(release)
	if err := <-runDone; err != nil {
		t.Fatalf("blocking run: %v", err)
	}
	header, err := c.StreamRows(ctx, "s", base, 3, nil)
	if err != nil {
		t.Fatalf("stream after release: %v", err)
	}
	if header.TotalRows != 10 {
		t.Fatalf("TotalRows = %d, want 10", header.TotalRows)
	}
	// The successful stream (and the blocking run) must be counted.
	if got := srv.Stats().Requests; got != before+2 {
		t.Fatalf("requests = %d, want %d (stream must count as a request)", got, before+2)
	}
}

// TestRowStreamTerminalSentinel reads the NDJSON stream raw and checks the
// protocol contract directly: last line is a sentinel chunk with last=true
// and the final row count, so clients can tell completion from truncation.
func TestRowStreamTerminalSentinel(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+fmt.Sprintf("/v1/sessions/s/datasets/%s/stream?chunk=4", base), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// header + ceil(10/4)=3 chunks + sentinel.
	if len(lines) != 5 {
		t.Fatalf("stream lines = %d, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	last := lines[len(lines)-1]
	var rc wire.RowChunk
	if err := wire.DecodeJSON(bytes.NewReader([]byte(last)), &rc); err != nil {
		t.Fatalf("decoding sentinel: %v", err)
	}
	if !rc.Last || rc.TotalRows != 10 || len(rc.Rows) != 0 || rc.Error != nil {
		t.Fatalf("sentinel = %+v, want last=true total_rows=10 no rows no error", rc)
	}
}

// TestRunStreamEndToEnd drives the POST run/stream endpoint: the streamed
// result must reassemble to exactly the table a buffered run produces, the
// chunk size must follow MaxRows, and the executor's streamed counters must
// surface in /statsz.
func TestRunStreamEndToEnd(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", wideCSV(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	// Reference: the same step run buffered, fetched through pagination.
	refResp, err := c.RunGEL(ctx, "s", "ann", "Keep the rows where status = 'Successful'", base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.FetchTable(ctx, "s", nodeOutput(refResp), 7)
	if err != nil {
		t.Fatal(err)
	}

	chunks := 0
	var rows [][]any
	var header *wire.Table
	header, err = c.RunStream(ctx, "s", wire.RunRequest{
		User: "ann", GEL: "Keep the rows where status = 'Successful'", Current: base, MaxRows: 10,
	}, func(h *wire.Table, rc wire.RowChunk) error {
		chunks++
		if len(rc.Rows) > 10 {
			return fmt.Errorf("chunk of %d rows exceeds MaxRows=10", len(rc.Rows))
		}
		rows = append(rows, rc.Rows...)
		return nil
	})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if chunks < 2 {
		t.Fatalf("chunks = %d, want >= 2 (43 surviving rows at 10/chunk)", chunks)
	}
	if header.TotalRows != ref.NumRows() || len(rows) != ref.NumRows() {
		t.Fatalf("streamed %d rows (sentinel total %d), want %d", len(rows), header.TotalRows, ref.NumRows())
	}
	streamed, err := c.RunStreamTable(ctx, "s", wire.RunRequest{
		User: "ann", GEL: "Keep the rows where status = 'Successful'", Current: base, MaxRows: 10,
	})
	if err != nil {
		t.Fatalf("RunStreamTable: %v", err)
	}
	if !ref.Equal(streamed) {
		t.Fatal("streamed run result differs from buffered run result")
	}

	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exec["streamed_rows"] == 0 || stats.Exec["streamed_chunks"] == 0 {
		t.Fatalf("statsz streamed counters = %d chunks / %d rows, want non-zero",
			stats.Exec["streamed_chunks"], stats.Exec["streamed_rows"])
	}

	// A request that fails before the first chunk must come back as a plain
	// typed error, not a truncated stream.
	if _, err := c.RunStream(ctx, "s", wire.RunRequest{User: "ann", GEL: "florble the blorb"}, nil); err == nil {
		t.Fatal("expected error for unparseable GEL")
	} else if _, ok := err.(*wire.Error); !ok {
		t.Fatalf("pre-stream failure not typed: %T %v", err, err)
	}
}

// TestRunStreamSentinelStats drives the morsel-pipeline knobs over the wire:
// a run with a tiny max_buffered_rows budget must spill to disk instead of
// failing, stream the exact buffered result, and report the spill activity,
// worker count, and buffered-row peak in the terminal sentinel and /statsz.
func TestRunStreamSentinelStats(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", wideCSV(400)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	// 400 groups against a 16-row budget: the partitioned group-by must spill
	// rather than fail, and the stream must still match the buffered result.
	// The streamed run goes first — running the identical fragment buffered
	// beforehand would turn the stream into a sub-DAG cache hit that re-chunks
	// a materialized table instead of exercising the engine.
	const agg = "Compute the sum of price for each order_id and call the computed columns TotalPrice"
	streamed := 0
	header, stats, err := c.RunStreamStats(ctx, "s", wire.RunRequest{
		User: "ann", GEL: agg, Current: base,
		StreamWorkers: 2, MaxBufferedRows: 16,
	}, func(h *wire.Table, rc wire.RowChunk) error {
		streamed += len(rc.Rows)
		return nil
	})
	if err != nil {
		t.Fatalf("RunStreamStats: %v", err)
	}
	// Reference: the identical aggregate run buffered (a cache hit is fine —
	// a spilled execution must produce the exact table a clean one does).
	refResp, err := c.RunGEL(ctx, "s", "ann", agg, base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.FetchTable(ctx, "s", nodeOutput(refResp), 500)
	if err != nil {
		t.Fatal(err)
	}
	if header.TotalRows != ref.NumRows() || streamed != ref.NumRows() {
		t.Fatalf("streamed %d rows (sentinel total %d), want %d", streamed, header.TotalRows, ref.NumRows())
	}
	if stats == nil {
		t.Fatal("terminal sentinel carried no stream stats")
	}
	if stats.Workers != 2 {
		t.Fatalf("sentinel workers = %d, want 2", stats.Workers)
	}
	if stats.SpillRuns == 0 || stats.SpilledRows == 0 || stats.SpilledBytes == 0 {
		t.Fatalf("sentinel spill stats = %+v, want non-zero runs/rows/bytes", stats)
	}
	// Forced admission may overrun the budget by one state per partition.
	if stats.PeakBufferedRows <= 0 || stats.PeakBufferedRows > 16+stats.Workers {
		t.Fatalf("sentinel peak_buffered_rows = %d, want in (0, %d]", stats.PeakBufferedRows, 16+stats.Workers)
	}

	statsz, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsz.Exec["spilled_rows"] == 0 || statsz.Exec["spill_runs"] == 0 || statsz.Exec["peak_buffered_rows"] == 0 {
		t.Fatalf("statsz spill counters = %v, want non-zero spill_runs/spilled_rows/peak_buffered_rows", statsz.Exec)
	}

	// An absurd worker ask is capped server-side, not honored verbatim (a
	// fresh aggregate, so the run streams live instead of hitting the cache);
	// a negative budget is refused outright.
	_, stats, err = c.RunStreamStats(ctx, "s", wire.RunRequest{
		User: "ann", StreamWorkers: 100000, Current: base,
		GEL: "Compute the sum of discount for each order_id and call the computed columns TotalDiscount",
	}, nil)
	if err != nil {
		t.Fatalf("capped-workers run: %v", err)
	}
	if stats == nil || stats.Workers > 64 {
		t.Fatalf("workers ask 100000 resolved to %+v, want capped at 64", stats)
	}
	if _, _, err := c.RunStreamStats(ctx, "s", wire.RunRequest{
		User: "ann", GEL: agg, Current: base, MaxBufferedRows: -1,
	}, nil); err == nil {
		t.Fatal("negative max_buffered_rows accepted, want 400")
	}
}

// TestRunStreamClientCancelMidStream cancels a streaming run from inside the
// chunk callback and checks the deployment stays healthy: the slot and the
// session lock are released, so an immediate follow-up run succeeds. Run
// under -race this also shakes out writer/executor races on the stream path.
func TestRunStreamClientCancelMidStream(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", wideCSV(400)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunks := 0
	_, err = c.RunStream(streamCtx, "s", wire.RunRequest{
		User: "ann", GEL: "Keep the rows where status = 'Successful'", Current: base, MaxRows: 5,
	}, func(h *wire.Table, rc wire.RowChunk) error {
		chunks++
		if chunks == 1 {
			cancel()
		}
		return streamCtx.Err()
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}

	// The deployment must be fully usable immediately afterwards.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = c.RunGEL(ctx, "s", "ann", "Keep the rows where region = 'east'", base)
		if err == nil {
			break
		}
		if !client.IsBusy(err) || time.Now().After(deadline) {
			t.Fatalf("follow-up run after cancel: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRowStreamDrainMidStream starts a stream, initiates shutdown while it
// is mid-flight, and checks the drain contract: the in-flight stream runs to
// its sentinel, new streams are refused 503, and Shutdown returns once the
// stream finishes. Run under -race this exercises drain/stream interleaving.
func TestRowStreamDrainMidStream(t *testing.T) {
	srv, c := newTestDeployment(t, server.Config{MaxInFlight: 4})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", wideCSV(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	firstChunk := make(chan struct{})
	drained := make(chan error, 1)
	streamDone := make(chan error, 1)
	go func() {
		chunks := 0
		_, err := c.StreamRows(ctx, "s", base, 10, func(h *wire.Table, rc wire.RowChunk) error {
			chunks++
			if chunks == 1 {
				close(firstChunk)
				// Hold the stream open until shutdown is observed in
				// progress, so the sentinel is written during drain.
				for !srv.Draining() {
					time.Sleep(time.Millisecond)
				}
			}
			return nil
		})
		streamDone <- err
	}()

	<-firstChunk
	go func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		drained <- srv.Shutdown(sctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the in-flight stream drains.
	if _, err := c.StreamRows(ctx, "s", base, 10, nil); !client.IsDraining(err) {
		t.Fatalf("stream during drain: err = %v, want draining 503", err)
	}

	if err := <-streamDone; err != nil {
		t.Fatalf("in-flight stream during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestRunStreamDegradedSentinel pins streamed-vs-buffered equality of the
// degraded-scan annotation: a buffered Run carries Degraded/DegradedNote on
// the result, but a stream never encodes the result object, so the terminal
// sentinel's stats must carry the same two fields. This guards the
// regression where handleRunStream discarded the result and streaming
// clients silently lost the §2.3 data-quality signal.
func TestRunStreamDegradedSentinel(t *testing.T) {
	srv, c := newTestDeployment(t, server.Config{})
	err := srv.Platform().Registry.Register(&skills.Definition{
		Name:     "StaleScan",
		Category: skills.DataWrangling,
		Summary:  "test skill: serves a degraded result",
		GEL:      "StaleScan",
		Volatile: true,
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			tab, err := dataset.NewTable(inv.Output, dataset.IntColumn("v", []int64{7, 8, 9}, nil))
			if err != nil {
				return nil, err
			}
			return &skills.Result{
				Table: tab, Degraded: true,
				DegradedNote: "served from snapshot aged 2h after primary scan failed",
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s", "ann"); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Run(ctx, "s", wire.RunRequest{User: "ann", Program: program("StaleScan", "d1")})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Result.Degraded || resp.Result.DegradedNote == "" {
		t.Fatalf("buffered result = %+v, want degraded with note", resp.Result)
	}

	rows := 0
	_, stats, err := c.RunStreamStats(ctx, "s", wire.RunRequest{
		User: "ann", Program: program("StaleScan", "d2"),
	}, func(h *wire.Table, rc wire.RowChunk) error {
		rows += len(rc.Rows)
		return nil
	})
	if err != nil {
		t.Fatalf("RunStreamStats: %v", err)
	}
	if rows != 3 {
		t.Fatalf("streamed %d rows, want 3", rows)
	}
	if stats == nil {
		t.Fatal("stream ended without sentinel stats")
	}
	if stats.Degraded != resp.Result.Degraded || stats.DegradedNote != resp.Result.DegradedNote {
		t.Fatalf("sentinel degraded = (%v, %q), buffered result = (%v, %q); the stream must carry the same annotation",
			stats.Degraded, stats.DegradedNote, resp.Result.Degraded, resp.Result.DegradedNote)
	}
}
