package dag

import (
	"fmt"

	"datachat/internal/plan"
	"datachat/internal/skills"
)

// lowerGraph lowers the whole graph into the logical-plan IR targeting
// target. Parent edges become plan inputs with the producers' output names
// resolved; the slice pass then prunes whatever the target does not need.
func lowerGraph(g *Graph, target NodeID) (*plan.Plan, error) {
	// One read lock for the whole walk; everything below uses direct field
	// access (the locked accessors would self-deadlock under RWMutex).
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[target]; !ok {
		return nil, fmt.Errorf("dag: no node %d", target)
	}
	lp := plan.New(int(target))
	for _, id := range g.order {
		n := g.nodes[id]
		pn := &plan.Node{
			ID:     int(id),
			Skill:  n.Inv.Skill,
			Args:   n.Inv.Args,
			Output: n.Inv.Output,
		}
		for i, p := range n.Parents {
			if p < 0 {
				pn.Inputs = append(pn.Inputs, plan.Input{Node: plan.External, Name: n.Inv.Inputs[i]})
			} else {
				pn.Inputs = append(pn.Inputs, plan.Input{Node: int(p), Name: g.nodes[p].OutputName()})
			}
		}
		lp.Add(pn)
	}
	return lp, nil
}

// logicalPlan lowers g and runs the executor's configured pass pipeline:
// slice, fuse (Fuse), fingerprint, cache probe (UseCache), consolidate
// (Consolidate), pushdown (Pushdown). With readOnly set the cache probe uses
// a side-effect-free peek, so Explain never perturbs stats or LRU recency.
func (e *Executor) logicalPlan(g *Graph, target NodeID, readOnly bool) (*plan.Plan, error) {
	lp, err := lowerGraph(g, target)
	if err != nil {
		return nil, err
	}
	env := &plan.Env{
		Lookup: e.Registry.Lookup,
		ExtFingerprint: func(name string) (uint64, bool) {
			fp, err := e.Ctx.Fingerprint(name)
			if err != nil {
				return 0, false
			}
			return fp, true
		},
		SourceFingerprint: func(skill string, args skills.Args) (uint64, bool) {
			def, err := e.Registry.Lookup(skill)
			if err != nil || def.SourceFingerprint == nil {
				return 0, false
			}
			return def.SourceFingerprint(e.Ctx, args)
		},
	}
	if e.UseCache {
		if readOnly {
			env.CacheGet = func(key string) (*skills.Result, bool) {
				return nil, e.cache.Peek(key)
			}
		} else {
			env.CacheGet = func(key string) (*skills.Result, bool) {
				res, ok := e.cache.Get(key)
				if ok {
					e.counters.cacheHits.Add(1)
				}
				return res, ok
			}
		}
	}
	passes := []plan.Pass{plan.SlicePass()}
	if e.Fuse {
		passes = append(passes, plan.FusePass())
	}
	passes = append(passes, plan.FingerprintPass(), plan.CacheProbePass())
	if e.Consolidate {
		passes = append(passes, plan.ConsolidatePass())
	}
	if e.Pushdown {
		passes = append(passes, plan.PushdownPass())
	}
	if err := plan.RunPasses(lp, env, passes...); err != nil {
		return nil, err
	}
	return lp, nil
}

// Explain compiles — but does not execute — the sub-DAG ending at target
// through the full pass pipeline and returns the plan report: surviving
// nodes, consolidated SQL fragments, and which passes fired.
func (e *Executor) Explain(g *Graph, target NodeID) (*plan.Explain, error) {
	lp, err := e.logicalPlan(g, target, true)
	if err != nil {
		return nil, err
	}
	return plan.NewExplain(lp), nil
}
