// Package faults is the deterministic failure model of the reproduction:
// a seedable injector that wraps the cloud database and the snapshot store
// to surface typed transient/permanent errors (throttled scans, block-read
// I/O errors, latency spikes, snapshot misses) on a configurable schedule,
// plus the retry machinery — capped exponential backoff with jitter, virtual
// clocks, and deadlines — that the DAG scheduler and the session lock use to
// recover from them.
//
// The paper's engine runs skill DAGs against a consumption-priced cloud
// database (§3) and assumes concurrent requests can simply fail (§2.4); a
// production deployment of that design needs per-task retry and degradation
// semantics, and this package makes those paths provable: every fault
// sequence is a pure function of the schedule's seed, and all waiting is
// virtual-time, so chaos tests run fast and deterministically under -race.
package faults

import (
	"errors"
	"fmt"
)

// Kind names one injected failure mode.
type Kind string

// The injectable failure modes.
const (
	// Throttled is a scan rejected by the warehouse's rate limiter.
	Throttled Kind = "throttled"
	// BlockIO is an I/O error reading one storage block.
	BlockIO Kind = "block-io"
	// LatencySpike is an operation that blew its latency budget; the
	// injector also advances the virtual clock by the configured spike.
	LatencySpike Kind = "latency-spike"
	// SnapshotMiss is a snapshot-store read that transiently missed.
	SnapshotMiss Kind = "snapshot-miss"
	// Unavailable is a service outage that retrying cannot fix.
	Unavailable Kind = "unavailable"
)

// Class separates errors retrying can fix from errors it cannot.
type Class int

// The error classes.
const (
	// Transient errors succeed on retry once the condition clears.
	Transient Class = iota
	// Permanent errors fail every retry; callers should degrade or abort.
	Permanent
)

// String names the class.
func (c Class) String() string {
	if c == Permanent {
		return "permanent"
	}
	return "transient"
}

// Error is one typed injected failure. It records where in the fault
// sequence it was drawn (Seq), which lets tests assert that the same seed
// and schedule always produce the identical sequence.
type Error struct {
	// Op is the wrapped operation ("scan", "sample", "snapshot-get", ...).
	Op string
	// Target is the table or snapshot the operation addressed.
	Target string
	// Kind is the failure mode.
	Kind Kind
	// Class is transient or permanent.
	Class Class
	// Seq is the 1-based position in the injector's fault sequence.
	Seq int
}

// Error renders the fault.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: %s %s on %s %q (fault #%d)", e.Class, e.Kind, e.Op, e.Target, e.Seq)
}

// Temporary reports whether the error is transient, following the
// convention of net.Error-style interfaces.
func (e *Error) Temporary() bool { return e.Class == Transient }

// IsTransient reports whether err is (or wraps) a transient injected fault.
// Every other error — permanent faults, plain execution errors, context
// cancellation — is treated as non-retryable by the schedulers.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class == Transient
}

// IsPermanent reports whether err is (or wraps) a permanent injected fault.
func IsPermanent(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class == Permanent
}

// KindOf returns the fault kind carried by err ("" when err carries none).
func KindOf(err error) Kind {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Kind
	}
	return ""
}
