package skills

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/expr"
	"datachat/internal/sqlengine"
)

// tableEnv adapts one table row to expr.Env.
type tableEnv struct {
	t   *dataset.Table
	row int
}

// Lookup implements expr.Env.
func (e tableEnv) Lookup(name string) (dataset.Value, error) {
	c, err := e.t.Column(name)
	if err != nil {
		return dataset.Null, err
	}
	return c.Value(e.row), nil
}

// parseCondition parses a GEL/SQL condition expression.
func parseCondition(s string) (expr.Expr, error) {
	cond, err := sqlengine.ParseExpr(s)
	if err != nil {
		return nil, fmt.Errorf("skills: invalid condition %q: %w", s, err)
	}
	return cond, nil
}

// filterTable returns the rows of t satisfying cond.
func filterTable(t *dataset.Table, cond expr.Expr) (*dataset.Table, error) {
	keep := make([]int, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		ok, err := expr.EvalBool(cond, tableEnv{t, i})
		if err != nil {
			return nil, err
		}
		if ok {
			keep = append(keep, i)
		}
	}
	return t.Take(keep), nil
}

// evalColumn evaluates an expression for every row, producing a new column.
func evalColumn(t *dataset.Table, name string, e expr.Expr) (*dataset.Column, error) {
	builder := dataset.NewColumn(name, dataset.TypeNull)
	vals := make([]dataset.Value, t.NumRows())
	typ := dataset.TypeNull
	for i := 0; i < t.NumRows(); i++ {
		v, err := e.Eval(tableEnv{t, i})
		if err != nil {
			return nil, err
		}
		vals[i] = v
		if !v.IsNull() {
			typ = dataset.CommonType(typ, v.Type)
		}
	}
	if typ == dataset.TypeNull {
		typ = dataset.TypeString
	}
	builder = dataset.NewColumn(name, typ)
	for _, v := range vals {
		builder.Append(v)
	}
	return builder, nil
}

func wranglingSkills() []*Definition {
	return []*Definition{
		{
			Name:     "KeepRows",
			Category: DataWrangling,
			Summary:  "Keep only the rows matching a condition",
			Params: []ParamSpec{
				{"condition", "expression", true, "boolean expression rows must satisfy"},
			},
			GEL:        "Keep the rows where {condition}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				condStr, err := inv.Args.String("condition")
				if err != nil {
					return nil, err
				}
				cond, err := parseCondition(condStr)
				if err != nil {
					return nil, err
				}
				out, err := filterTable(t, cond)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out, Message: fmt.Sprintf("Kept %d of %d rows", out.NumRows(), t.NumRows())}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				condStr, err := inv.Args.String("condition")
				if err != nil {
					return err
				}
				cond, err := parseCondition(condStr)
				if err != nil {
					return err
				}
				b.Where(cond)
				return nil
			},
		},
		{
			Name:     "DropRows",
			Category: DataWrangling,
			Summary:  "Remove the rows matching a condition",
			Params: []ParamSpec{
				{"condition", "expression", true, "boolean expression of rows to remove"},
			},
			GEL:        "Drop the rows where {condition}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				condStr, err := inv.Args.String("condition")
				if err != nil {
					return nil, err
				}
				cond, err := parseCondition(condStr)
				if err != nil {
					return nil, err
				}
				out, err := filterTable(t, expr.Not(cond))
				if err != nil {
					return nil, err
				}
				return &Result{Table: out, Message: fmt.Sprintf("Dropped %d rows", t.NumRows()-out.NumRows())}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				condStr, err := inv.Args.String("condition")
				if err != nil {
					return err
				}
				cond, err := parseCondition(condStr)
				if err != nil {
					return err
				}
				b.Where(expr.Not(cond))
				return nil
			},
		},
		{
			Name:     "KeepColumns",
			Category: DataWrangling,
			Summary:  "Keep only the named columns, in order",
			Params: []ParamSpec{
				{"columns", "columns", true, "columns to keep"},
			},
			GEL:        "Keep the columns {columns}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				cols, err := inv.Args.StringList("columns")
				if err != nil {
					return nil, err
				}
				out, err := t.Select(cols...)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				cols, err := inv.Args.StringList("columns")
				if err != nil {
					return err
				}
				b.Project(cols)
				return nil
			},
		},
		{
			Name:     "DropColumns",
			Category: DataWrangling,
			Summary:  "Remove the named columns",
			Params: []ParamSpec{
				{"columns", "columns", true, "columns to remove"},
			},
			GEL: "Drop the columns {columns}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				cols, err := inv.Args.StringList("columns")
				if err != nil {
					return nil, err
				}
				out, err := t.Drop(cols...)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "RenameColumn",
			Category: DataWrangling,
			Summary:  "Rename a column",
			Params: []ParamSpec{
				{"column", "column", true, "existing column name"},
				{"to", "string", true, "new column name"},
			},
			GEL: "Rename the column {column} to {to}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				from, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				to, err := inv.Args.String("to")
				if err != nil {
					return nil, err
				}
				c, err := t.Column(from)
				if err != nil {
					return nil, err
				}
				if t.HasColumn(to) {
					return nil, fmt.Errorf("skills: column %q already exists", to)
				}
				cols := make([]*dataset.Column, 0, t.NumCols())
				for _, existing := range t.Columns() {
					if existing == c {
						cols = append(cols, c.Rename(to))
					} else {
						cols = append(cols, existing)
					}
				}
				out, err := dataset.NewTable(t.Name(), cols...)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "NewColumn",
			Category: DataWrangling,
			Summary:  "Create a new column from a formula or constant text",
			Params: []ParamSpec{
				{"name", "string", true, "new column name"},
				{"formula", "expression", false, "expression computed per row"},
				{"text", "string", false, "constant text value"},
			},
			GEL:        "Create a new column {name} with {formula}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				name, err := inv.Args.String("name")
				if err != nil {
					return nil, err
				}
				e, err := newColumnExpr(inv.Args)
				if err != nil {
					return nil, err
				}
				col, err := evalColumn(t, name, e)
				if err != nil {
					return nil, err
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				name, err := inv.Args.String("name")
				if err != nil {
					return err
				}
				e, err := newColumnExpr(inv.Args)
				if err != nil {
					return err
				}
				b.AddColumn(name, e)
				return nil
			},
		},
		{
			Name:     "ChangeType",
			Category: DataWrangling,
			Summary:  "Convert a column to another type",
			Params: []ParamSpec{
				{"column", "column", true, "column to convert"},
				{"type", "string", true, "target type: int, float, string, bool, or time"},
			},
			GEL: "Change the type of {column} to {type}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				colName, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				e := expr.Func("CAST", expr.Column(colName), expr.Lit(dataset.Str(inv.Args.StringOr("type", "string"))))
				col, err := evalColumn(t, colName, e)
				if err != nil {
					return nil, err
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "FillNull",
			Category: DataWrangling,
			Summary:  "Replace null values in a column with a constant",
			Params: []ParamSpec{
				{"column", "column", true, "column to fill"},
				{"value", "string", true, "replacement value"},
			},
			GEL: "Fill the null values in {column} with {value}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				colName, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				valueStr, err := inv.Args.String("value")
				if err != nil {
					return nil, err
				}
				e := expr.Func("COALESCE", expr.Column(colName), expr.Lit(dataset.ParseValue(valueStr)))
				col, err := evalColumn(t, colName, e)
				if err != nil {
					return nil, err
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "ReplaceValues",
			Category: DataWrangling,
			Summary:  "Replace every occurrence of a value in a column",
			Params: []ParamSpec{
				{"column", "column", true, "column to rewrite"},
				{"from", "string", true, "value to replace"},
				{"to", "string", true, "replacement value"},
			},
			GEL: "Replace {from} with {to} in the column {column}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				colName, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				fromStr, err := inv.Args.String("from")
				if err != nil {
					return nil, err
				}
				toStr, err := inv.Args.String("to")
				if err != nil {
					return nil, err
				}
				c, err := t.Column(colName)
				if err != nil {
					return nil, err
				}
				from := dataset.ParseValue(fromStr)
				to := dataset.ParseValue(toStr)
				out := dataset.NewColumn(c.Name(), dataset.CommonType(c.Type(), to.Type))
				for i := 0; i < c.Len(); i++ {
					v := c.Value(i)
					if !v.IsNull() && dataset.Equal(v, from) {
						out.Append(to)
					} else {
						out.Append(v)
					}
				}
				table, err := t.WithColumn(out)
				if err != nil {
					return nil, err
				}
				return &Result{Table: table}, nil
			},
		},
		{
			Name:     "SortRows",
			Category: DataWrangling,
			Summary:  "Sort rows by one or more columns",
			Params: []ParamSpec{
				{"columns", "columns", true, "sort keys, most significant first"},
				{"descending", "bool", false, "sort in descending order"},
			},
			GEL:        "Sort the rows by {columns}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				cols, err := inv.Args.StringList("columns")
				if err != nil {
					return nil, err
				}
				desc := make([]bool, len(cols))
				if inv.Args.Bool("descending") {
					for i := range desc {
						desc[i] = true
					}
				}
				out, err := t.SortBy(cols, desc)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				cols, err := inv.Args.StringList("columns")
				if err != nil {
					return err
				}
				desc := make([]bool, len(cols))
				if inv.Args.Bool("descending") {
					for i := range desc {
						desc[i] = true
					}
				}
				b.OrderBy(cols, desc)
				return nil
			},
		},
		{
			Name:     "LimitRows",
			Category: DataWrangling,
			Summary:  "Keep only the first N rows",
			Params: []ParamSpec{
				{"count", "number", true, "maximum rows to keep"},
			},
			GEL:        "Limit the data to {count} rows",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				n, err := inv.Args.Int("count")
				if err != nil {
					return nil, err
				}
				if n < 0 {
					return nil, fmt.Errorf("skills: limit must be non-negative, got %d", n)
				}
				return &Result{Table: t.Head(n)}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				n, err := inv.Args.Int("count")
				if err != nil {
					return err
				}
				if n < 0 {
					return fmt.Errorf("skills: limit must be non-negative, got %d", n)
				}
				b.Limit(n)
				return nil
			},
		},
		{
			Name:     "SampleRows",
			Category: DataWrangling,
			Summary:  "Keep a random fraction of the rows",
			Params: []ParamSpec{
				{"fraction", "number", true, "fraction of rows to keep, in (0, 1]"},
			},
			GEL: "Sample {fraction} of the rows",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				frac, err := inv.Args.Float("fraction")
				if err != nil {
					return nil, err
				}
				if frac <= 0 || frac > 1 {
					return nil, fmt.Errorf("skills: sample fraction %v out of range (0, 1]", frac)
				}
				rng := rand.New(rand.NewSource(ctx.Seed))
				keep := make([]int, 0, int(float64(t.NumRows())*frac)+1)
				for i := 0; i < t.NumRows(); i++ {
					if rng.Float64() < frac {
						keep = append(keep, i)
					}
				}
				return &Result{Table: t.Take(keep)}, nil
			},
		},
		{
			Name:     "DistinctRows",
			Category: DataWrangling,
			Summary:  "Remove duplicate rows",
			Params: []ParamSpec{
				{"columns", "columns", false, "columns to deduplicate on (all when omitted)"},
			},
			GEL:        "Remove duplicate rows",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				// With explicit columns the result is the distinct
				// combinations of those columns (matching SELECT DISTINCT
				// cols); without, whole duplicate rows are removed.
				if cols := inv.Args.StringListOr("columns"); len(cols) > 0 {
					projected, err := t.Select(cols...)
					if err != nil {
						return nil, err
					}
					t = projected
				}
				out, err := t.Distinct()
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				if cols := inv.Args.StringListOr("columns"); len(cols) > 0 {
					b.Project(cols)
				}
				b.Distinct()
				return nil
			},
		},
		{
			Name:     "Concatenate",
			Category: DataWrangling,
			Summary:  "Append one dataset to another, matching columns by name",
			Params: []ParamSpec{
				{"dedupe", "bool", false, "remove duplicate rows after concatenating"},
			},
			GEL: "Concatenate the datasets {inputs}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				if len(inv.Inputs) < 2 {
					return nil, fmt.Errorf("skills: Concatenate needs at least two input datasets")
				}
				out, err := ctx.Dataset(inv.Inputs[0])
				if err != nil {
					return nil, err
				}
				for _, name := range inv.Inputs[1:] {
					next, err := ctx.Dataset(name)
					if err != nil {
						return nil, err
					}
					if out, err = out.Concat(next, false); err != nil {
						return nil, err
					}
				}
				if inv.Args.Bool("dedupe") {
					var err error
					if out, err = out.Distinct(); err != nil {
						return nil, err
					}
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "JoinDatasets",
			Category: DataWrangling,
			Summary:  "Join two datasets on matching key columns",
			Params: []ParamSpec{
				{"on", "string", true, "join condition, e.g. left.id = right.person_id"},
				{"kind", "string", false, "inner (default), left, or cross"},
				{"columns", "columns", false, "output column order (plan join reordering)"},
			},
			GEL: "Join the datasets {inputs} on {on}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				if len(inv.Inputs) != 2 {
					return nil, fmt.Errorf("skills: JoinDatasets needs exactly two input datasets")
				}
				project := func(res *Result, err error) (*Result, error) {
					// The join-reorder pass permutes probe sides and pins the
					// original output column order back with "columns".
					cols := inv.Args.StringListOr("columns")
					if err != nil || len(cols) == 0 {
						return res, err
					}
					t, serr := res.Table.Select(cols...)
					if serr != nil {
						return nil, serr
					}
					return &Result{Table: t, Message: res.Message, Degraded: res.Degraded, DegradedNote: res.DegradedNote}, nil
				}
				left, err := ctx.Dataset(inv.Inputs[0])
				if err != nil {
					return nil, err
				}
				right, err := ctx.Dataset(inv.Inputs[1])
				if err != nil {
					return nil, err
				}
				on, err := inv.Args.String("on")
				if err != nil {
					return nil, err
				}
				lName, rName := inv.Inputs[0], inv.Inputs[1]
				tables := map[string]*dataset.Table{lName: left, rName: right}
				kindWord := strings.ToUpper(inv.Args.StringOr("kind", "inner"))
				var joinSQL string
				switch kindWord {
				case "INNER":
					joinSQL = "JOIN"
				case "LEFT":
					joinSQL = "LEFT JOIN"
				case "CROSS":
					res, err := sqlOverTables(tables,
						fmt.Sprintf("SELECT * FROM %s CROSS JOIN %s", lName, rName))
					return project(res, err)
				default:
					return nil, fmt.Errorf("skills: unknown join kind %q", kindWord)
				}
				query := fmt.Sprintf("SELECT * FROM %s %s %s ON %s", lName, joinSQL, rName, on)
				res, err := sqlOverTables(tables, query)
				return project(res, err)
			},
		},
		{
			Name:     "Compute",
			Category: DataWrangling,
			Summary:  "Compute aggregates, optionally grouped",
			Params: []ParamSpec{
				{"aggregates", "aggregates", true, "aggregates like 'count of case_id as NumberOfCases'"},
				{"for_each", "columns", false, "grouping columns"},
			},
			GEL:        "Compute the {aggregates} for each {for_each}",
			PyName:     "compute",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				aggs, err := inv.Args.AggSpecs("aggregates")
				if err != nil {
					return nil, err
				}
				keys := inv.Args.StringListOr("for_each")
				out, err := computeGrouped(t, aggs, keys)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				aggs, err := inv.Args.AggSpecs("aggregates")
				if err != nil {
					return err
				}
				return b.GroupBy(aggs, inv.Args.StringListOr("for_each"))
			},
		},
		{
			Name:     "Pivot",
			Category: DataWrangling,
			Summary:  "Pivot a category column into one measure column per category",
			Params: []ParamSpec{
				{"rows", "column", true, "column whose values become output rows"},
				{"columns", "column", true, "column whose values become output columns"},
				{"measure", "aggregates", true, "aggregate applied per cell, e.g. 'sum of amount'"},
			},
			GEL: "Pivot {columns} against {rows} computing {measure}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				return applyPivot(t, inv.Args)
			},
		},
		{
			Name:     "Bin",
			Category: DataWrangling,
			Summary:  "Bucket a numeric column into fixed-width bins",
			Params: []ParamSpec{
				{"column", "column", true, "numeric column to bin"},
				{"size", "number", true, "bin width"},
				{"name", "string", false, "output column name (defaults to <column>Int<size>)"},
			},
			GEL:        "Create bins of size {size} on {column}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				name, e, err := binExpr(inv.Args)
				if err != nil {
					return nil, err
				}
				col, err := evalColumn(t, name, e)
				if err != nil {
					return nil, err
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				name, e, err := binExpr(inv.Args)
				if err != nil {
					return err
				}
				b.AddColumn(name, e)
				return nil
			},
		},
		{
			Name:     "ExtractDatePart",
			Category: DataWrangling,
			Summary:  "Extract the year, month, or day from a date column",
			Params: []ParamSpec{
				{"column", "column", true, "date column"},
				{"part", "string", true, "year, month, or day"},
				{"name", "string", false, "output column name"},
			},
			GEL:        "Extract the {part} from {column}",
			Relational: true,
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				name, e, err := datePartExpr(inv.Args)
				if err != nil {
					return nil, err
				}
				col, err := evalColumn(t, name, e)
				if err != nil {
					return nil, err
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
			MergeSQL: func(b *QueryBuilder, inv Invocation) error {
				name, e, err := datePartExpr(inv.Args)
				if err != nil {
					return err
				}
				b.AddColumn(name, e)
				return nil
			},
		},
	}
}

func newColumnExpr(args Args) (expr.Expr, error) {
	if text, err := args.String("text"); err == nil {
		return expr.Lit(dataset.Str(text)), nil
	}
	formula, err := args.String("formula")
	if err != nil {
		return nil, fmt.Errorf("skills: NewColumn needs either a formula or text parameter")
	}
	return parseCondition(formula)
}

func binExpr(args Args) (string, expr.Expr, error) {
	colName, err := args.String("column")
	if err != nil {
		return "", nil, err
	}
	size, err := args.Float("size")
	if err != nil {
		return "", nil, err
	}
	if size <= 0 {
		return "", nil, fmt.Errorf("skills: bin size must be positive, got %v", size)
	}
	name := args.StringOr("name", fmt.Sprintf("%sInt%d", colName, int(size)))
	// FLOOR(col / size) * size
	e := expr.Bin(expr.OpMul,
		expr.Func("FLOOR", expr.Bin(expr.OpDiv, expr.Column(colName), expr.Lit(dataset.Float(size)))),
		expr.Lit(dataset.Float(size)))
	return name, e, nil
}

func datePartExpr(args Args) (string, expr.Expr, error) {
	colName, err := args.String("column")
	if err != nil {
		return "", nil, err
	}
	part := strings.ToUpper(args.StringOr("part", ""))
	switch part {
	case "YEAR", "MONTH", "DAY":
	default:
		return "", nil, fmt.Errorf("skills: date part must be year, month, or day; got %q", part)
	}
	name := args.StringOr("name", colName+"_"+strings.ToLower(part))
	return name, expr.Func(part, expr.Column(colName)), nil
}

// sqlOverTables executes a query against an ad-hoc catalog; the helper the
// direct path uses for joins and pivots.
func sqlOverTables(tables map[string]*dataset.Table, query string) (*Result, error) {
	out, err := sqlengine.Exec(sqlengine.NewMapCatalog(tables), query)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out}, nil
}

// computeGrouped is the direct (non-SQL) implementation of Compute.
func computeGrouped(t *dataset.Table, aggs []AggSpec, keys []string) (*dataset.Table, error) {
	keyCols := make([]*dataset.Column, len(keys))
	for i, k := range keys {
		c, err := t.Column(k)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	type group struct {
		first int
		rows  []int
	}
	groups := map[string]*group{}
	var order []string
	for r := 0; r < t.NumRows(); r++ {
		var kb strings.Builder
		for _, c := range keyCols {
			v := c.Value(r)
			kb.WriteString(v.Type.String())
			kb.WriteByte(':')
			kb.WriteString(v.String())
			kb.WriteByte('\x00')
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = &group{first: r}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, r)
	}
	if len(keys) == 0 && len(order) == 0 {
		// Aggregate over an empty ungrouped table still yields one row.
		groups[""] = &group{first: -1}
		order = append(order, "")
	}
	// Resolve aggregate input columns once.
	aggCols := make([]*dataset.Column, len(aggs))
	for i, a := range aggs {
		if a.Column == "*" || a.Column == "" {
			continue
		}
		c, err := t.Column(a.Column)
		if err != nil {
			return nil, err
		}
		aggCols[i] = c
	}
	outCols := make([]*dataset.Column, 0, len(keys)+len(aggs))
	for i, k := range keys {
		_ = k
		outCols = append(outCols, dataset.NewColumn(keyCols[i].Name(), keyCols[i].Type()))
	}
	aggBuilders := make([][]dataset.Value, len(aggs))
	for _, key := range order {
		g := groups[key]
		for i := range keys {
			if g.first >= 0 {
				outCols[i].Append(keyCols[i].Value(g.first))
			} else {
				outCols[i].Append(dataset.Null)
			}
		}
		for ai, a := range aggs {
			v, err := directAgg(a, aggCols[ai], g.rows)
			if err != nil {
				return nil, err
			}
			aggBuilders[ai] = append(aggBuilders[ai], v)
		}
	}
	for ai, a := range aggs {
		typ := dataset.TypeNull
		for _, v := range aggBuilders[ai] {
			if !v.IsNull() {
				typ = dataset.CommonType(typ, v.Type)
			}
		}
		if typ == dataset.TypeNull {
			typ = dataset.TypeFloat
		}
		col := dataset.NewColumn(a.OutName(), typ)
		for _, v := range aggBuilders[ai] {
			col.Append(v)
		}
		outCols = append(outCols, col)
	}
	out, err := dataset.NewTable(t.Name(), outCols...)
	if err != nil {
		return nil, err
	}
	// Deterministic output order: sort by the group keys.
	if len(keys) > 0 {
		return out.SortBy(keys, nil)
	}
	return out, nil
}

func directAgg(a AggSpec, col *dataset.Column, rows []int) (dataset.Value, error) {
	if a.Column == "*" || a.Column == "" {
		if strings.ToLower(a.Func) != "count" {
			return dataset.Null, fmt.Errorf("skills: %s requires a column", a.Func)
		}
		return dataset.Int(int64(len(rows))), nil
	}
	var vals []dataset.Value
	seen := map[string]bool{}
	distinct := strings.ToLower(a.Func) == "count_distinct"
	for _, r := range rows {
		v := col.Value(r)
		if v.IsNull() {
			continue
		}
		if distinct {
			key := v.Type.String() + ":" + v.String()
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		vals = append(vals, v)
	}
	switch strings.ToLower(a.Func) {
	case "count", "count_distinct":
		return dataset.Int(int64(len(vals))), nil
	case "min", "max":
		if len(vals) == 0 {
			return dataset.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp := dataset.Compare(v, best)
			if (strings.EqualFold(a.Func, "min") && cmp < 0) || (strings.EqualFold(a.Func, "max") && cmp > 0) {
				best = v
			}
		}
		return best, nil
	case "sum", "avg", "average", "median", "stddev":
		if len(vals) == 0 {
			return dataset.Null, nil
		}
		nums := make([]float64, 0, len(vals))
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return dataset.Null, fmt.Errorf("skills: %s over non-numeric column %q", a.Func, a.Column)
			}
			if v.Type != dataset.TypeInt {
				allInt = false
			}
			nums = append(nums, f)
		}
		switch strings.ToLower(a.Func) {
		case "sum":
			total := 0.0
			for _, f := range nums {
				total += f
			}
			if allInt {
				return dataset.Int(int64(total)), nil
			}
			return dataset.Float(total), nil
		case "avg", "average":
			total := 0.0
			for _, f := range nums {
				total += f
			}
			return dataset.Float(total / float64(len(nums))), nil
		case "median":
			sort.Float64s(nums)
			mid := len(nums) / 2
			if len(nums)%2 == 1 {
				return dataset.Float(nums[mid]), nil
			}
			return dataset.Float((nums[mid-1] + nums[mid]) / 2), nil
		default: // stddev (population)
			mean := 0.0
			for _, f := range nums {
				mean += f
			}
			mean /= float64(len(nums))
			ss := 0.0
			for _, f := range nums {
				ss += (f - mean) * (f - mean)
			}
			return dataset.Float(sqrt(ss / float64(len(nums)))), nil
		}
	default:
		return dataset.Null, fmt.Errorf("skills: unknown aggregate function %q", a.Func)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method; avoids importing math for one call site.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func applyPivot(t *dataset.Table, args Args) (*Result, error) {
	rowsCol, err := args.String("rows")
	if err != nil {
		return nil, err
	}
	colsName, err := args.String("columns")
	if err != nil {
		return nil, err
	}
	measures, err := args.AggSpecs("measure")
	if err != nil {
		return nil, err
	}
	if len(measures) != 1 {
		return nil, fmt.Errorf("skills: Pivot takes exactly one measure, got %d", len(measures))
	}
	measure := measures[0]
	rc, err := t.Column(rowsCol)
	if err != nil {
		return nil, err
	}
	cc, err := t.Column(colsName)
	if err != nil {
		return nil, err
	}
	var mc *dataset.Column
	if measure.Column != "*" && measure.Column != "" {
		if mc, err = t.Column(measure.Column); err != nil {
			return nil, err
		}
	}
	rowKeys, colKeys := map[string]int{}, map[string]int{}
	var rowOrder, colOrder []string
	cells := map[[2]string][]int{}
	for r := 0; r < t.NumRows(); r++ {
		rv := rc.Value(r).String()
		cv := cc.Value(r).String()
		if _, ok := rowKeys[rv]; !ok {
			rowKeys[rv] = len(rowOrder)
			rowOrder = append(rowOrder, rv)
		}
		if _, ok := colKeys[cv]; !ok {
			colKeys[cv] = len(colOrder)
			colOrder = append(colOrder, cv)
		}
		key := [2]string{rv, cv}
		cells[key] = append(cells[key], r)
	}
	sort.Strings(rowOrder)
	sort.Strings(colOrder)
	outCols := make([]*dataset.Column, 0, 1+len(colOrder))
	labelCol := dataset.NewColumn(rowsCol, dataset.TypeString)
	for _, rv := range rowOrder {
		labelCol.Append(dataset.Str(rv))
	}
	outCols = append(outCols, labelCol)
	for _, cv := range colOrder {
		col := dataset.NewColumn(cv, dataset.TypeFloat)
		for _, rv := range rowOrder {
			rows := cells[[2]string{rv, cv}]
			if len(rows) == 0 {
				col.Append(dataset.Null)
				continue
			}
			v, err := directAgg(measure, mc, rows)
			if err != nil {
				return nil, err
			}
			col.Append(v)
		}
		outCols = append(outCols, col)
	}
	out, err := dataset.NewTable(t.Name()+"_pivot", outCols...)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out}, nil
}
