package ml

import (
	"fmt"
	"math"
)

// Forecast is a fitted time-series model: linear trend plus an additive
// seasonal component, the engine behind GEL's "Predict time series with
// measure columns <col> for the next <k> values" (Figure 2).
type Forecast struct {
	// Slope and Intercept describe the linear trend over the step index.
	Slope, Intercept float64
	// Period is the seasonal period in steps (0 when no seasonality used).
	Period int
	// Seasonal holds the additive seasonal offsets, length Period.
	Seasonal []float64
	// N is the number of training observations.
	N int
	// Residual is the RMSE of the fit on the training data.
	Residual float64
}

// FitForecast fits trend+seasonality to a series. period 0 disables the
// seasonal component; period must otherwise divide into at least two full
// cycles of the data.
func FitForecast(series []float64, period int) (*Forecast, error) {
	n := len(series)
	if n < 3 {
		return nil, fmt.Errorf("ml: time series needs at least 3 observations, got %d", n)
	}
	for _, x := range series {
		if math.IsNaN(x) {
			return nil, fmt.Errorf("ml: time series contains NaN; clean the data first")
		}
	}
	if period < 0 || (period > 0 && n < 2*period) {
		return nil, fmt.Errorf("ml: period %d requires at least %d observations, got %d", period, 2*period, n)
	}
	fitTrend := func(ys []float64) (slope, intercept float64, err error) {
		var sumT, sumY, sumTT, sumTY float64
		for t, y := range ys {
			ft := float64(t)
			sumT += ft
			sumY += y
			sumTT += ft * ft
			sumTY += ft * y
		}
		fn := float64(len(ys))
		denom := fn*sumTT - sumT*sumT
		if denom == 0 {
			return 0, 0, fmt.Errorf("ml: degenerate time index")
		}
		slope = (fn*sumTY - sumT*sumY) / denom
		intercept = (sumY - slope*sumT) / fn
		return slope, intercept, nil
	}
	slope, intercept, err := fitTrend(series)
	if err != nil {
		return nil, err
	}
	f := &Forecast{Slope: slope, Intercept: intercept, Period: period, N: n}
	if period > 1 {
		// Alternate trend and seasonal estimation: seasonality biases the
		// first trend fit unless phases cancel, so detrend, estimate
		// seasonality, deseasonalize, and re-fit the trend a few times.
		for pass := 0; pass < 3; pass++ {
			sums := make([]float64, period)
			counts := make([]int, period)
			for t, y := range series {
				resid := y - (f.Intercept + f.Slope*float64(t))
				sums[t%period] += resid
				counts[t%period]++
			}
			f.Seasonal = make([]float64, period)
			var meanAdj float64
			for p := range sums {
				if counts[p] > 0 {
					f.Seasonal[p] = sums[p] / float64(counts[p])
				}
				meanAdj += f.Seasonal[p]
			}
			// Center the seasonal component so it sums to zero.
			meanAdj /= float64(period)
			for p := range f.Seasonal {
				f.Seasonal[p] -= meanAdj
			}
			deseasonalized := make([]float64, n)
			for t, y := range series {
				deseasonalized[t] = y - f.Seasonal[t%period]
			}
			if f.Slope, f.Intercept, err = fitTrend(deseasonalized); err != nil {
				return nil, err
			}
		}
	}
	// Training residual.
	fitted := f.PredictRange(0, n)
	ss := 0.0
	for t, y := range series {
		d := y - fitted[t]
		ss += d * d
	}
	f.Residual = math.Sqrt(ss / float64(n))
	return f, nil
}

// At returns the fitted/forecast value at step t (t >= N extrapolates).
func (f *Forecast) At(t int) float64 {
	y := f.Intercept + f.Slope*float64(t)
	if f.Period > 1 && len(f.Seasonal) == f.Period {
		y += f.Seasonal[t%f.Period]
	}
	return y
}

// PredictRange returns values for steps [from, to).
func (f *Forecast) PredictRange(from, to int) []float64 {
	if to <= from {
		return nil
	}
	out := make([]float64, to-from)
	for t := from; t < to; t++ {
		out[t-from] = f.At(t)
	}
	return out
}

// Next returns the k values after the training range — the paper's
// "predict the next 12 values" interaction.
func (f *Forecast) Next(k int) []float64 { return f.PredictRange(f.N, f.N+k) }

// Predict implements Model over single-column step-index features.
func (f *Forecast) Predict(features [][]float64) []float64 {
	out := make([]float64, len(features))
	for i, row := range features {
		t := 0
		if len(row) > 0 {
			t = int(row[0])
		}
		out[i] = f.At(t)
	}
	return out
}

// Kind implements Model.
func (f *Forecast) Kind() string { return "time-series-forecast" }

// Explain implements Model.
func (f *Forecast) Explain() string {
	if f.Period > 1 {
		return fmt.Sprintf("Fitted trend %.4g per step from %.4g with period-%d seasonality (fit RMSE %.4g)",
			f.Slope, f.Intercept, f.Period, f.Residual)
	}
	return fmt.Sprintf("Fitted trend %.4g per step from %.4g (fit RMSE %.4g)", f.Slope, f.Intercept, f.Residual)
}
