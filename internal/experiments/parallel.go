package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

// ParallelResult compares serial and parallel scheduling of a branchy DAG —
// a shared filter fanning out into independent branches that reconverge in
// one concatenation — and reports the sub-DAG cache's counters for the
// parallel run.
type ParallelResult struct {
	Branches int
	// Procs is GOMAXPROCS at run time; the attainable speedup is bounded by
	// min(Procs, Branches).
	Procs            int
	SerialDuration   time.Duration
	ParallelDuration time.Duration
	SameResult       bool
	// Cache holds the parallel executor's cache counters: the duplicate
	// branch shows up as in-run dedup hits.
	Cache dag.CacheStats
}

// Parallel runs the branchy-DAG scheduling experiment over a table of the
// given size.
func Parallel(rows, branches, trials int) (*ParallelResult, error) {
	reg := skills.NewRegistry()
	makeCtx := func() *skills.Context {
		ctx := skills.NewContext()
		ids := make([]int64, rows)
		vals := make([]float64, rows)
		for i := range ids {
			ids[i] = int64(i)
			vals[i] = float64((i * 7) % 997)
		}
		ctx.Datasets["base"] = dataset.MustNewTable("base",
			dataset.IntColumn("id", ids, nil),
			dataset.FloatColumn("v", vals, nil))
		return ctx
	}
	branchy := func() (*dag.Graph, dag.NodeID) {
		g := dag.NewGraph()
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
			Args: skills.Args{"condition": "v >= 0"}, Output: "shared"})
		tails := make([]string, 0, branches+1)
		for i := 0; i < branches; i++ {
			fOut := fmt.Sprintf("b%df", i)
			g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"shared"},
				Args: skills.Args{"condition": fmt.Sprintf("v > %d", (i*37)%200)}, Output: fOut})
			cOut := fmt.Sprintf("b%dc", i)
			g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{fOut},
				Args: skills.Args{"name": fmt.Sprintf("w%d", i), "formula": fmt.Sprintf("v * %d", i+2)}, Output: cOut})
			tail := fmt.Sprintf("b%dt", i)
			g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{cOut},
				Args: skills.Args{"columns": "id"}, Output: tail})
			tails = append(tails, tail)
		}
		// A branch identical to branch 0 up to output names exercises in-run
		// cache dedup (structural signatures ignore output names).
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"shared"},
			Args: skills.Args{"condition": "v > 0"}, Output: "dupf"})
		g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{"dupf"},
			Args: skills.Args{"name": "w0", "formula": "v * 2"}, Output: "dupc"})
		g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{"dupc"},
			Args: skills.Args{"columns": "id"}, Output: "dupt"})
		tails = append(tails, "dupt")
		target := g.Add(skills.Invocation{Skill: "Concatenate", Inputs: tails, Output: "all"})
		return g, target
	}

	result := &ParallelResult{Branches: branches, Procs: runtime.GOMAXPROCS(0)}
	var serialTable, parallelTable *dataset.Table
	ctxA, ctxB := makeCtx(), makeCtx() // fixtures built outside the timers

	serial := dag.NewExecutor(reg, ctxA)
	serial.Options.Parallelism = 1
	gA, lastA := branchy()
	result.SerialDuration = medianDuration(trials, func() error {
		serial.InvalidateCache()
		res, err := serial.Run(gA, lastA)
		if err == nil {
			serialTable = res.Table
		}
		return err
	})

	parallel := dag.NewExecutor(reg, ctxB)
	parallel.Options.Parallelism = 0 // GOMAXPROCS workers
	gB, lastB := branchy()
	result.ParallelDuration = medianDuration(trials, func() error {
		parallel.InvalidateCache()
		res, err := parallel.Run(gB, lastB)
		if err == nil {
			parallelTable = res.Table
		}
		return err
	})

	result.SameResult = serialTable != nil && parallelTable != nil &&
		serialTable.Equal(parallelTable)
	result.Cache = parallel.CacheStats()
	return result, nil
}

// Report renders the parallel-scheduling experiment.
func (r *ParallelResult) Report() string {
	var b strings.Builder
	b.WriteString("§2.2 — parallel DAG scheduling\n")
	fmt.Fprintf(&b, "  %d-branch DAG on %d proc(s): serial=%v parallel=%v (same result: %v)\n",
		r.Branches, r.Procs, r.SerialDuration, r.ParallelDuration, r.SameResult)
	if r.ParallelDuration > 0 {
		fmt.Fprintf(&b, "  speedup: %.2fx (bounded by min(procs, branches))\n",
			float64(r.SerialDuration)/float64(r.ParallelDuration))
	}
	fmt.Fprintf(&b, "  cache: hits=%d misses=%d evictions=%d\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.Evictions)
	return b.String()
}
