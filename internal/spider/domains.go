// Package spider generates the synthetic evaluation corpora for §4.7. Real
// Spider is unavailable offline, so this package builds multi-domain
// databases plus NL-question / ground-truth-program pairs whose difficulty
// is controlled along the paper's two axes: misalignment M (how far the
// question's vocabulary sits from the schema) and degree of composition C
// (how many weighted operations the solution needs). The generated dev
// split follows Figure 7's long-tailed zone distribution, and a separate
// custom suite (domains absent from the example library, with heavier
// vocabulary drift) plays the role of T_custom.
package spider

import (
	"fmt"
	"math/rand"

	"datachat/internal/dataset"
	"datachat/internal/semantic"
)

// ColumnRole describes how the generator may use a column.
type ColumnRole struct {
	// Name is the column name.
	Name string
	// Paraphrase is the out-of-schema wording high-M questions use.
	Paraphrase string
	// Values enumerates category values (category columns only).
	Values []string
	// ValueParaphrase maps a value to its high-M wording.
	ValueParaphrase map[string]string
	// Measure marks numeric aggregation targets.
	Measure bool
	// Category marks grouping/filter columns.
	Category bool
}

// JoinSpec is a foreign-key relationship usable by join templates.
type JoinSpec struct {
	LeftTable, LeftKey   string
	RightTable, RightKey string
	// RightCategory is a category column on the right table to group or
	// filter by after the join.
	RightCategory string
	// RightCatValues are its values.
	RightCatValues []string
}

// Domain is one synthetic database with its semantic annotations.
type Domain struct {
	// Name identifies the domain ("sales", "hr", …).
	Name string
	// Tables is the database.
	Tables map[string]*dataset.Table
	// Fact is the main (largest) table templates operate on.
	Fact string
	// RowNoun is how questions refer to fact rows ("orders", "employees").
	RowNoun string
	// Columns annotates the fact table's usable columns.
	Columns []ColumnRole
	// Join is the domain's join relationship.
	Join JoinSpec
	// Layer is the domain's semantic layer (synonyms + filter phrases).
	Layer *semantic.Layer
	// Custom marks T_custom domains (excluded from the example library).
	Custom bool
}

// Column returns the role annotation for a column name.
func (d *Domain) Column(name string) (ColumnRole, bool) {
	for _, c := range d.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return ColumnRole{}, false
}

// measures returns the measure columns.
func (d *Domain) measures() []ColumnRole {
	var out []ColumnRole
	for _, c := range d.Columns {
		if c.Measure {
			out = append(out, c)
		}
	}
	return out
}

// categories returns the category columns.
func (d *Domain) categories() []ColumnRole {
	var out []ColumnRole
	for _, c := range d.Columns {
		if c.Category {
			out = append(out, c)
		}
	}
	return out
}

// buildLayer constructs the domain's semantic layer from its annotations.
// Custom domains get only partial synonym coverage — the paper attributes
// T_custom's lower accuracy to the model lacking domain knowledge, and the
// sparse layer reproduces that gap.
func (d *Domain) buildLayer() {
	d.Layer = semantic.NewLayer()
	covered := 0
	for _, c := range d.Columns {
		if c.Paraphrase == "" {
			continue
		}
		// Custom domains register only every other synonym.
		if d.Custom && covered%2 == 1 {
			covered++
			continue
		}
		covered++
		_ = d.Layer.Define(semantic.Concept{
			Name:      c.Paraphrase,
			Kind:      semantic.Synonym,
			Expansion: c.Name,
			Table:     d.Fact,
			Keywords:  semantic.Tokens(c.Paraphrase),
			Doc:       fmt.Sprintf("users say %q for the column %s", c.Paraphrase, c.Name),
		})
		for value, phrase := range c.ValueParaphrase {
			if d.Custom {
				continue // value phrases entirely missing for custom domains
			}
			_ = d.Layer.Define(semantic.Concept{
				Name:      phrase,
				Kind:      semantic.Filter,
				Expansion: fmt.Sprintf("%s = '%s'", c.Name, value),
				Table:     d.Fact,
				Keywords:  semantic.Tokens(phrase),
				Doc:       fmt.Sprintf("%q means rows where %s is %s", phrase, c.Name, value),
			})
		}
	}
}

// catColumn builds a category column cycling through values with a seeded
// skew so group sizes differ.
func catColumn(name string, values []string, n int, rng *rand.Rand) *dataset.Column {
	out := make([]string, n)
	for i := range out {
		// Zipf-ish skew: earlier values more common.
		pick := rng.Intn(len(values)*(len(values)+1)/2 + 1)
		idx := 0
		acc := len(values)
		for pick > acc && idx < len(values)-1 {
			idx++
			acc += len(values) - idx
		}
		out[i] = values[idx]
	}
	return dataset.StringColumn(name, out, nil)
}

func numColumn(name string, lo, hi float64, n int, rng *rand.Rand) *dataset.Column {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return dataset.FloatColumn(name, out, nil)
}

func intColumn(name string, lo, hi int64, n int, rng *rand.Rand) *dataset.Column {
	out := make([]int64, n)
	for i := range out {
		out[i] = lo + rng.Int63n(hi-lo+1)
	}
	return dataset.IntColumn(name, out, nil)
}

func idColumn(name string, n int) *dataset.Column {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return dataset.IntColumn(name, out, nil)
}

func fkColumn(name string, max int64, n int, rng *rand.Rand) *dataset.Column {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + rng.Int63n(max)
	}
	return dataset.IntColumn(name, out, nil)
}

// Domains builds every synthetic domain, seeded deterministically.
func Domains(seed int64) []*Domain {
	rng := rand.New(rand.NewSource(seed))
	out := []*Domain{
		salesDomain(rng), hrDomain(rng), flightsDomain(rng),
		academicDomain(rng), hospitalDomain(rng),
		logisticsDomain(rng), energyDomain(rng),
	}
	for _, d := range out {
		d.buildLayer()
	}
	return out
}

func salesDomain(rng *rand.Rand) *Domain {
	const nOrders, nCustomers = 240, 40
	statuses := []string{"Successful", "Unsuccessful", "Refunded"}
	regions := []string{"east", "west", "north", "south"}
	segments := []string{"enterprise", "consumer", "startup"}
	orders := dataset.MustNewTable("orders",
		idColumn("order_id", nOrders),
		fkColumn("customer_id", nCustomers, nOrders, rng),
		numColumn("price", 5, 500, nOrders, rng),
		numColumn("discount", 0, 0.4, nOrders, rng),
		catColumn("status", statuses, nOrders, rng),
		catColumn("region", regions, nOrders, rng),
		intColumn("month", 1, 12, nOrders, rng),
	)
	customers := dataset.MustNewTable("customers",
		idColumn("customer_id", nCustomers),
		catColumn("segment", segments, nCustomers, rng),
		intColumn("tenure_years", 0, 15, nCustomers, rng),
	)
	return &Domain{
		Name:    "sales",
		Tables:  map[string]*dataset.Table{"orders": orders, "customers": customers},
		Fact:    "orders",
		RowNoun: "orders",
		Columns: []ColumnRole{
			{Name: "price", Paraphrase: "amount charged", Measure: true},
			{Name: "discount", Paraphrase: "markdown", Measure: true},
			{Name: "status", Paraphrase: "purchase outcome", Category: true, Values: statuses,
				ValueParaphrase: map[string]string{"Successful": "successful purchases"}},
			{Name: "region", Paraphrase: "sales territory", Category: true, Values: regions},
			{Name: "month", Paraphrase: "calendar period", Category: true,
				Values: []string{"1", "2", "3", "4", "5", "6"}},
		},
		Join: JoinSpec{
			LeftTable: "orders", LeftKey: "customer_id",
			RightTable: "customers", RightKey: "customer_id",
			RightCategory: "segment", RightCatValues: segments,
		},
	}
}

func hrDomain(rng *rand.Rand) *Domain {
	const nEmp, nDept = 180, 8
	depts := []string{"eng", "sales", "hr", "finance", "legal", "ops", "design", "it"}
	levels := []string{"junior", "senior", "staff", "principal"}
	employees := dataset.MustNewTable("employees",
		idColumn("emp_id", nEmp),
		catColumn("dept", depts, nEmp, rng),
		numColumn("salary", 40000, 220000, nEmp, rng),
		intColumn("age", 21, 64, nEmp, rng),
		catColumn("level", levels, nEmp, rng),
		fkColumn("dept_id", nDept, nEmp, rng),
	)
	departments := dataset.MustNewTable("departments",
		idColumn("dept_id", nDept),
		catColumn("location", []string{"hq", "remote", "satellite"}, nDept, rng),
		numColumn("budget", 1e5, 9e6, nDept, rng),
	)
	return &Domain{
		Name:    "hr",
		Tables:  map[string]*dataset.Table{"employees": employees, "departments": departments},
		Fact:    "employees",
		RowNoun: "employees",
		Columns: []ColumnRole{
			{Name: "salary", Paraphrase: "pay", Measure: true},
			{Name: "age", Paraphrase: "years lived", Measure: true},
			{Name: "dept", Paraphrase: "team", Category: true, Values: depts},
			{Name: "level", Paraphrase: "seniority band", Category: true, Values: levels,
				ValueParaphrase: map[string]string{"principal": "most senior staff"}},
		},
		Join: JoinSpec{
			LeftTable: "employees", LeftKey: "dept_id",
			RightTable: "departments", RightKey: "dept_id",
			RightCategory: "location", RightCatValues: []string{"hq", "remote", "satellite"},
		},
	}
}

func flightsDomain(rng *rand.Rand) *Domain {
	const nFlights, nAirlines = 260, 12
	airports := []string{"sfo", "jfk", "ord", "sea", "aus", "bos"}
	flights := dataset.MustNewTable("flights",
		idColumn("flight_id", nFlights),
		fkColumn("airline_id", nAirlines, nFlights, rng),
		catColumn("origin", airports, nFlights, rng),
		catColumn("dest", airports, nFlights, rng),
		numColumn("delay", -10, 180, nFlights, rng),
		numColumn("distance", 90, 2900, nFlights, rng),
	)
	airlines := dataset.MustNewTable("airlines",
		idColumn("airline_id", nAirlines),
		catColumn("alliance", []string{"star", "oneworld", "skyteam", "none"}, nAirlines, rng),
		intColumn("fleet_size", 12, 900, nAirlines, rng),
	)
	return &Domain{
		Name:    "flights",
		Tables:  map[string]*dataset.Table{"flights": flights, "airlines": airlines},
		Fact:    "flights",
		RowNoun: "flights",
		Columns: []ColumnRole{
			{Name: "delay", Paraphrase: "minutes behind schedule", Measure: true},
			{Name: "distance", Paraphrase: "trip length", Measure: true},
			{Name: "origin", Paraphrase: "departure field", Category: true, Values: airports},
			{Name: "dest", Paraphrase: "arrival field", Category: true, Values: airports},
		},
		Join: JoinSpec{
			LeftTable: "flights", LeftKey: "airline_id",
			RightTable: "airlines", RightKey: "airline_id",
			RightCategory: "alliance", RightCatValues: []string{"star", "oneworld", "skyteam", "none"},
		},
	}
}

func academicDomain(rng *rand.Rand) *Domain {
	const nPapers, nVenues = 220, 10
	areas := []string{"db", "ml", "systems", "theory", "hci"}
	papers := dataset.MustNewTable("papers",
		idColumn("paper_id", nPapers),
		fkColumn("venue_id", nVenues, nPapers, rng),
		intColumn("year", 2010, 2023, nPapers, rng),
		intColumn("citations", 0, 900, nPapers, rng),
		catColumn("area", areas, nPapers, rng),
	)
	venues := dataset.MustNewTable("venues",
		idColumn("venue_id", nVenues),
		catColumn("tier", []string{"a", "b", "c"}, nVenues, rng),
		intColumn("since", 1970, 2015, nVenues, rng),
	)
	return &Domain{
		Name:    "academic",
		Tables:  map[string]*dataset.Table{"papers": papers, "venues": venues},
		Fact:    "papers",
		RowNoun: "papers",
		Columns: []ColumnRole{
			{Name: "citations", Paraphrase: "times referenced", Measure: true},
			{Name: "year", Paraphrase: "publication date", Measure: true},
			{Name: "area", Paraphrase: "research field", Category: true, Values: areas},
		},
		Join: JoinSpec{
			LeftTable: "papers", LeftKey: "venue_id",
			RightTable: "venues", RightKey: "venue_id",
			RightCategory: "tier", RightCatValues: []string{"a", "b", "c"},
		},
	}
}

func hospitalDomain(rng *rand.Rand) *Domain {
	const nPatients, nWards = 200, 6
	wards := []string{"icu", "cardio", "ortho", "peds", "onco", "general"}
	outcomes := []string{"discharged", "transferred", "readmitted"}
	patients := dataset.MustNewTable("patients",
		idColumn("patient_id", nPatients),
		fkColumn("ward_id", nWards, nPatients, rng),
		catColumn("ward", wards, nPatients, rng),
		intColumn("age", 1, 95, nPatients, rng),
		intColumn("stay_days", 1, 40, nPatients, rng),
		catColumn("outcome", outcomes, nPatients, rng),
	)
	wardTable := dataset.MustNewTable("wards",
		idColumn("ward_id", nWards),
		catColumn("floor", []string{"1", "2", "3"}, nWards, rng),
		intColumn("capacity", 8, 60, nWards, rng),
	)
	return &Domain{
		Name:    "hospital",
		Tables:  map[string]*dataset.Table{"patients": patients, "wards": wardTable},
		Fact:    "patients",
		RowNoun: "patients",
		Columns: []ColumnRole{
			{Name: "stay_days", Paraphrase: "length of admission", Measure: true},
			{Name: "age", Paraphrase: "patient years", Measure: true},
			{Name: "ward", Paraphrase: "unit", Category: true, Values: wards},
			{Name: "outcome", Paraphrase: "disposition", Category: true, Values: outcomes,
				ValueParaphrase: map[string]string{"readmitted": "bounce-back cases"}},
		},
		Join: JoinSpec{
			LeftTable: "patients", LeftKey: "ward_id",
			RightTable: "wards", RightKey: "ward_id",
			RightCategory: "floor", RightCatValues: []string{"1", "2", "3"},
		},
	}
}

// logisticsDomain is a T_custom domain: absent from the example library,
// with heavier vocabulary drift and sparse semantic coverage.
func logisticsDomain(rng *rand.Rand) *Domain {
	const nShipments, nCarriers = 210, 9
	lanes := []string{"transpac", "transatl", "domestic", "intra-eu"}
	statuses := []string{"delivered", "in-transit", "damaged", "lost"}
	shipments := dataset.MustNewTable("shipments",
		idColumn("shipment_id", nShipments),
		fkColumn("carrier_id", nCarriers, nShipments, rng),
		numColumn("weight", 0.5, 900, nShipments, rng),
		numColumn("cost", 4, 3200, nShipments, rng),
		catColumn("lane", lanes, nShipments, rng),
		catColumn("status", statuses, nShipments, rng),
	)
	carriers := dataset.MustNewTable("carriers",
		idColumn("carrier_id", nCarriers),
		catColumn("mode", []string{"air", "sea", "rail", "road"}, nCarriers, rng),
		numColumn("rating", 1, 5, nCarriers, rng),
	)
	return &Domain{
		Name:    "logistics",
		Tables:  map[string]*dataset.Table{"shipments": shipments, "carriers": carriers},
		Fact:    "shipments",
		RowNoun: "shipments",
		Custom:  true,
		Columns: []ColumnRole{
			{Name: "cost", Paraphrase: "freight spend", Measure: true},
			{Name: "weight", Paraphrase: "tonnage", Measure: true},
			{Name: "lane", Paraphrase: "trade corridor", Category: true, Values: lanes},
			{Name: "status", Paraphrase: "consignment state", Category: true, Values: statuses,
				ValueParaphrase: map[string]string{"damaged": "freight claims"}},
		},
		Join: JoinSpec{
			LeftTable: "shipments", LeftKey: "carrier_id",
			RightTable: "carriers", RightKey: "carrier_id",
			RightCategory: "mode", RightCatValues: []string{"air", "sea", "rail", "road"},
		},
	}
}

// energyDomain is the second T_custom domain.
func energyDomain(rng *rand.Rand) *Domain {
	const nReadings, nSites = 230, 11
	tariffs := []string{"peak", "offpeak", "shoulder"}
	periods := []string{"q1", "q2", "q3", "q4"}
	readings := dataset.MustNewTable("readings",
		idColumn("reading_id", nReadings),
		fkColumn("site_id", nSites, nReadings, rng),
		numColumn("kwh", 10, 50000, nReadings, rng),
		catColumn("tariff", tariffs, nReadings, rng),
		catColumn("period", periods, nReadings, rng),
	)
	sites := dataset.MustNewTable("sites",
		idColumn("site_id", nSites),
		catColumn("zone", []string{"urban", "rural", "industrial"}, nSites, rng),
		numColumn("capacity", 100, 90000, nSites, rng),
	)
	return &Domain{
		Name:    "energy",
		Tables:  map[string]*dataset.Table{"readings": readings, "sites": sites},
		Fact:    "readings",
		RowNoun: "readings",
		Custom:  true,
		Columns: []ColumnRole{
			{Name: "kwh", Paraphrase: "drawn load", Measure: true},
			{Name: "tariff", Paraphrase: "rate class", Category: true, Values: tariffs,
				ValueParaphrase: map[string]string{"peak": "high-demand windows"}},
			{Name: "period", Paraphrase: "billing window", Category: true, Values: periods},
		},
		Join: JoinSpec{
			LeftTable: "readings", LeftKey: "site_id",
			RightTable: "sites", RightKey: "site_id",
			RightCategory: "zone", RightCatValues: []string{"urban", "rural", "industrial"},
		},
	}
}
