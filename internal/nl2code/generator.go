package nl2code

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"datachat/internal/semantic"
	"datachat/internal/skills"
)

// Generator is the simulated LLM (§4.1). It sees only the prompt — the
// schema section, the semantic hints, and the retrieved examples — and
// composes a DataChat Python API program from them. Its failure modes are
// the ones the paper attributes to real LLMs:
//
//   - references that misalign with the schema resolve through prompt
//     hints or degrade to guesses (misalignment sensitivity),
//   - operations not demonstrated by any prompt example are dropped
//     (few-shot dependence), and
//   - a deterministic per-operation slip rate that grows with plan depth
//     corrupts long compositions (complexity sensitivity).
type Generator struct {
	// Registry renders the generated program.
	Registry *skills.Registry
	// SlipBase is the per-operation slip probability.
	SlipBase float64
	// PlanPenalty adds slip probability per operation beyond the second.
	PlanPenalty float64
	// ProgramFailRate is the chance the whole request is misread,
	// independent of plan depth (short ambiguous questions fail too).
	ProgramFailRate float64
	// UnknownDomainPenalty adds to ProgramFailRate when no prompt example
	// touches the question's base table — the model has never seen the
	// domain (the T_custom condition).
	UnknownDomainPenalty float64
	// LowSimilarityPenalty is extra per-op slip when no retrieved example
	// resembles the question (cross-domain transfer).
	LowSimilarityPenalty float64
	// HintPenalty adds misread probability per reference grounded through
	// a prompt hint instead of a direct schema match — paraphrase-heavy
	// questions stay riskier even when the semantic layer covers them.
	HintPenalty float64
	// TypoRate is the chance of emitting a repairable column typo; the
	// program checker's reason to exist.
	TypoRate float64
}

// NewGenerator returns a generator with calibrated defaults.
func NewGenerator(reg *skills.Registry) *Generator {
	return &Generator{
		Registry:             reg,
		SlipBase:             0.035,
		PlanPenalty:          0.004,
		ProgramFailRate:      0.10,
		UnknownDomainPenalty: 0.22,
		LowSimilarityPenalty: 0.05,
		HintPenalty:          0.08,
		TypoRate:             0.06,
	}
}

// Generation is the generator's output.
type Generation struct {
	// Code is the produced Python API program.
	Code string
	// Program is the same program as invocations (pre-rendering).
	Program []skills.Invocation
	// Notes traces the generator's decisions (Figure 6 debugging).
	Notes []string
}

// intent is what the generator believes the question asks for.
type intent struct {
	wantCount bool
	// distinctOf is the surface phrase whose distinct values are counted.
	distinctOf string
	aggFn      string // sum/avg/max/min/median ("" with wantCount)
	measure    string // surface phrase of the measure
	group      string // surface phrase of the grouping column
	topK       int    // >0 for top-k questions
	filterCol  string // surface phrase of the filter column
	filterVal  string // surface value text
	filterPred string // resolved predicate from a semantic filter phrase
	join       bool
	joinTable  string
}

// Generate produces a program for the prompt.
func (g *Generator) Generate(p *Prompt) (*Generation, error) {
	if len(p.Schema) == 0 {
		return nil, fmt.Errorf("nl2code: prompt has no schema section")
	}
	gen := &Generation{}
	note := func(format string, args ...any) {
		gen.Notes = append(gen.Notes, fmt.Sprintf(format, args...))
	}
	it := parseIntent(p, note)

	// Ground surface phrases in the prompt's schema + hints.
	res := newResolver(p)
	fact := res.pickFactTable(p.Question, it)
	note("base table: %s", fact.Name)

	rng := rand.New(rand.NewSource(int64(hashString(p.Question))))

	var program []skills.Invocation
	current := fact.Name

	// Join step.
	if it.join {
		other := res.pickJoinTable(fact, it)
		if other == nil {
			note("join intended but no second table found; dropping join")
		} else if !g.exampleCoverage(p, "JoinDatasets") {
			note("no prompt example demonstrates joins; dropping join")
		} else {
			key, ok := res.commonColumn(fact, other)
			if !ok {
				note("no shared key between %s and %s; dropping join", fact.Name, other.Name)
			} else {
				program = append(program, skills.Invocation{
					Skill:  "JoinDatasets",
					Inputs: []string{fact.Name, other.Name},
					Output: "joined",
					Args: skills.Args{"on": fmt.Sprintf("%s.%s = %s.%s",
						fact.Name, key, other.Name, key)},
				})
				current = "joined"
				res.merge(fact, other)
			}
		}
	}

	// Filter step.
	if it.filterPred != "" || it.filterCol != "" {
		cond := it.filterPred
		if cond == "" {
			col, ok := res.resolveColumn(it.filterCol, preferCategory)
			if !ok {
				col = res.guessColumn(preferCategory, rng)
				note("filter column %q unresolved; guessing %s", it.filterCol, col)
			}
			value, okVal := res.resolveValue(col, it.filterVal)
			if !okVal {
				note("filter value %q not found under %s; using it verbatim", it.filterVal, col)
				value = it.filterVal
			}
			cond = fmt.Sprintf("%s = '%s'", col, value)
		} else {
			note("filter resolved via semantic hint: %s", cond)
		}
		program = append(program, skills.Invocation{
			Skill:  "KeepRows",
			Inputs: []string{current},
			Output: fmt.Sprintf("step%d", len(program)+1),
			Args:   skills.Args{"condition": cond},
		})
		current = program[len(program)-1].Output
	}

	// Aggregation step.
	switch {
	case it.distinctOf != "":
		col, ok := res.resolveColumn(it.distinctOf, preferCategory)
		if !ok {
			col = res.guessColumn(preferCategory, rng)
			note("distinct column %q unresolved; guessing %s", it.distinctOf, col)
		}
		program = append(program, skills.Invocation{
			Skill:  "Compute",
			Inputs: []string{current},
			Output: fmt.Sprintf("step%d", len(program)+1),
			Args:   skills.Args{"aggregates": []string{fmt.Sprintf("count_distinct of %s as n", col)}},
		})
		current = program[len(program)-1].Output
	case it.wantCount:
		inv := skills.Invocation{
			Skill:  "Compute",
			Inputs: []string{current},
			Output: fmt.Sprintf("step%d", len(program)+1),
			Args:   skills.Args{"aggregates": []string{"count of records as n"}},
		}
		if it.group != "" {
			groupCol := g.resolveGroup(res, it, note, rng)
			inv.Args["for_each"] = []string{groupCol}
		}
		program = append(program, inv)
		current = inv.Output
	case it.aggFn != "":
		measure, ok := res.resolveColumn(it.measure, preferMeasure)
		if !ok {
			measure = res.guessColumn(preferMeasure, rng)
			note("measure %q unresolved; guessing %s", it.measure, measure)
		}
		inv := skills.Invocation{
			Skill:  "Compute",
			Inputs: []string{current},
			Output: fmt.Sprintf("step%d", len(program)+1),
			Args:   skills.Args{"aggregates": []string{fmt.Sprintf("%s of %s as result", it.aggFn, measure)}},
		}
		if it.group != "" {
			inv.Args["for_each"] = []string{g.resolveGroup(res, it, note, rng)}
		}
		program = append(program, inv)
		current = inv.Output
	}

	// Top-k tail.
	if it.topK > 0 {
		if !g.exampleCoverage(p, "SortRows") {
			note("no prompt example demonstrates sorting; dropping top-k tail")
		} else {
			program = append(program,
				skills.Invocation{Skill: "SortRows", Inputs: []string{current},
					Output: fmt.Sprintf("step%d", len(program)+1),
					Args:   skills.Args{"columns": []string{"result"}, "descending": true}},
			)
			current = program[len(program)-1].Output
			program = append(program,
				skills.Invocation{Skill: "LimitRows", Inputs: []string{current},
					Output: fmt.Sprintf("step%d", len(program)+1),
					Args:   skills.Args{"count": it.topK}},
			)
			current = program[len(program)-1].Output
		}
	}

	if len(program) == 0 {
		return nil, fmt.Errorf("nl2code: could not form a plan for %q", p.Question)
	}

	// Program-level misread: some requests are misunderstood outright,
	// regardless of depth; unfamiliar domains (no prompt example touching
	// the base table) fail far more often.
	pFail := g.ProgramFailRate
	if !g.domainCovered(p, fact.Name) {
		pFail += g.UnknownDomainPenalty
		note("no prompt example covers table %s; elevated misread rate", fact.Name)
	}
	hintGroundings := res.hintHits
	if it.filterPred != "" {
		hintGroundings++ // the filter itself came from a hint
	}
	if hintGroundings > 0 {
		pFail += g.HintPenalty * float64(hintGroundings)
		note("%d references grounded via prompt hints; elevated misread rate", hintGroundings)
	}
	if rng.Float64() < pFail {
		g.corrupt(&program[rng.Intn(len(program))], res, rng, note)
	}
	// Complexity slips: each op may be corrupted; deeper plans slip more.
	slip := g.SlipBase + g.PlanPenalty*float64(max(0, len(program)-2))
	if maxSimilarity(p.Examples) < 0.25 {
		slip += g.LowSimilarityPenalty
		note("retrieved examples are dissimilar; elevated slip rate")
	}
	for i := range program {
		if rng.Float64() < slip {
			g.corrupt(&program[i], res, rng, note)
		}
	}
	// Occasional repairable typo (checker fodder).
	if rng.Float64() < g.TypoRate {
		g.injectTypo(program, rng, note)
	}

	code, err := renderProgram(g.Registry, program)
	if err != nil {
		return nil, err
	}
	gen.Program = program
	gen.Code = code
	return gen, nil
}

func (g *Generator) resolveGroup(res *resolver, it intent, note func(string, ...any), rng *rand.Rand) string {
	groupCol, ok := res.resolveColumn(it.group, preferCategory)
	if !ok {
		groupCol = res.guessColumn(preferCategory, rng)
		note("group column %q unresolved; guessing %s", it.group, groupCol)
	}
	return groupCol
}

// exampleCoverage reports whether any prompt example demonstrates a skill —
// the few-shot dependence of §4.1: the model adapts to the closed API only
// through in-context examples.
func (g *Generator) exampleCoverage(p *Prompt, skill string) bool {
	for _, s := range p.Examples {
		for _, inv := range s.Example.Program {
			if inv.Skill == skill {
				return true
			}
		}
	}
	return false
}

// domainCovered reports whether any prompt example operates on the given
// table — the proxy for "the model has seen this domain before".
func (g *Generator) domainCovered(p *Prompt, table string) bool {
	for _, s := range p.Examples {
		for _, inv := range s.Example.Program {
			for _, in := range inv.Inputs {
				if strings.EqualFold(in, table) {
					return true
				}
			}
		}
	}
	return false
}

func maxSimilarity(examples []Scored) float64 {
	best := 0.0
	for _, s := range examples {
		if s.Similarity > best {
			best = s.Similarity
		}
	}
	return best
}

// corrupt applies one plausible-but-wrong mutation to an operation.
func (g *Generator) corrupt(inv *skills.Invocation, res *resolver, rng *rand.Rand, note func(string, ...any)) {
	switch inv.Skill {
	case "KeepRows":
		// Wrong literal: swap the filter value for a sibling value.
		cond := inv.Args.StringOr("condition", "")
		if alt, ok := res.siblingValue(cond, rng); ok {
			inv.Args["condition"] = alt
			note("slip: filter literal replaced (%s)", alt)
			return
		}
		note("slip: filter dropped")
		inv.Args["condition"] = "1 = 1"
	case "Compute":
		if aggs, err := inv.Args.AggSpecs("aggregates"); err == nil && len(aggs) > 0 {
			swapped := map[string]string{"sum": "avg", "avg": "sum", "max": "min", "min": "max", "median": "avg", "count": "count"}
			fn := swapped[strings.ToLower(aggs[0].Func)]
			if fn == "" {
				fn = "avg"
			}
			if fn != strings.ToLower(aggs[0].Func) {
				inv.Args["aggregates"] = []string{fmt.Sprintf("%s of %s as %s", fn, aggs[0].Column, aggs[0].OutName())}
				note("slip: aggregate function swapped to %s", fn)
				return
			}
			// COUNT corrupts by grouping wrong.
			if cats := res.categories(); len(cats) > 0 {
				inv.Args["for_each"] = []string{cats[rng.Intn(len(cats))]}
				note("slip: grouping column replaced")
			}
		}
	case "SortRows":
		inv.Args["descending"] = false
		note("slip: sort direction flipped")
	case "LimitRows":
		n := inv.Args.IntOr("count", 1)
		inv.Args["count"] = n + 1
		note("slip: limit off by one")
	case "JoinDatasets":
		// Degenerate join condition — a classic LLM join mistake that
		// turns the equi-join into a cross product.
		inv.Args["on"] = "1 = 1"
		note("slip: join condition degenerated")
	}
}

// injectTypo misspells one referenced column — syntactically valid code
// that fails execution unless the program checker repairs it.
func (g *Generator) injectTypo(program []skills.Invocation, rng *rand.Rand, note func(string, ...any)) {
	for _, inv := range program {
		if inv.Skill != "Compute" {
			continue
		}
		aggs, err := inv.Args.AggSpecs("aggregates")
		if err != nil || len(aggs) == 0 || aggs[0].Column == "*" {
			continue
		}
		typo := aggs[0].Column + "s"
		if rng.Intn(2) == 0 {
			typo = aggs[0].Column + "_col"
		}
		inv.Args["aggregates"] = []string{fmt.Sprintf("%s of %s as %s", aggs[0].Func, typo, aggs[0].OutName())}
		note("typo: column misspelled as %s", typo)
		return
	}
}

func renderProgram(reg *skills.Registry, program []skills.Invocation) (string, error) {
	lines := make([]string, len(program))
	for i, inv := range program {
		code, err := reg.RenderPython(inv)
		if err != nil {
			return "", err
		}
		lines[i] = code
	}
	return strings.Join(lines, "\n"), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- intent parsing ----

var aggIntentWords = map[string]string{
	"average": "avg", "mean": "avg", "total": "sum", "sum": "sum",
	"maximum": "max", "minimum": "min", "median": "median",
	"highest": "max", "largest": "max", "lowest": "min",
}

// parseIntent extracts the generator's reading of the question. It works
// on word sequences, not embeddings — deliberately shallow, because the
// interesting behaviour is how grounding succeeds or fails downstream.
func parseIntent(p *Prompt, note func(string, ...any)) intent {
	q := strings.ToLower(p.Question)
	words := strings.FieldsFunc(q, func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9') && r != '_' && r != '-'
	})
	var it intent

	it.wantCount = strings.Contains(q, "how many") || strings.HasPrefix(q, "count") ||
		strings.Contains(q, "number of")
	// Distinct-count: "how many distinct X", "how many different X",
	// "count the distinct X".
	for _, marker := range []string{"distinct ", "different "} {
		if idx := strings.Index(q, marker); idx >= 0 && it.wantCount {
			it.distinctOf = cutPhrase(q[idx+len(marker):])
			break
		}
	}

	// Aggregate: "average X", "total X", "highest total X" (the adjective
	// before the measure is the aggregate; "highest" marks top-k when a
	// group is requested).
	for i, w := range words {
		if fn, ok := aggIntentWords[w]; ok && w != "highest" && w != "largest" && w != "lowest" {
			it.aggFn = fn
			it.measure = phraseAfter(words, i+1)
			break
		}
	}
	// Top-k: "which 3 <group> have the highest <agg> <measure>".
	if i := indexOf(words, "highest"); i >= 0 || strings.Contains(q, "top ") {
		if i < 0 {
			i = indexOf(words, "top")
		}
		for j := 0; j < len(words); j++ {
			if n, err := strconv.Atoi(words[j]); err == nil && n > 0 && n <= 50 {
				it.topK = n
				// The group phrase follows the number.
				it.group = phraseAfter(words, j+1)
				break
			}
		}
		if it.aggFn == "" {
			// "highest price" without another agg word: max.
			it.aggFn = "max"
			it.measure = phraseAfter(words, i+1)
		}
	}
	// Grouping: "for each X", "per X", "grouped by X", "broken down by X".
	for _, marker := range []string{"for each ", "per ", "grouped by ", "broken down by "} {
		if idx := strings.Index(q, marker); idx >= 0 {
			tail := q[idx+len(marker):]
			it.group = cutPhrase(tail)
			break
		}
	}
	// Join: the word "joined" or a second table name in the question.
	if strings.Contains(q, "joined") {
		it.join = true
	}
	for _, t := range p.Schema[1:] {
		_ = t
	}
	for _, t := range p.Schema {
		if strings.Contains(q, strings.ToLower(t.Name)) {
			// Mentioning a non-base table implies a join; pickFactTable
			// decides which is the base.
			it.joinTable = t.Name
		}
	}

	// Filter: semantic filter phrases first (the SL's whole point), then
	// syntactic patterns.
	for _, h := range p.Hints {
		if h.Kind == semantic.Filter && strings.Contains(q, strings.ToLower(h.Phrase)) {
			it.filterPred = h.Expansion
			break
		}
	}
	if it.filterPred == "" {
		for _, pattern := range []string{"where ", "restricted to ", "among ", "with "} {
			idx := strings.Index(q, pattern)
			if idx < 0 {
				continue
			}
			clause := cutPhrase(q[idx+len(pattern):])
			col, val := splitFilterClause(clause)
			if col != "" && val != "" {
				it.filterCol, it.filterVal = col, val
				break
			}
		}
		// "have X equal to V" / "X is V".
		if it.filterCol == "" {
			for _, pattern := range []string{" have ", " has "} {
				idx := strings.Index(q, pattern)
				if idx < 0 {
					continue
				}
				clause := cutPhrase(q[idx+len(pattern):])
				col, val := splitFilterClause(clause)
				if col != "" && val != "" {
					it.filterCol, it.filterVal = col, val
				}
			}
		}
	}
	note("intent: count=%v agg=%s measure=%q group=%q topk=%d filter=(%q=%q) pred=%q join=%v",
		it.wantCount, it.aggFn, it.measure, it.group, it.topK, it.filterCol, it.filterVal, it.filterPred, it.join)
	return it
}

// phraseAfter joins up to three words starting at i, stopping at clause
// boundaries.
func phraseAfter(words []string, i int) string {
	stop := map[string]bool{
		"for": true, "per": true, "grouped": true, "where": true, "of": true,
		"with": true, "have": true, "has": true, "broken": true, "restricted": true,
		"among": true, "in": true, "the": true, "by": true, "were": true, "is": true,
	}
	var out []string
	for ; i < len(words) && len(out) < 3; i++ {
		if stop[words[i]] {
			if len(out) > 0 {
				break
			}
			continue
		}
		out = append(out, words[i])
	}
	return strings.Join(out, " ")
}

func cutPhrase(s string) string {
	for _, cut := range []string{"?", ".", ",", " of the "} {
		if i := strings.Index(s, cut); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

// splitFilterClause splits "status is successful" / "status equal to x" /
// "region east" into column phrase and value.
func splitFilterClause(clause string) (col, val string) {
	for _, sep := range []string{" equal to ", " is ", " = "} {
		if i := strings.Index(clause, sep); i >= 0 {
			return strings.TrimSpace(clause[:i]), strings.TrimSpace(clause[i+len(sep):])
		}
	}
	words := strings.Fields(clause)
	if len(words) >= 2 {
		return strings.Join(words[:len(words)-1], " "), words[len(words)-1]
	}
	return "", ""
}

func indexOf(words []string, w string) int {
	for i, x := range words {
		if x == w {
			return i
		}
	}
	return -1
}
