package sqlengine

import (
	"errors"
	"math/rand"
	"testing"
)

// TestStreamDistinctSpills pins the DISTINCT overflow path: with a budget
// far below the distinct-key count the streaming engine must go to disk and
// still produce exactly the materialized result — same rows, same
// first-occurrence order — serial and parallel, with and without a
// filter feeding it. Strict mode (DisableSpill) keeps the typed failure.
func TestStreamDistinctSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	catalog := NewMapCatalog(CorpusTables(rng, 900, 10))
	queries := []string{
		"SELECT DISTINCT s FROM t1",
		"SELECT DISTINCT s, b FROM t1",
		"SELECT DISTINCT s FROM t1 WHERE s <> 'alpha'",
		"SELECT DISTINCT s, b FROM t1 ORDER BY s, b",
	}
	for _, workers := range []int{1, 4} {
		for _, q := range queries {
			dir := t.TempDir()
			rs, err := ExecStream(catalog, q, StreamOptions{
				ChunkRows:       64,
				Parallelism:     workers,
				MaxBufferedRows: 3,
				SpillDir:        dir,
			})
			if err != nil {
				t.Fatalf("%q (workers=%d): %v", q, workers, err)
			}
			out, err := rs.ReadAll()
			if err != nil {
				t.Fatalf("%q (workers=%d): %v", q, workers, err)
			}
			if st := rs.SpillStats(); st.Runs == 0 {
				t.Fatalf("%q (workers=%d): spill stats = %+v, want nonzero runs", q, workers, st)
			}
			ref, err := Exec(catalog, q)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Equal(ref) {
				t.Fatalf("%q (workers=%d): spilled DISTINCT diverges:\nstream:\n%s\nreference:\n%s",
					q, workers, out, ref)
			}
			assertNoSpillFiles(t, dir)
		}
	}

	// With spilling off the same overflow still fails loudly and typed.
	rs, err := ExecStream(catalog, "SELECT DISTINCT s FROM t1", StreamOptions{
		ChunkRows: 64, MaxBufferedRows: 3, DisableSpill: true,
	})
	if err == nil {
		_, err = rs.ReadAll()
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("strict budget: error = %v, want *BudgetError", err)
	}
}
