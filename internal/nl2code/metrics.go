// Package nl2code implements DataChat's NL-intent-to-code system (§4): the
// simulated-LLM code generator, semantic-layer integration, example
// retrieval, prompt composer, program checker, the difficulty metrics M
// (misalignment) and C (degree of composition) of §4.7, and the
// execution-accuracy evaluator behind Table 2 and Figure 7.
//
// The LLM substitution: the paper prompts a GPT-family model; offline we
// use a deterministic retrieval-and-compose generator whose competence is
// bounded by exactly the limitations §4 names — it only knows what the
// prompt contains (schema, semantic snippets, retrieved examples), its
// reference resolution fails when question vocabulary misaligns with the
// schema, and its per-operation slip rate grows with plan depth. Accuracy
// is then *measured* by executing generated programs against ground truth,
// not scripted.
package nl2code

import (
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/semantic"
	"datachat/internal/skills"
)

// Thresholds from §4.7 / Figure 7: M and C classify into low/high at these
// cut points.
const (
	MThreshold = 0.4
	CThreshold = 30.0
)

// analyticVocabulary lists task-language words that never align with schema
// identifiers (aggregation words, comparatives, glue). They are excluded
// from the misalignment numerator: a question saying "average" is not
// misaligned with a schema lacking an "average" column.
var analyticVocabulary = map[string]bool{
	"count": true, "number": true, "average": true, "total": true, "sum": true,
	"maximum": true, "minimum": true, "median": true, "highest": true,
	"lowest": true, "top": true, "most": true, "least": true, "equal": true,
	"grouped": true, "broken": true, "down": true, "per": true, "where": true,
	"restricted": true, "among": true, "across": true, "joined": true,
	"compute": true, "fall": true, "under": true, "were": true, "values": true,
	"value": true,
}

// SchemaVocabulary collects the match targets for misalignment scoring: the
// tokens of table names, column names, and the distinct values of
// low-cardinality string columns (value linking, as real NL2SQL systems do).
func SchemaVocabulary(tables map[string]*dataset.Table) map[string]bool {
	vocab := map[string]bool{}
	addTokens := func(text string) {
		for _, tok := range semantic.Tokens(text) {
			vocab[tok] = true
		}
	}
	for name, t := range tables {
		addTokens(name)
		for _, c := range t.Columns() {
			addTokens(c.Name())
			if c.Type() == dataset.TypeString {
				distinct := map[string]bool{}
				for i := 0; i < c.Len() && len(distinct) <= 24; i++ {
					if !c.IsNull(i) {
						distinct[c.Value(i).S] = true
					}
				}
				if len(distinct) <= 24 {
					for v := range distinct {
						addTokens(v)
					}
				}
			}
		}
	}
	return vocab
}

// contentTokens returns the question tokens that participate in
// misalignment scoring: content words that are neither analytic vocabulary
// nor bare numbers.
func contentTokens(question string) []string {
	var out []string
	for _, tok := range semantic.Tokens(question) {
		if analyticVocabulary[tok] || isNumber(tok) {
			continue
		}
		out = append(out, tok)
	}
	return out
}

func isNumber(tok string) bool {
	for _, r := range tok {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(tok) > 0
}

// Misalignment computes M for a question against a schema: the weighted sum
// of a query-mismatch score s1 (question content tokens with no schema
// match) and a schema-irrelevance score s2 (columns the solution needs
// whose names the question never says). needed lists the column names the
// ground-truth program references.
func Misalignment(question string, vocab map[string]bool, needed []string) float64 {
	tokens := contentTokens(question)
	s1 := 0.0
	if len(tokens) > 0 {
		misses := 0
		for _, tok := range tokens {
			if !vocab[tok] {
				misses++
			}
		}
		s1 = float64(misses) / float64(len(tokens))
	}
	s2 := 0.0
	if len(needed) > 0 {
		questionSet := map[string]bool{}
		for _, tok := range semantic.Tokens(question) {
			questionSet[tok] = true
		}
		misses := 0
		for _, col := range needed {
			found := false
			for _, tok := range semantic.Tokens(col) {
				if questionSet[tok] {
					found = true
				}
			}
			if !found {
				misses++
			}
		}
		s2 = float64(misses) / float64(len(needed))
	}
	return 0.5*s1 + 0.5*s2
}

// NeededColumns extracts the column names a program references — the
// schema identifiers the question must link to.
func NeededColumns(program []skills.Invocation) []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		name = strings.TrimSpace(name)
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		if name == "" || name == "*" || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	for _, inv := range program {
		if cond := inv.Args.StringOr("condition", ""); cond != "" {
			if e, err := parseConditionExpr(cond); err == nil {
				for _, c := range e.Columns(nil) {
					add(c)
				}
			}
		}
		if aggs, err := inv.Args.AggSpecs("aggregates"); err == nil {
			for _, a := range aggs {
				add(a.Column)
			}
		}
		for _, key := range inv.Args.StringListOr("for_each") {
			add(key)
		}
		for _, key := range inv.Args.StringListOr("columns") {
			// SortRows keys named after computed aliases are not schema
			// columns; they are filtered by the caller if needed.
			add(key)
		}
		if on := inv.Args.StringOr("on", ""); on != "" {
			if e, err := parseConditionExpr(on); err == nil {
				for _, c := range e.Columns(nil) {
					add(c)
				}
			}
		}
	}
	return out
}

// opWeights scores each skill's compositional weight; joins are the
// heaviest, per §4.7's note that a JOIN "carries more weight than an
// aggregation function on a single column".
var opWeights = map[string]float64{
	"KeepRows":     6,
	"DropRows":     6,
	"KeepColumns":  3,
	"NewColumn":    5,
	"SortRows":     5,
	"LimitRows":    4,
	"DistinctRows": 4,
	"JoinDatasets": 18,
	"Concatenate":  10,
	"Pivot":        14,
	"Bin":          5,
}

// nestingFactor is the extra weight each later pipeline position adds,
// modeling §4.7's nesting-level weighting (a step consuming a derived
// dataset is like a deeper sub-query).
const nestingFactor = 0.3

// Composition computes C for a program: per-operation weights scaled by
// pipeline depth. Compute steps weigh by their aggregate and grouping
// fan-out.
func Composition(program []skills.Invocation) float64 {
	total := 0.0
	for depth, inv := range program {
		w, ok := opWeights[inv.Skill]
		if !ok {
			switch inv.Skill {
			case "Compute":
				w = 10
				if aggs, err := inv.Args.AggSpecs("aggregates"); err == nil {
					w += 3 * float64(len(aggs))
				}
				w += 4 * float64(len(inv.Args.StringListOr("for_each")))
			default:
				w = 3
			}
		}
		total += w * (1 + nestingFactor*float64(depth))
	}
	return total
}

// ZoneOf classifies (M, C) against the §4.7 thresholds.
func ZoneOf(m, c float64) (highM, highC bool) {
	return m > MThreshold, c > CThreshold
}
