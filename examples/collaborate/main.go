// Collaborate: the §2.4 scenario. Two users share a session (hitting the
// session-level lock), save an artifact whose recipe is auto-sliced, share
// it by secret link, organize the Home Screen, and present results on an
// Insights Board. Cost-control features from §3 (sampling + snapshots)
// appear along the way.
//
//	go run ./examples/collaborate
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"datachat/internal/artifact"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/session"
	"datachat/internal/skills"
)

func main() {
	p := core.New()

	// A consumption-priced cloud warehouse with a large-ish table.
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 4096)
	n := 200_000
	ids := make([]int64, n)
	readings := make([]float64, n)
	sites := make([]string, n)
	for i := range ids {
		ids[i] = int64(i)
		readings[i] = float64(i % 997)
		sites[i] = []string{"north", "south", "east", "west"}[i%4]
	}
	if err := db.CreateTable(dataset.MustNewTable("iot_events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("reading", readings, nil),
		dataset.StringColumn("site", sites, nil),
	)); err != nil {
		log.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err != nil {
		log.Fatal(err)
	}

	s, err := p.CreateSession("iot-quality", "ann")
	if err != nil {
		log.Fatal(err)
	}

	// §3: assess data quality on a cheap 10% block sample first.
	res, err := p.RequestGEL("iot-quality", "ann",
		"Sample 10% of the table iot_events from the database warehouse", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ann sampled %d rows; cloud bill so far: $%.6f\n",
		res.Table.NumRows(), db.Meter().Cost(db.Pricing()))

	// Snapshot the table so iteration stops hitting the meter.
	if _, err := p.RequestGEL("iot-quality", "ann",
		"Create a snapshot iot_snap of the table iot_events from the database warehouse", ""); err != nil {
		log.Fatal(err)
	}
	afterSnapshot := db.Meter().BytesScanned()

	// Ann invites Bob to co-drive (§2.4).
	if err := s.Share("ann", "bob", artifact.EditAccess); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session members: %v\n", s.Members())

	// Both fire a request at once — the session-level lock makes exactly
	// the losing request fail with a retry message rather than corrupting
	// the shared DAG.
	var wg sync.WaitGroup
	outcomes := make([]error, 2)
	for i, user := range []string{"ann", "bob"} {
		wg.Add(1)
		go func(i int, user string) {
			defer wg.Done()
			_, _, outcomes[i] = s.Request(user, skills.Invocation{
				Skill: "UseSnapshot", Args: skills.Args{"name": "iot_snap"},
				Output: fmt.Sprintf("snap_%s", user),
			})
		}(i, user)
	}
	wg.Wait()
	for i, user := range []string{"ann", "bob"} {
		switch {
		case outcomes[i] == nil:
			fmt.Printf("%s's request ran\n", user)
		case errors.Is(outcomes[i], session.ErrBusy):
			fmt.Printf("%s's request was rejected: %v\n", user, outcomes[i])
		default:
			log.Fatalf("%s: %v", user, outcomes[i])
		}
	}

	// Bob iterates on the snapshot (free) to build the quality summary.
	if _, _, err := s.Request("bob", skills.Invocation{
		Skill: "UseSnapshot", Args: skills.Args{"name": "iot_snap"}, Output: "work",
	}); err != nil {
		log.Fatal(err)
	}
	if _, _, err := s.Request("bob", skills.Invocation{
		Skill: "KeepRows", Inputs: []string{"work"},
		Args: skills.Args{"condition": "reading > 500"}, Output: "hot",
	}); err != nil {
		log.Fatal(err)
	}
	_, target, err := s.Request("bob", skills.Invocation{
		Skill: "Compute", Inputs: []string{"hot"},
		Args: skills.Args{
			"aggregates": []string{"count of records as HotReadings", "avg of reading as AvgReading"},
			"for_each":   []string{"site"},
		},
		Output: "summary",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud bytes billed during iteration: %d (snapshots are free to read)\n",
		db.Meter().BytesScanned()-afterSnapshot)

	// Save the artifact: the recipe is sliced to just the productive steps.
	a, err := s.SaveArtifact(p.Artifacts, "bob", "hot-readings-by-site", target, artifact.TypeTable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifact %q saved with a %d-step recipe (session ran %d steps)\n",
		a.Name, len(a.Recipe.Steps), s.Graph().Len())
	fmt.Print(a.Table)

	// Organize and share.
	if err := p.Home.Place("iot/quality", a.Name); err != nil {
		log.Fatal(err)
	}
	secret, err := p.Artifacts.CreateSecretLink(a.Name, "bob")
	if err != nil {
		log.Fatal(err)
	}
	shared, err := p.Artifacts.GetBySecret(secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecret link minted: https://dc.example/a/%s… resolves to %q\n",
		secret[:8], shared.Name)

	// Present on an Insights Board (§2.4).
	board := p.Board("iot-review")
	if err := board.Pin(session.BoardItem{Artifact: a.Name, X: 0, Y: 0, W: 8, H: 5,
		Caption: "Hot readings concentrate in the east sites"}); err != nil {
		log.Fatal(err)
	}
	board.AddText(session.TextBox{Text: "IoT data quality review — Q2", X: 0, Y: 6})
	fmt.Printf("insights board %q: %d artifacts, %d text boxes\n",
		board.Name, len(board.Items()), len(board.Texts()))

	// Every board item answers "how was this made?" via its recipe.
	gelLines, err := a.Recipe.GEL(p.Registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecipe behind the pinned artifact:")
	for i, l := range gelLines {
		fmt.Printf("%2d. %s\n", i+1, l)
	}
}
