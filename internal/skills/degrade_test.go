package skills

import (
	"strings"
	"testing"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/snapshot"
)

// The degradation ladder (§2.3 transparency applied to failures): a
// permanently failed cloud scan may answer from a fresh-enough snapshot,
// then from a block sample — always annotated — and transient failures are
// left for the retry layer, never degraded.

func degradeDB(t *testing.T) *cloud.Database {
	t.Helper()
	n := 64
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 16)
	if err := db.CreateTable(dataset.MustNewTable("events", dataset.IntColumn("id", ids, nil))); err != nil {
		t.Fatal(err)
	}
	return db
}

// loadTable executes the LoadTable skill against ctx.
func loadTable(t *testing.T, ctx *Context) (*Result, error) {
	t.Helper()
	return NewRegistry().Execute(ctx, Invocation{Skill: "LoadTable",
		Args: Args{"database": "wh", "table": "events"}, Output: "ev"})
}

// permScanCtx returns a context whose "wh" database fails its first scan
// permanently (everything after passes).
func permScanCtx(t *testing.T, db *cloud.Database) *Context {
	t.Helper()
	ctx := NewContext()
	inj := faults.NewInjector(faults.Schedule{
		FailOps: map[int]faults.Kind{1: faults.Unavailable},
		Ops:     map[string]bool{"scan": true},
	}, nil)
	ctx.Cloud["wh"] = faults.WrapDB(db, inj)
	return ctx
}

func TestLoadTableDegradesToSnapshot(t *testing.T) {
	db := degradeDB(t)
	now := time.Unix(10_000, 0)
	store := snapshot.NewStore(0)
	store.SetClock(func() time.Time { return now.Add(-30 * time.Minute) })
	if _, err := store.Create("ev-snap", db, "events", 1, 1); err != nil {
		t.Fatal(err)
	}
	// A snapshot of another table must never substitute.
	if err := db.CreateTable(dataset.MustNewTable("other", dataset.IntColumn("id", []int64{1}, nil))); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Create("other-snap", db, "other", 1, 1); err != nil {
		t.Fatal(err)
	}

	ctx := permScanCtx(t, db)
	ctx.Snapshots = store
	ctx.Degrade = DegradePolicy{Enabled: true, MaxSnapshotAge: time.Hour, SampleRate: 0.5,
		Now: func() time.Time { return now }}
	res, err := loadTable(t, ctx)
	if err != nil {
		t.Fatalf("degradation did not absorb the permanent fault: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded")
	}
	full, _ := db.Table("events")
	if !res.Table.Equal(full.WithName("events")) {
		t.Error("snapshot fallback did not return the snapshotted table")
	}
	for _, s := range []string{res.DegradedNote, res.Message} {
		if !strings.Contains(s, "ev-snap") {
			t.Errorf("annotation does not name the snapshot: %q", s)
		}
	}
}

func TestLoadTableStaleSnapshotFallsToSample(t *testing.T) {
	db := degradeDB(t)
	now := time.Unix(10_000, 0)
	store := snapshot.NewStore(0)
	store.SetClock(func() time.Time { return now.Add(-2 * time.Hour) }) // too stale
	if _, err := store.Create("ev-snap", db, "events", 1, 1); err != nil {
		t.Fatal(err)
	}

	ctx := permScanCtx(t, db)
	ctx.Snapshots = store
	ctx.Degrade = DegradePolicy{Enabled: true, MaxSnapshotAge: time.Hour, SampleRate: 0.5,
		Now: func() time.Time { return now }}
	res, err := loadTable(t, ctx)
	if err != nil {
		t.Fatalf("sample fallback did not absorb the fault: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedNote, "block sample") {
		t.Fatalf("want a block-sample fallback, got %+v", res)
	}
	if res.Table.NumRows() == 0 || res.Table.NumRows() >= 64 {
		t.Errorf("sample has %d rows, want a proper subset of 64", res.Table.NumRows())
	}
}

func TestLoadTableTransientFaultIsNotDegraded(t *testing.T) {
	db := degradeDB(t)
	ctx := NewContext()
	inj := faults.NewInjector(faults.Schedule{
		FailOps: map[int]faults.Kind{1: faults.Throttled},
		Ops:     map[string]bool{"scan": true},
	}, nil)
	ctx.Cloud["wh"] = faults.WrapDB(db, inj)
	ctx.Degrade = DegradePolicy{Enabled: true, SampleRate: 0.5}
	_, err := loadTable(t, ctx)
	if !faults.IsTransient(err) {
		t.Fatalf("transient fault should propagate to the retry layer, got %v", err)
	}
}

func TestLoadTableDegradeDisabledPropagates(t *testing.T) {
	db := degradeDB(t)
	ctx := permScanCtx(t, db) // zero Degrade policy
	_, err := loadTable(t, ctx)
	if !faults.IsPermanent(err) {
		t.Fatalf("with degradation off the permanent fault must propagate, got %v", err)
	}
}

func TestLoadTableNoFallbackAvailable(t *testing.T) {
	db := degradeDB(t)
	ctx := permScanCtx(t, db)
	// Degradation on, but no snapshot store and sampling disabled.
	ctx.Degrade = DegradePolicy{Enabled: true}
	_, err := loadTable(t, ctx)
	if !faults.IsPermanent(err) {
		t.Fatalf("no fallback applies, the fault must propagate, got %v", err)
	}
}
