// Package ml is the machine-learning substrate behind DataChat's ML skills
// (Table 1: "Train a model to predict <column>", outlier discovery, time
// series prediction). It implements linear and logistic regression, k-means
// clustering, decision trees, outlier detectors, and a trend+seasonal time
// series forecaster — all from scratch on float64 matrices extracted from
// dataset tables.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"datachat/internal/dataset"
)

// Model is a trained predictor over numeric feature vectors.
type Model interface {
	// Predict returns one prediction per feature row.
	Predict(features [][]float64) []float64
	// Kind names the algorithm (e.g. "linear-regression").
	Kind() string
	// Explain returns a human-readable description of what was learned —
	// the GEL-facing model explanation from §2.3.
	Explain() string
}

// Matrix is a design matrix with column names, extracted from a table.
type Matrix struct {
	// Names are the feature column names (after encoding).
	Names []string
	// Rows holds one feature vector per retained table row.
	Rows [][]float64
	// Target holds the target value per retained row (empty if no target).
	Target []float64
	// Kept maps matrix rows back to source table row indexes.
	Kept []int
	// Levels records label encodings for categorical columns.
	Levels map[string][]string
}

// BuildMatrix extracts features (and optionally a target) from a table.
// Numeric and bool columns pass through; string columns are label-encoded
// with a recorded level order; time columns become unix seconds. Rows where
// the target (or any feature) is null are dropped.
func BuildMatrix(t *dataset.Table, features []string, target string) (*Matrix, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("ml: at least one feature column required")
	}
	m := &Matrix{Names: append([]string{}, features...), Levels: map[string][]string{}}
	cols := make([]*dataset.Column, len(features))
	encoders := make([]func(dataset.Value) (float64, bool), len(features))
	for i, name := range features {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c
		encoders[i] = encoderFor(c, name, m.Levels)
	}
	var targetCol *dataset.Column
	var targetEnc func(dataset.Value) (float64, bool)
	if target != "" {
		c, err := t.Column(target)
		if err != nil {
			return nil, err
		}
		targetCol = c
		targetEnc = encoderFor(c, target, m.Levels)
	}
	for r := 0; r < t.NumRows(); r++ {
		row := make([]float64, len(cols))
		ok := true
		for i, c := range cols {
			v, valid := encoders[i](c.Value(r))
			if !valid {
				ok = false
				break
			}
			row[i] = v
		}
		if !ok {
			continue
		}
		var y float64
		if targetCol != nil {
			v, valid := targetEnc(targetCol.Value(r))
			if !valid {
				continue
			}
			y = v
		}
		m.Rows = append(m.Rows, row)
		m.Kept = append(m.Kept, r)
		if targetCol != nil {
			m.Target = append(m.Target, y)
		}
	}
	if len(m.Rows) == 0 {
		return nil, fmt.Errorf("ml: no usable rows after dropping nulls")
	}
	return m, nil
}

// encoderFor returns a closure mapping values of the column to floats,
// registering label levels for string columns.
func encoderFor(c *dataset.Column, name string, levels map[string][]string) func(dataset.Value) (float64, bool) {
	switch c.Type() {
	case dataset.TypeString:
		index := map[string]int{}
		var order []string
		for i := 0; i < c.Len(); i++ {
			if c.IsNull(i) {
				continue
			}
			s := c.Value(i).S
			if _, seen := index[s]; !seen {
				index[s] = len(order)
				order = append(order, s)
			}
		}
		levels[name] = order
		return func(v dataset.Value) (float64, bool) {
			if v.IsNull() {
				return 0, false
			}
			i, ok := index[v.S]
			return float64(i), ok
		}
	case dataset.TypeTime:
		return func(v dataset.Value) (float64, bool) {
			if v.IsNull() {
				return 0, false
			}
			return float64(v.T.Unix()), true
		}
	default:
		return func(v dataset.Value) (float64, bool) { return v.AsFloat() }
	}
}

// Split partitions matrix rows into train and test sets with the given test
// fraction, shuffled deterministically by seed.
func (m *Matrix) Split(testFrac float64, seed int64) (train, test *Matrix) {
	n := len(m.Rows)
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n) * testFrac)
	take := func(ids []int) *Matrix {
		out := &Matrix{Names: m.Names, Levels: m.Levels}
		for _, i := range ids {
			out.Rows = append(out.Rows, m.Rows[i])
			out.Kept = append(out.Kept, m.Kept[i])
			if len(m.Target) > 0 {
				out.Target = append(out.Target, m.Target[i])
			}
		}
		return out
	}
	return take(idx[nTest:]), take(idx[:nTest])
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	ss := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred)))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	total := 0.0
	for i := range pred {
		total += math.Abs(pred[i] - truth[i])
	}
	return total / float64(len(pred))
}

// R2 returns the coefficient of determination.
func R2(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	mean := 0.0
	for _, y := range truth {
		mean += y
	}
	mean /= float64(len(truth))
	ssRes, ssTot := 0.0, 0.0
	for i := range truth {
		ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i])
		ssTot += (truth[i] - mean) * (truth[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Accuracy returns the fraction of predictions whose rounded value matches
// the truth — the classification metric for label-encoded targets.
func Accuracy(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	hits := 0
	for i := range pred {
		if math.Round(pred[i]) == math.Round(truth[i]) {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// describeWeights renders weights for Explain strings.
func describeWeights(names []string, weights []float64, bias float64) string {
	parts := make([]string, 0, len(names)+1)
	for i, name := range names {
		parts = append(parts, fmt.Sprintf("%.4g·%s", weights[i], name))
	}
	parts = append(parts, fmt.Sprintf("%.4g", bias))
	return strings.Join(parts, " + ")
}

// solveLinearSystem solves A·x = b in place via Gaussian elimination with
// partial pivoting. A is n×n, b length n. Returns false when singular.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			for k := col; k < n; k++ {
				a[r][k] -= factor * a[col][k]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, true
}

// quantile returns the q-quantile (0..1) of sorted data via linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64{}, xs...)
	sort.Float64s(out)
	return out
}
