// Package pyapi implements the DataChat Python API dialect (§4.1, Figure
// 3b): the wrapper language the NL2Code generator targets because "the LLM
// is most proficient in Python". It parses programs like
//
//	adults = people.keep_rows(condition = "age >= 18")
//	adults.compute(aggregates = [Count("case_id")], for_each = ["dept"])
//
// into skill invocations, and (together with skills.RenderPython) gives the
// polyglot translation between GEL, Python, and SQL views of a recipe.
package pyapi

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"datachat/internal/skills"
)

// Statement is one parsed line: an optional assignment target plus a method
// call on a receiver.
type Statement struct {
	// Assign is the variable the result is bound to ("" when none).
	Assign string
	// Receiver is the dataset (or "dc" for platform-level calls).
	Receiver string
	// Method is the snake_case API method.
	Method string
	// Kwargs holds the keyword arguments.
	Kwargs map[string]any
	// Line is the 1-based source line.
	Line int
	// Source is the original text.
	Source string
}

// Program is a parsed Python API program.
type Program struct {
	Statements []*Statement
}

// Parse parses a Python API program: one statement per line, '#' comments
// and blank lines ignored.
func Parse(src string) (*Program, error) {
	prog := &Program{}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		stmt, err := parseStatement(line)
		if err != nil {
			return nil, fmt.Errorf("pyapi: line %d: %w", i+1, err)
		}
		stmt.Line = i + 1
		stmt.Source = line
		prog.Statements = append(prog.Statements, stmt)
	}
	if len(prog.Statements) == 0 {
		return nil, fmt.Errorf("pyapi: empty program")
	}
	return prog, nil
}

type scanner struct {
	src string
	pos int
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) && (s.src[s.pos] == ' ' || s.src[s.pos] == '\t') {
		s.pos++
	}
}

func (s *scanner) peek() byte {
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) ident() (string, error) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) {
		r := rune(s.src[s.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			s.pos++
			continue
		}
		break
	}
	if s.pos == start {
		return "", fmt.Errorf("expected identifier at column %d", s.pos+1)
	}
	return s.src[start:s.pos], nil
}

func (s *scanner) expect(c byte) error {
	s.skipSpace()
	if s.peek() != c {
		return fmt.Errorf("expected %q at column %d", string(c), s.pos+1)
	}
	s.pos++
	return nil
}

func (s *scanner) accept(c byte) bool {
	s.skipSpace()
	if s.peek() == c {
		s.pos++
		return true
	}
	return false
}

func parseStatement(line string) (*Statement, error) {
	s := &scanner{src: line}
	first, err := s.ident()
	if err != nil {
		return nil, err
	}
	stmt := &Statement{Kwargs: map[string]any{}}
	s.skipSpace()
	if s.peek() == '=' && s.pos+1 < len(s.src) && s.src[s.pos+1] != '=' {
		s.pos++
		stmt.Assign = first
		if first, err = s.ident(); err != nil {
			return nil, err
		}
	}
	stmt.Receiver = first
	if err := s.expect('.'); err != nil {
		return nil, err
	}
	if stmt.Method, err = s.ident(); err != nil {
		return nil, err
	}
	if err := s.expect('('); err != nil {
		return nil, err
	}
	if !s.accept(')') {
		for {
			name, err := s.ident()
			if err != nil {
				return nil, err
			}
			if err := s.expect('='); err != nil {
				return nil, err
			}
			value, err := s.parseValue()
			if err != nil {
				return nil, err
			}
			stmt.Kwargs[name] = value
			if s.accept(')') {
				break
			}
			if err := s.expect(','); err != nil {
				return nil, err
			}
		}
	}
	s.skipSpace()
	if s.pos != len(s.src) {
		return nil, fmt.Errorf("unexpected trailing text %q", s.src[s.pos:])
	}
	return stmt, nil
}

// aggCtors maps Python aggregate constructor names to AggSpec functions.
var aggCtors = map[string]string{
	"Count": "count", "Sum": "sum", "Average": "avg", "Avg": "avg",
	"Min": "min", "Max": "max", "Median": "median", "Stddev": "stddev",
	"CountDistinct": "count_distinct",
}

// parseValue parses a kwarg value: string, number, bool, identifier, list,
// or aggregate constructor call.
func (s *scanner) parseValue() (any, error) {
	s.skipSpace()
	switch c := s.peek(); {
	case c == '"' || c == '\'':
		return s.parseString()
	case c == '[':
		s.pos++
		var items []any
		if s.accept(']') {
			return items, nil
		}
		for {
			item, err := s.parseValue()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			if s.accept(']') {
				return items, nil
			}
			if err := s.expect(','); err != nil {
				return nil, err
			}
		}
	case c >= '0' && c <= '9', c == '-', c == '.':
		return s.parseNumber()
	default:
		name, err := s.ident()
		if err != nil {
			return nil, err
		}
		switch name {
		case "True":
			return true, nil
		case "False":
			return false, nil
		case "None":
			return nil, nil
		}
		if s.accept('(') {
			return s.parseCtor(name)
		}
		// A bare identifier: a dataset/variable reference.
		return name, nil
	}
}

func (s *scanner) parseString() (string, error) {
	quote := s.src[s.pos]
	s.pos++
	var b strings.Builder
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == '\\' && s.pos+1 < len(s.src) {
			s.pos++
			b.WriteByte(s.src[s.pos])
			s.pos++
			continue
		}
		if c == quote {
			s.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		s.pos++
	}
	return "", fmt.Errorf("unterminated string")
}

func (s *scanner) parseNumber() (any, error) {
	start := s.pos
	if s.peek() == '-' {
		s.pos++
	}
	isFloat := false
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c >= '0' && c <= '9' {
			s.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			s.pos++
			continue
		}
		break
	}
	text := s.src[start:s.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", text)
		}
		return f, nil
	}
	n, err := strconv.Atoi(text)
	if err != nil {
		return nil, fmt.Errorf("bad number %q", text)
	}
	return n, nil
}

// parseCtor parses an aggregate constructor call like Count("case_id") or
// Sum("amount", as_name="total"); the name and '(' are consumed.
func (s *scanner) parseCtor(name string) (any, error) {
	fn, ok := aggCtors[name]
	if !ok {
		return nil, fmt.Errorf("unknown constructor %q", name)
	}
	spec := map[string]any{"func": fn}
	if s.accept(')') {
		return nil, fmt.Errorf("%s needs a column argument", name)
	}
	// First positional argument: the column.
	col, err := s.parseValue()
	if err != nil {
		return nil, err
	}
	colStr, ok := col.(string)
	if !ok {
		return nil, fmt.Errorf("%s column must be a string", name)
	}
	spec["column"] = colStr
	for !s.accept(')') {
		if err := s.expect(','); err != nil {
			return nil, err
		}
		kw, err := s.ident()
		if err != nil {
			return nil, err
		}
		if err := s.expect('='); err != nil {
			return nil, err
		}
		v, err := s.parseValue()
		if err != nil {
			return nil, err
		}
		if kw == "as_name" {
			spec["as"] = v
		} else {
			spec[kw] = v
		}
	}
	return spec, nil
}

// Translator converts parsed programs to skill invocations.
type Translator struct {
	// Registry resolves py method names to skills.
	Registry *skills.Registry
	byPy     map[string]string
}

// NewTranslator builds the method-name index.
func NewTranslator(reg *skills.Registry) *Translator {
	t := &Translator{Registry: reg, byPy: map[string]string{}}
	for _, name := range reg.Names() {
		def, _ := reg.Lookup(name)
		t.byPy[def.PyName] = def.Name
	}
	return t
}

// Invocations lowers a program to skill invocations. Receivers and
// assignment targets become dataset names; with_datasets kwargs become
// additional inputs.
func (t *Translator) Invocations(prog *Program) ([]skills.Invocation, error) {
	var out []skills.Invocation
	for _, stmt := range prog.Statements {
		skillName, ok := t.byPy[stmt.Method]
		if !ok {
			return nil, fmt.Errorf("pyapi: line %d: unknown API method %q", stmt.Line, stmt.Method)
		}
		inv := skills.Invocation{Skill: skillName, Args: skills.Args{}, Output: stmt.Assign}
		if stmt.Receiver != "dc" {
			inv.Inputs = []string{stmt.Receiver}
		}
		for k, v := range stmt.Kwargs {
			if k == "with_datasets" {
				list, err := toStringList(v)
				if err != nil {
					return nil, fmt.Errorf("pyapi: line %d: with_datasets: %w", stmt.Line, err)
				}
				inv.Inputs = append(inv.Inputs, list...)
				continue
			}
			inv.Args[k] = v
		}
		out = append(out, inv)
	}
	return out, nil
}

func toStringList(v any) ([]string, error) {
	items, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("expected a list, got %T", v)
	}
	out := make([]string, len(items))
	for i, item := range items {
		s, ok := item.(string)
		if !ok {
			return nil, fmt.Errorf("element %d is %T, not a name", i, item)
		}
		out[i] = s
	}
	return out, nil
}

// Render converts invocations back to Python API text, one statement per
// line (the inverse of Parse+Invocations, via skills.RenderPython).
func (t *Translator) Render(invs []skills.Invocation) (string, error) {
	lines := make([]string, len(invs))
	for i, inv := range invs {
		line, err := t.Registry.RenderPython(inv)
		if err != nil {
			return "", err
		}
		lines[i] = line
	}
	return strings.Join(lines, "\n"), nil
}
