package skills

import (
	"strings"
	"testing"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/snapshot"
	"datachat/internal/sqlengine"
)

func newTestContext(t *testing.T) *Context {
	t.Helper()
	ctx := NewContext()
	ctx.Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("id", []int64{1, 2, 3, 4, 5, 6}, nil),
		dataset.StringColumn("name", []string{"ann", "bob", "carl", "dee", "eve", "fay"}, nil),
		dataset.IntColumn("age", []int64{30, 25, 40, 25, 35, 52}, nil),
		dataset.StringColumn("dept", []string{"eng", "eng", "sales", "sales", "hr", "hr"}, nil),
		dataset.FloatColumn("salary", []float64{100, 80, 90, 85, 70, 0}, []bool{false, false, false, false, false, true}),
	)
	ctx.Datasets["orders"] = dataset.MustNewTable("orders",
		dataset.IntColumn("order_id", []int64{10, 11, 12}, nil),
		dataset.IntColumn("person_id", []int64{1, 1, 3}, nil),
		dataset.FloatColumn("amount", []float64{5, 7, 9}, nil),
	)
	return ctx
}

var reg = NewRegistry()

func run(t *testing.T, ctx *Context, inv Invocation) *Result {
	t.Helper()
	res, err := reg.Execute(ctx, inv)
	if err != nil {
		t.Fatalf("Execute(%s): %v", inv.Skill, err)
	}
	return res
}

func TestRegistryHasAbout50Skills(t *testing.T) {
	n := len(reg.Names())
	if n < 40 || n > 60 {
		t.Errorf("registry has %d skills; the paper says ~50", n)
	}
	byCat := reg.ByCategory()
	for _, cat := range Categories() {
		if len(byCat[cat]) == 0 {
			t.Errorf("category %s has no skills", cat)
		}
	}
}

func TestLookupCaseInsensitiveAndUnknown(t *testing.T) {
	if _, err := reg.Lookup("keeprows"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := reg.Lookup("NoSuchSkill"); err == nil {
		t.Error("unknown skill should error")
	}
}

func TestKeepRowsAndDropRows(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "KeepRows", Inputs: []string{"people"},
		Args: Args{"condition": "age > 30"}})
	if res.Table.NumRows() != 3 {
		t.Errorf("KeepRows rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "DropRows", Inputs: []string{"people"},
		Args: Args{"condition": "dept = 'eng'"}})
	if res.Table.NumRows() != 4 {
		t.Errorf("DropRows rows = %d", res.Table.NumRows())
	}
}

func TestKeepRowsBadCondition(t *testing.T) {
	ctx := newTestContext(t)
	_, err := reg.Execute(ctx, Invocation{Skill: "KeepRows", Inputs: []string{"people"},
		Args: Args{"condition": "age >"}})
	if err == nil {
		t.Error("bad condition should error")
	}
	_, err = reg.Execute(ctx, Invocation{Skill: "KeepRows", Inputs: []string{"people"}, Args: Args{}})
	if err == nil || !strings.Contains(err.Error(), "condition") {
		t.Errorf("missing required param should name it: %v", err)
	}
}

func TestColumnSkills(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "KeepColumns", Inputs: []string{"people"},
		Args: Args{"columns": []string{"name", "age"}}})
	if got := strings.Join(res.Table.ColumnNames(), ","); got != "name,age" {
		t.Errorf("KeepColumns = %s", got)
	}
	res = run(t, ctx, Invocation{Skill: "DropColumns", Inputs: []string{"people"},
		Args: Args{"columns": "salary"}})
	if res.Table.HasColumn("salary") {
		t.Error("DropColumns failed")
	}
	res = run(t, ctx, Invocation{Skill: "RenameColumn", Inputs: []string{"people"},
		Args: Args{"column": "age", "to": "years"}})
	if !res.Table.HasColumn("years") || res.Table.HasColumn("age") {
		t.Error("RenameColumn failed")
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "RenameColumn", Inputs: []string{"people"},
		Args: Args{"column": "age", "to": "name"}}); err == nil {
		t.Error("rename onto existing column should error")
	}
}

func TestNewColumnFormulaAndText(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "NewColumn", Inputs: []string{"people"},
		Args: Args{"name": "double_age", "formula": "age * 2"}})
	c, _ := res.Table.Column("double_age")
	if c.Value(0).I != 60 {
		t.Errorf("formula column = %v", c.Value(0))
	}
	res = run(t, ctx, Invocation{Skill: "NewColumn", Inputs: []string{"people"},
		Args: Args{"name": "RecordType", "text": "Actual"}})
	c, _ = res.Table.Column("RecordType")
	if c.Value(0).S != "Actual" {
		t.Errorf("text column = %v", c.Value(0))
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "NewColumn", Inputs: []string{"people"},
		Args: Args{"name": "x"}}); err == nil {
		t.Error("NewColumn without formula or text should error")
	}
}

func TestFillNullAndReplace(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "FillNull", Inputs: []string{"people"},
		Args: Args{"column": "salary", "value": "0"}})
	c, _ := res.Table.Column("salary")
	if c.NullCount() != 0 {
		t.Error("FillNull left nulls")
	}
	res = run(t, ctx, Invocation{Skill: "ReplaceValues", Inputs: []string{"people"},
		Args: Args{"column": "dept", "from": "hr", "to": "people-ops"}})
	c, _ = res.Table.Column("dept")
	found := false
	for i := 0; i < c.Len(); i++ {
		if c.Value(i).S == "people-ops" {
			found = true
		}
		if c.Value(i).S == "hr" {
			t.Error("ReplaceValues left old value")
		}
	}
	if !found {
		t.Error("ReplaceValues did not write new value")
	}
}

func TestSortLimitSampleDistinct(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "SortRows", Inputs: []string{"people"},
		Args: Args{"columns": "age", "descending": true}})
	c, _ := res.Table.Column("age")
	if c.Value(0).I != 52 {
		t.Errorf("SortRows desc first = %v", c.Value(0))
	}
	res = run(t, ctx, Invocation{Skill: "LimitRows", Inputs: []string{"people"},
		Args: Args{"count": 2}})
	if res.Table.NumRows() != 2 {
		t.Errorf("LimitRows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "SampleRows", Inputs: []string{"people"},
		Args: Args{"fraction": 0.5}})
	if res.Table.NumRows() >= 6 || res.Table.NumRows() == 0 {
		t.Errorf("SampleRows = %d rows", res.Table.NumRows())
	}
	res2 := run(t, ctx, Invocation{Skill: "SampleRows", Inputs: []string{"people"},
		Args: Args{"fraction": 0.5}})
	if !res.Table.Equal(res2.Table) {
		t.Error("SampleRows should be deterministic for a fixed seed")
	}
	res = run(t, ctx, Invocation{Skill: "DistinctRows", Inputs: []string{"people"},
		Args: Args{"columns": "dept"}})
	if res.Table.NumRows() != 3 {
		t.Errorf("DistinctRows over dept = %d", res.Table.NumRows())
	}
}

func TestConcatenateAndJoin(t *testing.T) {
	ctx := newTestContext(t)
	ctx.Datasets["more"] = dataset.MustNewTable("more",
		dataset.IntColumn("id", []int64{1, 99}, nil),
		dataset.StringColumn("name", []string{"ann", "zed"}, nil),
	)
	res := run(t, ctx, Invocation{Skill: "Concatenate", Inputs: []string{"people", "more"}})
	if res.Table.NumRows() != 8 {
		t.Errorf("Concatenate rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "JoinDatasets", Inputs: []string{"people", "orders"},
		Args: Args{"on": "people.id = orders.person_id"}})
	if res.Table.NumRows() != 3 {
		t.Errorf("Join rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "JoinDatasets", Inputs: []string{"people", "orders"},
		Args: Args{"on": "people.id = orders.person_id", "kind": "left"}})
	if res.Table.NumRows() != 7 { // ann×2, carl×1, 4 unmatched
		t.Errorf("Left join rows = %d", res.Table.NumRows())
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "JoinDatasets", Inputs: []string{"people"},
		Args: Args{"on": "x = y"}}); err == nil {
		t.Error("join with one input should error")
	}
}

func TestComputeMatchesPaperExample(t *testing.T) {
	// Figure 3: Compute the count of case_id for each party_sobriety.
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "Compute", Inputs: []string{"people"},
		Args: Args{
			"aggregates": []string{"count of id as NumberOfPeople"},
			"for_each":   []string{"dept"},
		}})
	if res.Table.NumRows() != 3 {
		t.Fatalf("groups = %d", res.Table.NumRows())
	}
	if !res.Table.HasColumn("NumberOfPeople") {
		t.Errorf("columns = %v", res.Table.ColumnNames())
	}
	c, _ := res.Table.Column("NumberOfPeople")
	total := int64(0)
	for i := 0; i < c.Len(); i++ {
		total += c.Value(i).I
	}
	if total != 6 {
		t.Errorf("total count = %d", total)
	}
}

func TestComputeAggregateFunctions(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "Compute", Inputs: []string{"people"},
		Args: Args{"aggregates": []any{
			map[string]any{"func": "sum", "column": "age"},
			map[string]any{"func": "avg", "column": "age"},
			map[string]any{"func": "min", "column": "age"},
			map[string]any{"func": "max", "column": "age"},
			map[string]any{"func": "median", "column": "age"},
			map[string]any{"func": "count_distinct", "column": "dept"},
			map[string]any{"func": "count", "column": "*"},
		}}})
	row := res.Table.Row(0)
	wants := []string{"207", "34.5", "25", "52", "32.5", "3", "6"}
	for i, want := range wants {
		if row[i].String() != want {
			t.Errorf("agg %d (%s) = %s, want %s", i, res.Table.ColumnNames()[i], row[i], want)
		}
	}
}

func TestPivot(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "Pivot", Inputs: []string{"people"},
		Args: Args{"rows": "dept", "columns": "name", "measure": "sum of age"}})
	if res.Table.NumRows() != 3 || res.Table.NumCols() != 7 {
		t.Errorf("pivot shape = %d×%d", res.Table.NumRows(), res.Table.NumCols())
	}
}

func TestBinAndDatePart(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "Bin", Inputs: []string{"people"},
		Args: Args{"column": "age", "size": 20}})
	c, err := res.Table.Column("ageInt20")
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Value(0); v.F != 20 { // age 30 -> bin 20
		t.Errorf("bin(30) = %v", v)
	}
	ctx.Datasets["dated"] = mustCSV(t, "dated", "d\n2021-03-15\n2022-07-01\n")
	res = run(t, ctx, Invocation{Skill: "ExtractDatePart", Inputs: []string{"dated"},
		Args: Args{"column": "d", "part": "year"}})
	c, _ = res.Table.Column("d_year")
	if c.Value(1).I != 2022 {
		t.Errorf("year = %v", c.Value(1))
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "ExtractDatePart", Inputs: []string{"dated"},
		Args: Args{"column": "d", "part": "week"}}); err == nil {
		t.Error("unknown date part should error")
	}
}

func mustCSV(t *testing.T, name, data string) *dataset.Table {
	t.Helper()
	tbl, err := dataset.ReadCSVString(name, data)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestLoadDataFromRegisteredFile(t *testing.T) {
	ctx := newTestContext(t)
	ctx.Files["https://example.com/data.csv?x=1"] = "a,b\n1,2\n"
	res := run(t, ctx, Invocation{Skill: "LoadData",
		Args: Args{"source": "https://example.com/data.csv?x=1"}})
	if res.Table.Name() != "data" || res.Table.NumRows() != 1 {
		t.Errorf("loaded = %s %d rows", res.Table.Name(), res.Table.NumRows())
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "LoadData",
		Args: Args{"source": "missing.csv"}}); err == nil {
		t.Error("unregistered source should error")
	}
}

func TestCloudSkills(t *testing.T) {
	ctx := newTestContext(t)
	ids := make([]int64, 5000)
	for i := range ids {
		ids[i] = int64(i)
	}
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 100)
	if err := db.CreateTable(dataset.MustNewTable("events", dataset.IntColumn("id", ids, nil))); err != nil {
		t.Fatal(err)
	}
	ctx.Cloud["warehouse"] = db
	ctx.Snapshots = snapshot.NewStore(50)

	res := run(t, ctx, Invocation{Skill: "LoadTable",
		Args: Args{"database": "warehouse", "table": "events"}})
	if res.Table.NumRows() != 5000 {
		t.Errorf("LoadTable rows = %d", res.Table.NumRows())
	}
	fullCost := db.Meter().BytesScanned()

	db.Meter().Reset()
	res = run(t, ctx, Invocation{Skill: "SampleTable",
		Args: Args{"database": "warehouse", "table": "events", "rate": 0.1}})
	if got := db.Meter().BytesScanned(); got*5 > fullCost {
		t.Errorf("10%% sample cost %d vs full %d", got, fullCost)
	}
	if res.Table.NumRows() == 0 || res.Table.NumRows() >= 5000 {
		t.Errorf("sample rows = %d", res.Table.NumRows())
	}

	res = run(t, ctx, Invocation{Skill: "CreateSnapshot",
		Args: Args{"name": "ev", "database": "warehouse", "table": "events"}})
	if res.Table.NumRows() != 5000 {
		t.Errorf("snapshot rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "UseSnapshot", Args: Args{"name": "ev"}})
	if res.Table.NumRows() != 5000 {
		t.Errorf("UseSnapshot rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "RefreshSnapshot",
		Args: Args{"name": "ev", "database": "warehouse"}})
	if !strings.Contains(res.Message, "refreshed") {
		t.Errorf("refresh message = %s", res.Message)
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "SampleTable",
		Args: Args{"database": "nope", "table": "events", "rate": 0.1}}); err == nil {
		t.Error("unknown database should error")
	}
}

func TestExplorationSkills(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "DescribeColumn", Inputs: []string{"people"},
		Args: Args{"column": "age"}})
	if res.Table.NumRows() != 1 {
		t.Fatalf("describe rows = %d", res.Table.NumRows())
	}
	row := res.Table.Row(0)
	if row[0].S != "age" || row[2].I != 6 {
		t.Errorf("describe row = %v", row)
	}
	res = run(t, ctx, Invocation{Skill: "DescribeDataset", Inputs: []string{"people"}})
	if res.Table.NumRows() != 5 {
		t.Errorf("describe dataset rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "CountRows", Inputs: []string{"people"}})
	if c, _ := res.Table.Column("rows"); c.Value(0).I != 6 {
		t.Errorf("CountRows = %v", c.Value(0))
	}
	res = run(t, ctx, Invocation{Skill: "ListDatasets"})
	if res.Table.NumRows() != 2 {
		t.Errorf("ListDatasets rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "ShowDataset", Inputs: []string{"people"}, Args: Args{"rows": 3}})
	if res.Table.NumRows() != 3 {
		t.Errorf("ShowDataset rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "TopValues", Inputs: []string{"people"},
		Args: Args{"column": "dept", "count": 2}})
	if res.Table.NumRows() != 2 {
		t.Errorf("TopValues rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "Correlate", Inputs: []string{"people"},
		Args: Args{"column1": "id", "column2": "age"}})
	if c, _ := res.Table.Column("pearson_r"); c.Value(0).IsNull() {
		t.Error("correlation should be computed")
	}
}

func TestVisualizationSkills(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "PlotChart", Inputs: []string{"people"},
		Args: Args{"chart": "bar", "x": "dept", "y": "salary"}})
	if len(res.Charts) != 1 {
		t.Fatalf("charts = %d", len(res.Charts))
	}
	res = run(t, ctx, Invocation{Skill: "Visualize", Inputs: []string{"people"},
		Args: Args{"kpi": "dept", "by": []string{"age", "name"}}})
	if len(res.Charts) < 3 {
		t.Errorf("Visualize produced %d charts", len(res.Charts))
	}
	if !strings.Contains(res.Message, "charts to visualize the data") {
		t.Errorf("message = %s", res.Message)
	}
	res = run(t, ctx, Invocation{Skill: "Visualize", Inputs: []string{"people"},
		Args: Args{"kpi": "dept", "filter": "age > 30"}})
	if res.Charts[0].RowsUsed != 3 {
		t.Errorf("filtered rows used = %d", res.Charts[0].RowsUsed)
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "PlotChart", Inputs: []string{"people"},
		Args: Args{"chart": "sunburst", "x": "dept"}}); err == nil {
		t.Error("unknown chart type should error")
	}
}

func TestMLSkillsEndToEnd(t *testing.T) {
	ctx := newTestContext(t)
	// Deterministic y = 3x dataset.
	xs := make([]int64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = int64(i)
		ys[i] = 3 * float64(i)
	}
	ctx.Datasets["lin"] = dataset.MustNewTable("lin",
		dataset.IntColumn("x", xs, nil),
		dataset.FloatColumn("y", ys, nil),
	)
	res := run(t, ctx, Invocation{Skill: "TrainModel", Inputs: []string{"lin"},
		Args: Args{"target": "y", "features": []string{"x"}, "name": "m"}})
	if res.Model == nil || ctx.Models["m"] == nil {
		t.Fatal("model not stored")
	}
	if !strings.Contains(res.Message, "linear-regression") {
		t.Errorf("message = %s", res.Message)
	}
	res = run(t, ctx, Invocation{Skill: "PredictWithModel", Inputs: []string{"lin"},
		Args: Args{"model": "m", "features": []string{"x"}}})
	c, _ := res.Table.Column("prediction")
	if got := c.Value(10).F; got < 29 || got > 31 {
		t.Errorf("prediction(10) = %v", got)
	}
	res = run(t, ctx, Invocation{Skill: "EvaluateModel", Inputs: []string{"lin"},
		Args: Args{"model": "m", "target": "y", "features": []string{"x"}}})
	if res.Table.NumRows() < 4 {
		t.Errorf("metrics rows = %d", res.Table.NumRows())
	}
	res = run(t, ctx, Invocation{Skill: "ExplainModel", Args: Args{"model": "m"}})
	if !strings.Contains(res.Message, "linear model") {
		t.Errorf("explain = %s", res.Message)
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "ExplainModel", Args: Args{"model": "nope"}}); err == nil {
		t.Error("missing model should error")
	}
}

func TestClusterAndOutlierSkills(t *testing.T) {
	ctx := newTestContext(t)
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(i % 5)
	}
	vals[25] = 1000
	ctx.Datasets["series"] = dataset.MustNewTable("series",
		dataset.FloatColumn("v", vals, nil))
	res := run(t, ctx, Invocation{Skill: "DetectOutliers", Inputs: []string{"series"},
		Args: Args{"column": "v"}})
	c, _ := res.Table.Column("is_outlier")
	if !c.Value(25).B {
		t.Error("planted outlier not flagged")
	}
	res = run(t, ctx, Invocation{Skill: "ClusterRows", Inputs: []string{"people"},
		Args: Args{"columns": []string{"age", "id"}, "k": 2}})
	if !res.Table.HasColumn("cluster") {
		t.Error("cluster column missing")
	}
}

func TestPredictTimeSeriesSkill(t *testing.T) {
	// Figure 2: predict the next 12 values of a quarterly series.
	ctx := newTestContext(t)
	var csv strings.Builder
	csv.WriteString("DATE,GDPC1\n")
	for q := 0; q < 40; q++ {
		year := 2005 + q/4
		month := 1 + (q%4)*3
		csv.WriteString(strings.Join([]string{
			formatDate(year, month), formatFloat(15000 + 50*float64(q)),
		}, ",") + "\n")
	}
	ctx.Datasets["fredgraph"] = mustCSV(t, "fredgraph", csv.String())
	res := run(t, ctx, Invocation{Skill: "PredictTimeSeries", Inputs: []string{"fredgraph"},
		Args: Args{"measure": "GDPC1", "time": "DATE", "steps": 12}})
	if res.Table.NumRows() != 12 {
		t.Fatalf("predicted rows = %d", res.Table.NumRows())
	}
	if res.Table.Name() != "PredictedTimeSeries_GDPC1" {
		t.Errorf("output name = %s", res.Table.Name())
	}
	rt, _ := res.Table.Column("RecordType")
	if rt.Value(0).S != "Predicted" {
		t.Errorf("RecordType = %v", rt.Value(0))
	}
	// Forecast continues the 50/quarter trend.
	g, _ := res.Table.Column("GDPC1")
	if got := g.Value(0).F; got < 16950 || got > 17050 {
		t.Errorf("first prediction = %v", got)
	}
	// Time stamps extrapolate quarterly.
	d, _ := res.Table.Column("DATE")
	if d.Value(0).T.Year() != 2015 {
		t.Errorf("first predicted date = %v", d.Value(0))
	}
}

func formatDate(year, month int) string {
	m := "0"
	if month >= 10 {
		m = ""
	}
	return strings.Join([]string{intToStr(year), m + intToStr(month), "01"}, "-")
}

func intToStr(n int) string { return strings.TrimSpace(strings.Join([]string{}, "")) + itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func formatFloat(f float64) string {
	return itoa(int(f))
}

func TestRunSQLSkill(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "RunSQL",
		Args: Args{"query": "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept ORDER BY dept"}})
	if res.Table.NumRows() != 3 {
		t.Errorf("RunSQL rows = %d", res.Table.NumRows())
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "RunSQL",
		Args: Args{"query": "SELECT * FROM nope"}}); err == nil {
		t.Error("bad query should error")
	}
}

func TestCollaborationSkills(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "ExportCSV", Inputs: []string{"people"},
		Args: Args{"file": "out.csv"}})
	if !strings.Contains(res.Message, "Exported 6 rows") {
		t.Errorf("export message = %s", res.Message)
	}
	if _, ok := ctx.Files["out.csv"]; !ok {
		t.Error("export did not register the file")
	}
	res = run(t, ctx, Invocation{Skill: "Define",
		Args: Args{"phrase": "senior staff", "meaning": "age >= 40"}})
	if ctx.Definitions["senior staff"] != "age >= 40" {
		t.Error("Define did not record the phrase")
	}
	run(t, ctx, Invocation{Skill: "SaveArtifact", Inputs: []string{"people"}, Args: Args{"name": "t1"}})
	run(t, ctx, Invocation{Skill: "ShareArtifact", Args: Args{"name": "t1"}})
	run(t, ctx, Invocation{Skill: "ShareSession", Args: Args{"with": "bob"}})
	run(t, ctx, Invocation{Skill: "PublishToInsightsBoard", Args: Args{"artifact": "t1", "board": "b"}})
	run(t, ctx, Invocation{Skill: "AddComment", Args: Args{"text": "check this"}})
}

// TestDualPathEquivalence verifies the §2.2 claim that relational skills
// have equivalent SQL and direct implementations: the same chain executed
// through the QueryBuilder and through Apply yields the same table.
func TestDualPathEquivalence(t *testing.T) {
	ctx := newTestContext(t)
	chains := [][]Invocation{
		{
			{Skill: "KeepRows", Args: Args{"condition": "age > 25"}},
			{Skill: "KeepColumns", Args: Args{"columns": []string{"name", "age", "dept"}}},
			{Skill: "SortRows", Args: Args{"columns": "age"}},
			{Skill: "LimitRows", Args: Args{"count": 3}},
		},
		{
			{Skill: "NewColumn", Args: Args{"name": "age2", "formula": "age * 2"}},
			{Skill: "KeepRows", Args: Args{"condition": "age2 >= 60"}},
			{Skill: "SortRows", Args: Args{"columns": "age2", "descending": true}},
		},
		{
			{Skill: "Compute", Args: Args{
				"aggregates": []string{"count of id as n", "avg of age as avg_age"},
				"for_each":   []string{"dept"}}},
			{Skill: "SortRows", Args: Args{"columns": "dept"}},
		},
		{
			{Skill: "DistinctRows", Args: Args{"columns": []string{"dept"}}},
			{Skill: "SortRows", Args: Args{"columns": "dept"}},
		},
		{
			{Skill: "Bin", Args: Args{"column": "age", "size": 10}},
			{Skill: "KeepRows", Args: Args{"condition": "ageInt10 = 20"}},
		},
	}
	for ci, chain := range chains {
		// Direct path.
		ctx.Datasets["work"] = ctx.Datasets["people"].WithName("work")
		current := "work"
		for _, inv := range chain {
			inv.Inputs = []string{current}
			res, err := reg.Execute(ctx, inv)
			if err != nil {
				t.Fatalf("chain %d direct %s: %v", ci, inv.Skill, err)
			}
			ctx.Datasets["work"] = res.Table.WithName("work")
		}
		direct := ctx.Datasets["work"]

		// SQL path.
		b := NewQueryBuilder("people")
		for _, inv := range chain {
			def, err := reg.Lookup(inv.Skill)
			if err != nil {
				t.Fatal(err)
			}
			if def.MergeSQL == nil {
				t.Fatalf("chain %d: %s is not relational", ci, inv.Skill)
			}
			if err := def.MergeSQL(b, inv); err != nil {
				t.Fatalf("chain %d merge %s: %v", ci, inv.Skill, err)
			}
		}
		viaSQL, err := sqlengine.ExecStmt(ctx, b.Stmt())
		if err != nil {
			t.Fatalf("chain %d sql exec (%s): %v", ci, b.SQL(), err)
		}
		if !direct.Equal(viaSQL.WithName(direct.Name())) {
			t.Errorf("chain %d: direct and SQL paths disagree\nSQL: %s\ndirect:\n%s\nsql:\n%s",
				ci, b.SQL(), direct, viaSQL)
		}
	}
}

func TestQueryBuilderConsolidation(t *testing.T) {
	// Figure 4: Load → Filter → Limit consolidates into ONE query block.
	b := NewQueryBuilder("collisions")
	cond, err := sqlengine.ParseExpr("county = 'yolo'")
	if err != nil {
		t.Fatal(err)
	}
	b.Where(cond)
	b.Limit(100)
	if got := b.Blocks(); got != 1 {
		t.Errorf("consolidated blocks = %d, want 1\n%s", got, b.SQL())
	}

	// The naive path nests every step.
	naive := NewQueryBuilder("collisions")
	naive.AlwaysNest = true
	naive.Where(cond)
	naive.Limit(100)
	if got := naive.Blocks(); got < 3 {
		t.Errorf("naive blocks = %d, want >= 3", got)
	}
}

func TestQueryBuilderNestsWhenUnsafe(t *testing.T) {
	b := NewQueryBuilder("t")
	if err := b.GroupBy([]AggSpec{{Func: "count", Column: "*"}}, []string{"dept"}); err != nil {
		t.Fatal(err)
	}
	cond, _ := sqlengine.ParseExpr("count_records > 1")
	b.Where(cond) // filter after aggregation must nest
	if got := b.Blocks(); got != 2 {
		t.Errorf("blocks = %d, want 2\n%s", got, b.SQL())
	}

	// Limit then sort must nest (different semantics).
	b2 := NewQueryBuilder("t")
	b2.Limit(10)
	b2.OrderBy([]string{"x"}, nil)
	if got := b2.Blocks(); got != 2 {
		t.Errorf("limit-then-sort blocks = %d, want 2\n%s", got, b2.SQL())
	}
}

func TestRenderGEL(t *testing.T) {
	cases := []struct {
		inv  Invocation
		want string
	}{
		{
			Invocation{Skill: "KeepRows", Args: Args{"condition": "DATE BETWEEN '2005-01-01' AND '2020-12-31'"}},
			"Keep the rows where DATE BETWEEN '2005-01-01' AND '2020-12-31'",
		},
		{
			Invocation{Skill: "KeepColumns", Args: Args{"columns": []string{"DATE", "GDPC1", "RecordType"}}},
			"Keep the columns DATE, GDPC1, RecordType",
		},
		{
			Invocation{Skill: "NewColumn", Args: Args{"name": "RecordType", "text": "Actual"}},
			"Create a new column RecordType with text Actual",
		},
		{
			Invocation{Skill: "Concatenate", Inputs: []string{"fredgraph", "PredictedTimeSeries_GDPC1"},
				Args: Args{"dedupe": true}},
			"Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
		},
		{
			Invocation{Skill: "Compute", Args: Args{
				"aggregates": []string{"count of case_id as NumberOfCases"},
				"for_each":   []string{"party_sobriety"}}},
			"Compute the count of case_id for each party_sobriety and call the computed columns NumberOfCases",
		},
		{
			Invocation{Skill: "PlotChart", Args: Args{"chart": "line", "x": "DATE", "y": "GDPC1", "for_each": "RecordType"}},
			"Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
		},
		{
			Invocation{Skill: "Visualize", Args: Args{"kpi": "at_fault", "by": []string{"party_age", "party_sex", "cellphone_in_use"}}},
			"Visualize at_fault by party_age, party_sex, cellphone_in_use",
		},
		{
			Invocation{Skill: "PredictTimeSeries", Args: Args{"measure": "GDPC1", "time": "DATE", "steps": 12}},
			"Predict time series with measure columns GDPC1 for the next 12 values of DATE",
		},
	}
	for _, c := range cases {
		got, err := reg.RenderGEL(c.inv)
		if err != nil {
			t.Fatalf("RenderGEL(%s): %v", c.inv.Skill, err)
		}
		if got != c.want {
			t.Errorf("RenderGEL(%s) =\n  %s\nwant\n  %s", c.inv.Skill, got, c.want)
		}
	}
}

func TestRenderPython(t *testing.T) {
	inv := Invocation{Skill: "Compute", Inputs: []string{"california_car_collisions"},
		Args: Args{
			"aggregates": []string{"count of case_id"},
			"for_each":   []string{"party_sobriety"},
		}}
	got, err := reg.RenderPython(inv)
	if err != nil {
		t.Fatal(err)
	}
	want := `california_car_collisions.compute(aggregates = [Count("case_id")], for_each = ["party_sobriety"])`
	if got != want {
		t.Errorf("RenderPython =\n  %s\nwant\n  %s", got, want)
	}
	inv2 := Invocation{Skill: "KeepRows", Inputs: []string{"people"}, Output: "adults",
		Args: Args{"condition": "age >= 18"}}
	got2, err := reg.RenderPython(inv2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != `adults = people.keep_rows(condition = "age >= 18")` {
		t.Errorf("RenderPython with output = %s", got2)
	}
}

func TestArgsHelpers(t *testing.T) {
	a := Args{"s": "x", "n": 3.0, "i": 4, "b": true, "list": []any{"p", "q"}}
	if v, _ := a.String("s"); v != "x" {
		t.Error("String failed")
	}
	if _, err := a.String("n"); err == nil {
		t.Error("String on number should error")
	}
	if v, _ := a.Int("n"); v != 3 {
		t.Error("Int on float64 failed")
	}
	if v, _ := a.Float("i"); v != 4 {
		t.Error("Float on int failed")
	}
	if !a.Bool("b") || a.Bool("missing") {
		t.Error("Bool failed")
	}
	if v, _ := a.StringList("list"); len(v) != 2 || v[1] != "q" {
		t.Error("StringList on []any failed")
	}
	if v, _ := a.StringList("s"); len(v) != 1 {
		t.Error("StringList on bare string failed")
	}
	if _, err := a.StringList("missing"); err == nil {
		t.Error("StringList missing should error")
	}
}

func TestAggSpecParsing(t *testing.T) {
	a := Args{"aggs": []string{"count of records", "sum of amount as total"}}
	specs, err := a.AggSpecs("aggs")
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Column != "*" || specs[0].Func != "count" {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].As != "total" || specs[1].OutName() != "total" {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	if specs[0].OutName() != "count_records" {
		t.Errorf("default name = %s", specs[0].OutName())
	}
	bad := Args{"aggs": []string{"frobnicate of x"}}
	if _, err := bad.AggSpecs("aggs"); err == nil {
		t.Error("unknown agg func should error")
	}
	empty := Args{"aggs": []any{}}
	if _, err := empty.AggSpecs("aggs"); err == nil {
		t.Error("empty agg list should error")
	}
}
