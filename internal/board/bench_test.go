package board

import (
	"sync"
	"testing"

	"datachat/internal/dataset"
)

func benchTable(b *testing.B) *dataset.Table {
	b.Helper()
	n := 256
	ids := make([]int64, n)
	vals := make([]int64, n)
	for i := range ids {
		ids[i], vals[i] = int64(i), int64(i*31%1000)
	}
	return dataset.MustNewTable("tile",
		dataset.IntColumn("id", ids, nil),
		dataset.IntColumn("val", vals, nil),
	)
}

// BenchmarkPublishFanout measures one publish delivered to 8 live
// subscribers — the board hot path every scheduled refresh pays.
func BenchmarkPublishFanout(b *testing.B) {
	h := NewHub()
	bd, err := h.Create("bench", "bench", "bench")
	if err != nil {
		b.Fatal(err)
	}
	tb := benchTable(b)
	const nsubs = 8
	var wg sync.WaitGroup
	subs := make([]*Subscription, nsubs)
	for i := range subs {
		sub, _, err := bd.Subscribe(0, b.N+16)
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = sub
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			for range s.C {
			}
		}(sub)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Publish("hot", Update{Table: tb, Message: "refresh"})
	}
	b.StopTimer()
	for _, s := range subs {
		s.Close()
	}
	wg.Wait()
}

// BenchmarkSnapshot measures the consistent board read a late subscriber
// or the HTTP snapshot endpoint performs.
func BenchmarkSnapshot(b *testing.B) {
	h := NewHub()
	bd, err := h.Create("bench", "bench", "bench")
	if err != nil {
		b.Fatal(err)
	}
	tb := benchTable(b)
	for i := 0; i < 16; i++ {
		bd.Publish("hot", Update{Table: tb})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := bd.Snapshot(); snap.Version == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
