package skills

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RenderGEL renders an invocation as its GEL sentence — the controlled
// natural language every recipe step is shown in (§2.3).
func (r *Registry) RenderGEL(inv Invocation) (string, error) {
	def, err := r.Lookup(inv.Skill)
	if err != nil {
		return "", err
	}
	switch def.Name {
	case "Compute":
		return renderComputeGEL(inv)
	case "Concatenate":
		return renderConcatGEL(inv)
	case "NewColumn":
		return renderNewColumnGEL(inv)
	case "PlotChart":
		return renderPlotGEL(inv)
	case "Visualize":
		return renderVisualizeGEL(inv)
	case "DistinctRows":
		if cols := inv.Args.StringListOr("columns"); len(cols) > 0 {
			return "Remove duplicate rows over " + strings.Join(cols, ", "), nil
		}
		return "Remove duplicate rows", nil
	case "SortRows":
		// The template drops the descending flag; render the variant the
		// grammar's descending entry parses back.
		sentence := "Sort the rows by " + gelValue(inv, "columns")
		if inv.Args.Bool("descending") {
			sentence += " in descending order"
		}
		return sentence, nil
	case "JoinDatasets":
		prefix := "Join"
		switch strings.ToLower(inv.Args.StringOr("kind", "")) {
		case "left":
			prefix = "Left join"
		case "cross":
			prefix = "Cross join"
		}
		return prefix + " the datasets " + strings.Join(inv.Inputs, " and ") +
			" on " + gelValue(inv, "on"), nil
	}
	return fillTemplate(def.GEL, inv), nil
}

// fillTemplate substitutes {param} placeholders in a GEL template.
func fillTemplate(template string, inv Invocation) string {
	out := template
	for {
		start := strings.IndexByte(out, '{')
		if start < 0 {
			return out
		}
		end := strings.IndexByte(out[start:], '}')
		if end < 0 {
			return out
		}
		end += start
		key := out[start+1 : end]
		out = out[:start] + gelValue(inv, key) + out[end+1:]
	}
}

func gelValue(inv Invocation, key string) string {
	if key == "inputs" {
		return strings.Join(inv.Inputs, " and ")
	}
	v, ok := inv.Args[key]
	if !ok {
		return "…"
	}
	switch vv := v.(type) {
	case string:
		return vv
	case []string:
		return strings.Join(vv, ", ")
	case []any:
		parts := make([]string, len(vv))
		for i, item := range vv {
			parts[i] = fmt.Sprint(item)
		}
		return strings.Join(parts, ", ")
	case float64:
		return strconv.FormatFloat(vv, 'g', -1, 64)
	case int:
		return strconv.Itoa(vv)
	case bool:
		return strconv.FormatBool(vv)
	default:
		return fmt.Sprint(v)
	}
}

func renderComputeGEL(inv Invocation) (string, error) {
	aggs, err := inv.Args.AggSpecs("aggregates")
	if err != nil {
		return "", err
	}
	parts := make([]string, len(aggs))
	var aliases []string
	for i, a := range aggs {
		col := a.Column
		if col == "*" || col == "" {
			col = "records"
		}
		parts[i] = fmt.Sprintf("%s of %s", strings.ToLower(a.Func), col)
		if a.As != "" {
			aliases = append(aliases, a.As)
		}
	}
	sentence := "Compute the " + joinAnd(parts)
	if keys := inv.Args.StringListOr("for_each"); len(keys) > 0 {
		sentence += " for each " + joinAnd(keys)
	}
	if len(aliases) > 0 {
		sentence += " and call the computed columns " + joinAnd(aliases)
	}
	return sentence, nil
}

func renderConcatGEL(inv Invocation) (string, error) {
	sentence := "Concatenate the datasets " + joinAnd(inv.Inputs)
	if inv.Args.Bool("dedupe") {
		sentence += " remove all duplicates"
	}
	return sentence, nil
}

func renderNewColumnGEL(inv Invocation) (string, error) {
	name := inv.Args.StringOr("name", "…")
	if text, err := inv.Args.String("text"); err == nil {
		return fmt.Sprintf("Create a new column %s with text %s", name, text), nil
	}
	return fmt.Sprintf("Create a new column %s as %s", name, inv.Args.StringOr("formula", "…")), nil
}

func renderPlotGEL(inv Invocation) (string, error) {
	chart := inv.Args.StringOr("chart", "…")
	x := inv.Args.StringOr("x", "…")
	sentence := fmt.Sprintf("Plot a %s chart with the x-axis %s", chart, x)
	if y := inv.Args.StringOr("y", ""); y != "" {
		sentence += ", the y-axis " + y
	}
	if g := inv.Args.StringOr("for_each", ""); g != "" {
		sentence += ", for each " + g
	}
	return sentence, nil
}

func renderVisualizeGEL(inv Invocation) (string, error) {
	sentence := "Visualize " + inv.Args.StringOr("kpi", "…")
	if by := inv.Args.StringListOr("by"); len(by) > 0 {
		sentence += " by " + strings.Join(by, ", ")
	}
	if filter := inv.Args.StringOr("filter", ""); filter != "" {
		sentence += " where " + filter
	}
	return sentence, nil
}

func joinAnd(parts []string) string {
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	default:
		return strings.Join(parts[:len(parts)-1], ", ") + " and " + parts[len(parts)-1]
	}
}

// RenderPython renders an invocation as a DataChat Python API call — the
// polyglot dialect the NL2Code generator targets (§4.1, Figure 3b).
func (r *Registry) RenderPython(inv Invocation) (string, error) {
	def, err := r.Lookup(inv.Skill)
	if err != nil {
		return "", err
	}
	receiver := "dc"
	if len(inv.Inputs) > 0 {
		receiver = sanitizePyIdent(inv.Inputs[0])
	}
	var argParts []string
	// Emit parameters in the declared order for stable rendering.
	emitted := map[string]bool{}
	for _, p := range def.Params {
		v, ok := inv.Args[p.Name]
		if !ok {
			continue
		}
		emitted[p.Name] = true
		rendered, err := pyValue(def, p.Name, v, inv)
		if err != nil {
			return "", err
		}
		argParts = append(argParts, fmt.Sprintf("%s = %s", p.Name, rendered))
	}
	// Any extra args, name-sorted for determinism.
	var extras []string
	for k := range inv.Args {
		if !emitted[k] {
			extras = append(extras, k)
		}
	}
	sort.Strings(extras)
	for _, k := range extras {
		rendered, err := pyValue(def, k, inv.Args[k], inv)
		if err != nil {
			return "", err
		}
		argParts = append(argParts, fmt.Sprintf("%s = %s", k, rendered))
	}
	if len(inv.Inputs) > 1 {
		others := make([]string, 0, len(inv.Inputs)-1)
		for _, name := range inv.Inputs[1:] {
			others = append(others, sanitizePyIdent(name))
		}
		argParts = append([]string{"with_datasets = [" + strings.Join(others, ", ") + "]"}, argParts...)
	}
	call := fmt.Sprintf("%s.%s(%s)", receiver, def.PyName, strings.Join(argParts, ", "))
	if inv.Output != "" {
		return sanitizePyIdent(inv.Output) + " = " + call, nil
	}
	return call, nil
}

func pyValue(def *Definition, name string, v any, inv Invocation) (string, error) {
	if name == "aggregates" || name == "measure" {
		aggs, err := inv.Args.AggSpecs(name)
		if err != nil {
			return "", err
		}
		parts := make([]string, len(aggs))
		for i, a := range aggs {
			ctor := strings.Title(strings.ToLower(a.Func))
			if strings.EqualFold(a.Func, "count_distinct") {
				ctor = "CountDistinct"
			}
			col := a.Column
			if col == "" {
				col = "*"
			}
			if a.As != "" {
				parts[i] = fmt.Sprintf("%s(%q, as_name=%q)", ctor, col, a.As)
			} else {
				parts[i] = fmt.Sprintf("%s(%q)", ctor, col)
			}
		}
		return "[" + strings.Join(parts, ", ") + "]", nil
	}
	switch vv := v.(type) {
	case string:
		return strconv.Quote(vv), nil
	case []string:
		parts := make([]string, len(vv))
		for i, s := range vv {
			parts[i] = strconv.Quote(s)
		}
		return "[" + strings.Join(parts, ", ") + "]", nil
	case []any:
		parts := make([]string, len(vv))
		for i, item := range vv {
			s, ok := item.(string)
			if !ok {
				parts[i] = fmt.Sprint(item)
				continue
			}
			parts[i] = strconv.Quote(s)
		}
		return "[" + strings.Join(parts, ", ") + "]", nil
	case float64:
		return strconv.FormatFloat(vv, 'g', -1, 64), nil
	case int:
		return strconv.Itoa(vv), nil
	case bool:
		if vv {
			return "True", nil
		}
		return "False", nil
	default:
		return fmt.Sprint(v), nil
	}
}

func sanitizePyIdent(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "data"
	}
	return b.String()
}
