package dag

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"datachat/internal/faults"
	"datachat/internal/skills"
	"datachat/internal/sqlengine"
)

// ExecOptions tunes how Run schedules work.
type ExecOptions struct {
	// Parallelism bounds the worker pool that executes independent DAG
	// branches. Values <= 0 mean runtime.GOMAXPROCS(0); 1 reproduces strict
	// serial execution (identical results and stats, by the §2.2 equivalence
	// property).
	Parallelism int
	// Retry re-attempts tasks that fail with transient errors, with capped
	// exponential backoff + jitter. The zero policy disables retrying: any
	// task error aborts the run, as before.
	Retry faults.RetryPolicy
	// Deadline bounds one Run's total (virtual) duration: a retry backoff
	// that would cross Now+Deadline is not taken and the task fails with
	// its last error. 0 means no deadline.
	Deadline time.Duration
	// Clock drives backoff sleeps and the deadline; nil means the wall
	// clock. Tests install a faults.VirtualClock so retry schedules
	// spanning minutes execute instantly.
	Clock faults.Clock
}

// clock returns the configured time source.
func (o ExecOptions) clock() faults.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return faults.Real()
}

// task is one schedulable unit of a Run: either a consolidated relational
// chain executed as a single SQL statement (Figure 4), or one direct skill
// application, or the republication of a plan-time cache hit.
type task struct {
	idx   int
	nodes []NodeID // topological order; the last entry produces the output
	tail  NodeID
	sql   bool

	key         string // sub-DAG cache key; "" when not cacheable
	cacheable   bool
	invalidates bool
	pinned      *skills.Result // plan-time cache hit: republish only

	deps       []int
	dependents []int

	waiting int
	result  *skills.Result
}

// plan is the compiled form of one Run: tasks wired by dependency edges.
// Planning runs serially — all signatures, fingerprints, and cache probes
// happen before any worker starts, so Graph and key computation need no
// locking.
type plan struct {
	tasks  []*task
	byNode map[NodeID]*task
}

// plan compiles the sub-DAG ending at target into tasks. Consolidation
// chains become single SQL tasks; everything else executes directly. Nodes
// whose cache key is already stored become republish-only tasks and their
// ancestors are pruned from the plan entirely, matching the recursive
// executor's short-circuit on a cache hit.
func (e *Executor) plan(g *Graph, target NodeID) (*plan, error) {
	needed, err := g.Ancestors(target)
	if err != nil {
		return nil, err
	}
	consumers := g.consumers(needed)

	// Taint pass: volatile skills depend on state the DAG signature cannot
	// see (cloud tables, snapshots, trained models) or mutate session state
	// when applied, so neither they nor their descendants may be served from
	// the cache — stale for the former, skipped side effects for the latter.
	tainted := map[NodeID]bool{}
	for _, id := range needed {
		node := g.nodes[id]
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return nil, fmt.Errorf("dag: node %d: %w", id, err)
		}
		taint := def.Volatile
		for _, p := range node.Parents {
			if p >= 0 && tainted[p] {
				taint = true
			}
		}
		tainted[id] = taint
	}

	// keyOf composes the cache key: the structural signature plus a content
	// fingerprint of every external input, so a reloaded or refreshed
	// dataset under the same name can never serve a stale cached result.
	type keyInfo struct {
		key string
		ok  bool
	}
	keys := map[NodeID]keyInfo{}
	keyOf := func(id NodeID) (string, bool, error) {
		if !e.UseCache || tainted[id] {
			return "", false, nil
		}
		if ki, ok := keys[id]; ok {
			return ki.key, ki.ok, nil
		}
		sig, err := g.Signature(id)
		if err != nil {
			return "", false, err
		}
		exts, err := g.ExternalInputs(id)
		if err != nil {
			return "", false, err
		}
		var b strings.Builder
		b.WriteString(sig)
		ok := true
		for _, name := range exts {
			fp, err := e.Ctx.Fingerprint(name)
			if err != nil {
				// Missing input: execution will report the real error; the
				// task simply cannot be cached.
				ok = false
				break
			}
			fmt.Fprintf(&b, "|%s=%016x", name, fp)
		}
		ki := keyInfo{ok: ok}
		if ok {
			ki.key = b.String()
		}
		keys[id] = ki
		return ki.key, ki.ok, nil
	}

	p := &plan{byNode: map[NodeID]*task{}}
	var build func(id NodeID) (*task, error)
	build = func(id NodeID) (*task, error) {
		if t, ok := p.byNode[id]; ok {
			return t, nil
		}
		t := &task{idx: len(p.tasks), tail: id}
		p.tasks = append(p.tasks, t)
		key, cacheable, err := keyOf(id)
		if err != nil {
			return nil, err
		}
		t.key, t.cacheable = key, cacheable
		if t.cacheable {
			if res, ok := e.cache.Get(key); ok {
				// Plan-time hit: the whole sub-DAG below is pruned and the
				// task only republishes the cached result.
				t.pinned = res
				t.nodes = []NodeID{id}
				p.byNode[id] = t
				e.counters.cacheHits.Add(1)
				return t, nil
			}
		}
		if e.Consolidate {
			chain, err := e.chainEnding(g, id, consumers, keyOf)
			if err != nil {
				return nil, err
			}
			if len(chain) > 0 {
				t.sql = true
				t.nodes = chain
			}
		}
		if len(t.nodes) == 0 {
			t.nodes = []NodeID{id}
		}
		for _, n := range t.nodes {
			p.byNode[n] = t
		}
		depSeen := map[int]bool{}
		for _, n := range t.nodes {
			node := g.nodes[n]
			def, err := e.Registry.Lookup(node.Inv.Skill)
			if err != nil {
				return nil, fmt.Errorf("dag: node %d: %w", n, err)
			}
			if def.Invalidates {
				t.invalidates = true
			}
			for _, par := range node.Parents {
				if par < 0 || p.byNode[par] == t {
					continue
				}
				dep, err := build(par)
				if err != nil {
					return nil, err
				}
				if !depSeen[dep.idx] {
					depSeen[dep.idx] = true
					t.deps = append(t.deps, dep.idx)
					dep.dependents = append(dep.dependents, t.idx)
				}
			}
		}
		return t, nil
	}
	if _, err := build(target); err != nil {
		return nil, err
	}
	return p, nil
}

// chainEnding collects the maximal single-input relational chain ending at
// id, in execution order (empty when id itself is not consolidatable). The
// walk replicates the §2.2 consolidation conditions — mergeable skill,
// single input, sole consumer — and additionally stops at a parent whose
// result is already cached, so the chain executes on top of the cached
// prefix instead of recomputing it (see the cache policy note on Run).
func (e *Executor) chainEnding(g *Graph, id NodeID, consumers map[NodeID][]NodeID, keyOf func(NodeID) (string, bool, error)) ([]NodeID, error) {
	var chain []NodeID
	cur := id
	for {
		node := g.nodes[cur]
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return nil, fmt.Errorf("dag: node %d: %w", cur, err)
		}
		if def.MergeSQL == nil || len(node.Parents) != 1 {
			break
		}
		chain = append(chain, cur)
		parent := node.Parents[0]
		if parent < 0 {
			break
		}
		if len(consumers[parent]) != 1 {
			break // shared sub-DAG: materialize the parent for everyone
		}
		if key, cacheable, err := keyOf(parent); err != nil {
			return nil, err
		} else if cacheable && e.cache.Peek(key) {
			break // cached prefix: reuse it as the base instead of refolding
		}
		cur = parent
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// isCancellation reports whether err is (or wraps) context cancellation —
// the collateral error of a sibling task cancelled mid-retry, less
// informative than whatever caused the cancel.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runPlan executes a compiled plan on a bounded worker pool. Workers pull
// ready tasks (all dependencies satisfied), execute them, publish their
// outputs, and release dependents. The first error stops scheduling and
// cancels the run context, which aborts the retry backoffs of in-flight
// siblings; attempts already executing finish before runPlan returns. The
// recorded first error prefers a task's real failure over the cancellation
// errors it causes downstream.
func (e *Executor) runPlan(ctx context.Context, g *Graph, p *plan, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.tasks) {
		workers = len(p.tasks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var deadline time.Time
	if e.Options.Deadline > 0 {
		deadline = e.Options.clock().Now().Add(e.Options.Deadline)
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []*task
		done     int
		active   int
		firstErr error
	)
	for _, t := range p.tasks {
		t.waiting = len(t.deps)
		if t.waiting == 0 {
			ready = append(ready, t)
		}
	}

	worker := func() {
		mu.Lock()
		for {
			if firstErr != nil || done == len(p.tasks) {
				mu.Unlock()
				return
			}
			if len(ready) == 0 {
				if active == 0 {
					// Cannot happen for a well-formed plan (it is a DAG);
					// guard so a planner bug stalls loudly, not silently.
					firstErr = fmt.Errorf("dag: internal: scheduler stalled with %d/%d tasks done", done, len(p.tasks))
					cond.Broadcast()
					mu.Unlock()
					return
				}
				cond.Wait()
				continue
			}
			t := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			active++
			mu.Unlock()

			res, err := e.executeTask(ctx, g, t, deadline)

			mu.Lock()
			active--
			done++
			if err != nil {
				if firstErr == nil || (isCancellation(firstErr) && !isCancellation(err)) {
					firstErr = err
				}
				cancel()
			} else {
				t.result = res
				for _, di := range t.dependents {
					dep := p.tasks[di]
					dep.waiting--
					if dep.waiting == 0 {
						ready = append(ready, dep)
					}
				}
			}
			cond.Broadcast()
		}
	}

	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	return firstErr
}

// executeTask runs one task: republish a pinned plan-time cache hit, or
// execute — through the cache for cacheable tasks, sharing identical
// in-flight computations across sessions — and publish the tail output into
// the session context. The retry loop runs inside the cache's singleflight,
// so concurrent callers of the same key wait out the leader's retries
// instead of racing their own.
func (e *Executor) executeTask(ctx context.Context, g *Graph, t *task, deadline time.Time) (*skills.Result, error) {
	var res *skills.Result
	switch {
	case t.pinned != nil:
		res = t.pinned
	case t.cacheable:
		r, hit, err := e.cache.Do(t.key, func() (*skills.Result, error) {
			return e.execTaskRetry(ctx, g, t, deadline)
		})
		if err != nil {
			return nil, err
		}
		if hit {
			e.counters.cacheHits.Add(1)
		} else {
			e.counters.cacheMisses.Add(1)
		}
		res = r
	default:
		r, err := e.execTaskRetry(ctx, g, t, deadline)
		if err != nil {
			return nil, err
		}
		res = r
	}
	e.materialize(g, t.tail, res)
	if t.invalidates {
		// Snapshot creation/refresh changes source data out from under every
		// cached signature; bump the generation so nothing stale survives.
		e.cache.Invalidate()
	}
	return res, nil
}

// execTaskRetry executes a task body under the run's retry policy: transient
// errors re-attempt with capped backoff + jitter (per-task jitter streams are
// decorrelated by task index), permanent errors and plain execution errors
// fail immediately, and a backoff that would cross the run deadline is not
// taken.
func (e *Executor) execTaskRetry(ctx context.Context, g *Graph, t *task, deadline time.Time) (*skills.Result, error) {
	pol := e.Options.Retry
	pol.Seed += int64(t.idx)
	res, stats, err := faults.Do(ctx, e.Options.clock(), pol, deadline, nil,
		func() (*skills.Result, error) { return e.execTaskBody(g, t) })
	if stats.Attempts > 1 {
		e.counters.retries.Add(int64(stats.Attempts - 1))
	}
	if err != nil {
		if faults.IsPermanent(err) {
			e.counters.permanentFailures.Add(1)
		}
		return nil, err
	}
	if res != nil && res.Degraded {
		e.counters.degraded.Add(1)
	}
	return res, nil
}

func (e *Executor) execTaskBody(g *Graph, t *task) (*skills.Result, error) {
	if t.sql {
		return e.execChain(g, t.nodes)
	}
	return e.execDirect(g, t.nodes[0])
}

// materialize publishes a node result into the session datasets under its
// output name, so sibling branches and later requests can reference it.
func (e *Executor) materialize(g *Graph, id NodeID, res *skills.Result) {
	if res == nil || res.Table == nil {
		return
	}
	name := g.nodes[id].OutputName()
	e.Ctx.PutDataset(name, res.Table.WithName(name))
}

// execDirect applies one skill node directly.
func (e *Executor) execDirect(g *Graph, id NodeID) (*skills.Result, error) {
	node := g.nodes[id]
	for i, p := range node.Parents {
		if p < 0 {
			if _, err := e.Ctx.Dataset(node.Inv.Inputs[i]); err != nil {
				return nil, fmt.Errorf("dag: node %d: %w", id, err)
			}
		}
	}
	inv := e.rewiredInvocation(g, node)
	res, err := e.Registry.Execute(e.Ctx, inv)
	if err != nil {
		return nil, fmt.Errorf("dag: node %d (%s): %w", id, node.Inv.Skill, err)
	}
	e.counters.tasksRun.Add(1)
	e.counters.directTasks.Add(1)
	return res, nil
}

// execChain runs a consolidated relational chain as one flattened SQL task.
func (e *Executor) execChain(g *Graph, chain []NodeID) (*skills.Result, error) {
	head := g.nodes[chain[0]]
	baseName := head.Inv.Inputs[0]
	if head.Parents[0] >= 0 {
		baseName = g.nodes[head.Parents[0]].OutputName()
	} else if _, err := e.Ctx.Dataset(baseName); err != nil {
		return nil, fmt.Errorf("dag: node %d: %w", head.ID, err)
	}
	builder := skills.NewQueryBuilder(baseName)
	for _, nid := range chain {
		node := g.nodes[nid]
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return nil, fmt.Errorf("dag: node %d: %w", nid, err)
		}
		if err := def.MergeSQL(builder, node.Inv); err != nil {
			return nil, fmt.Errorf("dag: consolidating node %d (%s): %w", nid, node.Inv.Skill, err)
		}
	}
	table, err := sqlengine.ExecStmt(e.Ctx, builder.Stmt())
	if err != nil {
		return nil, fmt.Errorf("dag: consolidated task %q: %w", builder.SQL(), err)
	}
	e.counters.tasksRun.Add(1)
	e.counters.sqlTasks.Add(1)
	e.counters.nodesConsolidated.Add(int64(len(chain)))
	e.counters.queryBlocks.Add(int64(builder.Blocks()))
	return &skills.Result{Table: table, Message: "via " + builder.SQL()}, nil
}
