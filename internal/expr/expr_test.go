package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"datachat/internal/dataset"
)

func mustEval(t *testing.T, e Expr, env Env) dataset.Value {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{"x": dataset.Int(10), "y": dataset.Float(2.5)}
	cases := []struct {
		e    Expr
		want dataset.Value
	}{
		{Bin(OpAdd, Column("x"), Lit(dataset.Int(5))), dataset.Int(15)},
		{Bin(OpSub, Column("x"), Lit(dataset.Int(3))), dataset.Int(7)},
		{Bin(OpMul, Column("x"), Column("y")), dataset.Float(25)},
		{Bin(OpDiv, Column("x"), Lit(dataset.Int(4))), dataset.Float(2.5)},
		{Bin(OpMod, Column("x"), Lit(dataset.Int(3))), dataset.Int(1)},
		{Neg(Column("x")), dataset.Int(-10)},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, env); !dataset.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	v := mustEval(t, Bin(OpDiv, Lit(dataset.Int(1)), Lit(dataset.Int(0))), nil)
	if !v.IsNull() {
		t.Errorf("1/0 = %v, want null", v)
	}
	v = mustEval(t, Bin(OpMod, Lit(dataset.Int(1)), Lit(dataset.Int(0))), nil)
	if !v.IsNull() {
		t.Errorf("1%%0 = %v, want null", v)
	}
}

func TestComparisons(t *testing.T) {
	env := MapEnv{"a": dataset.Int(3), "s": dataset.Str("cat")}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Bin(OpEq, Column("a"), Lit(dataset.Int(3))), true},
		{Bin(OpNe, Column("a"), Lit(dataset.Int(3))), false},
		{Bin(OpLt, Column("a"), Lit(dataset.Int(4))), true},
		{Bin(OpGe, Column("a"), Lit(dataset.Float(3.0))), true},
		{Bin(OpEq, Column("s"), Lit(dataset.Str("cat"))), true},
		{Bin(OpGt, Column("s"), Lit(dataset.Str("bat"))), true},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, env); got.B != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	env := MapEnv{"n": dataset.Null, "x": dataset.Int(1)}
	for _, e := range []Expr{
		Bin(OpAdd, Column("n"), Column("x")),
		Bin(OpEq, Column("n"), Column("x")),
		Bin(OpLt, Column("n"), Column("x")),
		Neg(Column("n")),
	} {
		if got := mustEval(t, e, env); !got.IsNull() {
			t.Errorf("%s = %v, want null", e, got)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tru := Lit(dataset.Bool(true))
	fls := Lit(dataset.Bool(false))
	nul := Lit(dataset.Null)
	cases := []struct {
		e      Expr
		isNull bool
		want   bool
	}{
		{Bin(OpAnd, fls, nul), false, false}, // false AND null = false
		{Bin(OpAnd, nul, fls), false, false},
		{Bin(OpAnd, tru, nul), true, false}, // true AND null = null
		{Bin(OpOr, tru, nul), false, true},  // true OR null = true
		{Bin(OpOr, nul, tru), false, true},
		{Bin(OpOr, fls, nul), true, false}, // false OR null = null
		{Bin(OpAnd, tru, tru), false, true},
		{Bin(OpOr, fls, fls), false, false},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if c.isNull {
			if !got.IsNull() {
				t.Errorf("%s = %v, want null", c.e, got)
			}
		} else if got.IsNull() || got.B != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"HELLO", "hello", true}, // case-insensitive
		{"abc", "%b%", true},
	}
	for _, c := range cases {
		e := Bin(OpLike, Lit(dataset.Str(c.s)), Lit(dataset.Str(c.pattern)))
		if got := mustEval(t, e, nil); got.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pattern, got.B, c.want)
		}
	}
}

func TestIsNullInBetween(t *testing.T) {
	env := MapEnv{"n": dataset.Null, "x": dataset.Int(5)}
	if got := mustEval(t, &IsNull{Operand: Column("n")}, env); !got.B {
		t.Error("null IS NULL should be true")
	}
	if got := mustEval(t, &IsNull{Operand: Column("x"), Negated: true}, env); !got.B {
		t.Error("5 IS NOT NULL should be true")
	}
	in := &In{Operand: Column("x"), List: []Expr{Lit(dataset.Int(1)), Lit(dataset.Int(5))}}
	if got := mustEval(t, in, env); !got.B {
		t.Error("5 IN (1,5) should be true")
	}
	notIn := &In{Operand: Column("x"), List: []Expr{Lit(dataset.Int(1))}, Negated: true}
	if got := mustEval(t, notIn, env); !got.B {
		t.Error("5 NOT IN (1) should be true")
	}
	// x IN (1, null) is null (unknown) when no match.
	inNull := &In{Operand: Column("x"), List: []Expr{Lit(dataset.Int(1)), Lit(dataset.Null)}}
	if got := mustEval(t, inNull, env); !got.IsNull() {
		t.Errorf("5 IN (1, null) = %v, want null", got)
	}
	between := &Between{Operand: Column("x"), Lo: Lit(dataset.Int(1)), Hi: Lit(dataset.Int(10))}
	if got := mustEval(t, between, env); !got.B {
		t.Error("5 BETWEEN 1 AND 10 should be true")
	}
	notBetween := &Between{Operand: Column("x"), Lo: Lit(dataset.Int(6)), Hi: Lit(dataset.Int(10)), Negated: true}
	if got := mustEval(t, notBetween, env); !got.B {
		t.Error("5 NOT BETWEEN 6 AND 10 should be true")
	}
}

func TestCaseExpr(t *testing.T) {
	e := &Case{
		Whens: []When{
			{Cond: Bin(OpLt, Column("x"), Lit(dataset.Int(0))), Result: Lit(dataset.Str("neg"))},
			{Cond: Bin(OpEq, Column("x"), Lit(dataset.Int(0))), Result: Lit(dataset.Str("zero"))},
		},
		Else: Lit(dataset.Str("pos")),
	}
	for x, want := range map[int64]string{-3: "neg", 0: "zero", 9: "pos"} {
		got := mustEval(t, e, MapEnv{"x": dataset.Int(x)})
		if got.S != want {
			t.Errorf("case(%d) = %v, want %s", x, got, want)
		}
	}
	noElse := &Case{Whens: []When{{Cond: Lit(dataset.Bool(false)), Result: Lit(dataset.Int(1))}}}
	if got := mustEval(t, noElse, nil); !got.IsNull() {
		t.Errorf("case with no match and no else = %v, want null", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		e    Expr
		want dataset.Value
	}{
		{Func("ABS", Lit(dataset.Int(-4))), dataset.Int(4)},
		{Func("ABS", Lit(dataset.Float(-4.5))), dataset.Float(4.5)},
		{Func("ROUND", Lit(dataset.Float(2.567)), Lit(dataset.Int(2))), dataset.Float(2.57)},
		{Func("FLOOR", Lit(dataset.Float(2.9))), dataset.Float(2)},
		{Func("CEIL", Lit(dataset.Float(2.1))), dataset.Float(3)},
		{Func("SQRT", Lit(dataset.Int(16))), dataset.Float(4)},
		{Func("POW", Lit(dataset.Int(2)), Lit(dataset.Int(10))), dataset.Float(1024)},
		{Func("UPPER", Lit(dataset.Str("abc"))), dataset.Str("ABC")},
		{Func("LOWER", Lit(dataset.Str("ABC"))), dataset.Str("abc")},
		{Func("LENGTH", Lit(dataset.Str("hello"))), dataset.Int(5)},
		{Func("TRIM", Lit(dataset.Str("  x "))), dataset.Str("x")},
		{Func("CONCAT", Lit(dataset.Str("a")), Lit(dataset.Int(1))), dataset.Str("a1")},
		{Func("REPLACE", Lit(dataset.Str("aba")), Lit(dataset.Str("a")), Lit(dataset.Str("c"))), dataset.Str("cbc")},
		{Func("SUBSTR", Lit(dataset.Str("hello")), Lit(dataset.Int(2)), Lit(dataset.Int(3))), dataset.Str("ell")},
		{Func("SUBSTR", Lit(dataset.Str("hello")), Lit(dataset.Int(4))), dataset.Str("lo")},
		{Func("COALESCE", Lit(dataset.Null), Lit(dataset.Int(7))), dataset.Int(7)},
		{Func("NULLIF", Lit(dataset.Int(3)), Lit(dataset.Int(3))), dataset.Null},
		{Func("NULLIF", Lit(dataset.Int(3)), Lit(dataset.Int(4))), dataset.Int(3)},
		{Func("IF", Lit(dataset.Bool(true)), Lit(dataset.Int(1)), Lit(dataset.Int(2))), dataset.Int(1)},
		{Func("SIGN", Lit(dataset.Int(-9))), dataset.Int(-1)},
		{Func("CAST", Lit(dataset.Str("42")), Lit(dataset.Str("int"))), dataset.Null}, // string "42" won't coerce to int directly
		{Func("CAST", Lit(dataset.Int(42)), Lit(dataset.Str("string"))), dataset.Str("42")},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if c.want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%s = %v, want null", c.e, got)
			}
			continue
		}
		if !dataset.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestDateFunctions(t *testing.T) {
	d, _ := dataset.ParseTime("2021-07-15")
	env := MapEnv{"d": dataset.Time(d)}
	if got := mustEval(t, Func("YEAR", Column("d")), env); got.I != 2021 {
		t.Errorf("YEAR = %v", got)
	}
	if got := mustEval(t, Func("MONTH", Column("d")), env); got.I != 7 {
		t.Errorf("MONTH = %v", got)
	}
	if got := mustEval(t, Func("DAY", Column("d")), env); got.I != 15 {
		t.Errorf("DAY = %v", got)
	}
	// String dates coerce.
	if got := mustEval(t, Func("YEAR", Lit(dataset.Str("1999-12-31"))), nil); got.I != 1999 {
		t.Errorf("YEAR(string) = %v", got)
	}
}

func TestUnknownFunctionAndColumn(t *testing.T) {
	if _, err := Func("NOPE", Lit(dataset.Int(1))).Eval(nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := Column("missing").Eval(MapEnv{}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpGt, Column("a"), Lit(dataset.Int(1))),
		&In{Operand: Column("b"), List: []Expr{Column("c")}},
	)
	cols := e.Columns(nil)
	want := "a,b,c"
	if got := strings.Join(cols, ","); got != want {
		t.Errorf("Columns = %s, want %s", got, want)
	}
}

func TestStringRendering(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpGe, Column("age"), Lit(dataset.Int(21))),
		Bin(OpLike, Column("name"), Lit(dataset.Str("a%"))),
	)
	want := "((age >= 21) AND (name LIKE 'a%'))"
	if got := e.String(); got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
	quoted := Column("odd name")
	if got := quoted.String(); got != `"odd name"` {
		t.Errorf("quoted column = %s", got)
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// Property: every string matches itself and the universal pattern.
	f := func(raw string) bool {
		s := strings.ToLower(strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, raw))
		return likeMatch(s, s) && likeMatch(s, "%")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArithCommutativityProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := dataset.Int(int64(a)), dataset.Int(int64(b))
		sum1, err1 := Bin(OpAdd, Lit(x), Lit(y)).Eval(nil)
		sum2, err2 := Bin(OpAdd, Lit(y), Lit(x)).Eval(nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return dataset.Equal(sum1, sum2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalBool(t *testing.T) {
	if ok, err := EvalBool(Lit(dataset.Null), nil); err != nil || ok {
		t.Error("null predicate should reject")
	}
	if ok, err := EvalBool(Lit(dataset.Bool(true)), nil); err != nil || !ok {
		t.Error("true predicate should accept")
	}
	if ok, err := EvalBool(Lit(dataset.Int(0)), nil); err != nil || ok {
		t.Error("0 predicate should reject")
	}
}
