// Package session implements §2.4's collaboration model: sessions own a
// skill DAG and a context, hold a session-level lock that fails concurrent
// requests (the second request loses, with a message), track members with
// access levels, and save artifacts by slicing the session DAG down to the
// steps that produced them. It also provides the Home Screen folder tree
// and Insights Boards.
//
// The §2.4 lock serializes requests *within* one session; distinct sessions
// on a shared platform execute truly in parallel — each request's DAG
// branches run on the executor's worker pool, and the platform-wide sub-DAG
// cache deduplicates identical computations across sessions.
package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datachat/internal/artifact"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/plan"
	"datachat/internal/recipe"
	"datachat/internal/skills"
)

// ErrBusy is returned when a request arrives while another is executing —
// the paper's explicit design choice over merging concurrent edits.
var ErrBusy = errors.New("session: another execution is already running; retry when it finishes")

// Session is one user workspace: a context, a DAG, and collaborators.
type Session struct {
	// Name identifies the session.
	Name string
	// Owner is the creating user.
	Owner string

	reg      *skills.Registry
	executor *dag.Executor
	graph    *dag.Graph

	mu      sync.Mutex
	running bool
	members map[string]artifact.Access
	history []HistoryEntry

	// busyRetry optionally retries lock acquisition on ErrBusy with
	// backoff. The zero policy keeps the paper's fail-fast semantics:
	// the second concurrent request loses immediately.
	busyRetry   faults.RetryPolicy
	busyClock   faults.Clock
	busyRetries int
}

// HistoryEntry records one executed request, so every member sees the same
// synchronized view of the work (§2.4: actions are tracked in the platform,
// not the client).
type HistoryEntry struct {
	User  string
	Node  dag.NodeID
	GEL   string
	When  time.Time
	Error string
}

// New creates a session owned by owner.
func New(name, owner string, reg *skills.Registry, ctx *skills.Context) *Session {
	return &Session{
		Name:     name,
		Owner:    owner,
		reg:      reg,
		executor: dag.NewExecutor(reg, ctx),
		graph:    dag.NewGraph(),
		members:  map[string]artifact.Access{owner: artifact.OwnerAccess},
	}
}

// Executor exposes the session's executor (benchmarks and the console use
// its stats and cache controls).
func (s *Session) Executor() *dag.Executor { return s.executor }

// Graph exposes the session DAG.
func (s *Session) Graph() *dag.Graph { return s.graph }

// Context returns the session's execution context.
func (s *Session) Context() *skills.Context { return s.executor.Ctx }

// Share grants a user access to the session.
func (s *Session) Share(byUser, withUser string, access artifact.Access) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.members[byUser] < artifact.OwnerAccess {
		return fmt.Errorf("session: %s cannot share %q", byUser, s.Name)
	}
	if access != artifact.ViewAccess && access != artifact.EditAccess {
		return fmt.Errorf("session: can only grant view or edit")
	}
	s.members[withUser] = access
	return nil
}

// Revoke removes a member.
func (s *Session) Revoke(byUser, fromUser string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.members[byUser] < artifact.OwnerAccess {
		return fmt.Errorf("session: %s cannot revoke members", byUser)
	}
	if s.members[fromUser] >= artifact.OwnerAccess {
		return fmt.Errorf("session: cannot revoke the owner")
	}
	delete(s.members, fromUser)
	return nil
}

// AccessOf returns a user's access level.
func (s *Session) AccessOf(user string) artifact.Access {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.members[user]
}

// Members lists session members, sorted.
func (s *Session) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SetBusyRetry opts the session into bounded retry-with-backoff on
// lock contention: a request that finds another one running retries up to
// the policy's attempt budget instead of failing immediately. The zero
// policy (the default) preserves the paper's §2.4 fail-fast semantics.
// clock may be nil (wall clock); tests pass a virtual clock.
func (s *Session) SetBusyRetry(p faults.RetryPolicy, clock faults.Clock) {
	s.mu.Lock()
	s.busyRetry = p
	s.busyClock = clock
	s.mu.Unlock()
}

// BusyRetries reports how many times requests re-attempted the session lock
// after finding it held.
func (s *Session) BusyRetries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busyRetries
}

// acquire takes the session lock for user, or fails with ErrBusy (retryable)
// or a permission error (not).
func (s *Session) acquire(user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.members[user] < artifact.EditAccess {
		return fmt.Errorf("session: %s cannot run requests in %q", user, s.Name)
	}
	if s.running {
		return ErrBusy
	}
	s.running = true
	return nil
}

// lockForUser acquires the §2.4 session lock for user, applying the
// session's busy-retry policy (the zero policy fails fast with ErrBusy).
// Every operation that executes on the session's executor — requests,
// artifact saves, recipe replays — funnels through here, so executor state
// is never touched by two operations at once. Callers must pair it with
// unlock.
func (s *Session) lockForUser(ctx context.Context, user string) error {
	return s.lockWithTuning(ctx, user, nil)
}

// lockWithTuning is lockForUser with an optional per-call busy-retry
// override: a tuning whose BusyRetry is enabled replaces the session's
// standing policy for this acquisition only. Background scheduled runs use
// a small bounded policy here so they yield the §2.4 lock to interactive
// requests instead of camping on it.
func (s *Session) lockWithTuning(ctx context.Context, user string, tune *Tuning) error {
	s.mu.Lock()
	pol, clock := s.busyRetry, s.busyClock
	s.mu.Unlock()
	if tune != nil && tune.BusyRetry.Enabled() {
		pol = tune.BusyRetry
		if tune.Clock != nil {
			clock = tune.Clock
		}
	}
	_, stats, err := faults.Do(ctx, clock, pol, time.Time{},
		func(err error) bool { return errors.Is(err, ErrBusy) },
		func() (struct{}, error) { return struct{}{}, s.acquire(user) })
	if stats.Attempts > 1 {
		s.mu.Lock()
		s.busyRetries += stats.Attempts - 1
		s.mu.Unlock()
	}
	return err
}

func (s *Session) unlock() {
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
}

// Request executes one skill invocation for user. It enforces membership
// (edit access) and the session-level lock: if another request is running,
// it fails immediately with ErrBusy rather than queueing, because a request
// composed against a stale view may no longer make sense (§2.4) — unless
// SetBusyRetry opted the session into a bounded backoff on contention.
func (s *Session) Request(user string, inv skills.Invocation) (*skills.Result, dag.NodeID, error) {
	res, ids, err := s.RequestProgram(user, inv)
	if len(ids) == 0 {
		return nil, -1, err
	}
	return res, ids[0], err
}

// Tuning carries per-request execution options. The network layer builds one
// per HTTP request (deadline header, retry policy, clock) and the session
// applies it to its executor under the session lock — the §2.4 lock already
// guarantees one execution at a time, so the options swap cannot race with a
// concurrent Run on the same executor. Zero-valued fields leave the
// executor's standing configuration untouched.
type Tuning struct {
	// Deadline bounds the request's total (virtual) execution time;
	// 0 keeps the executor's configured deadline.
	Deadline time.Duration
	// Retry overrides the transient-failure retry policy when enabled.
	Retry faults.RetryPolicy
	// Clock drives backoff and deadline checks when non-nil.
	Clock faults.Clock
	// Stream, when non-nil, receives the request's target result chunk by
	// chunk as the engine produces it (see dag.ExecOptions.Stream);
	// StreamChunkRows bounds rows per chunk.
	Stream          func(chunk *dataset.Table) error
	StreamChunkRows int
	// StreamParallelism, StreamMaxBufferedRows, and StreamSpillDir tune the
	// morsel pipeline inside the request's streamed target fragment (see
	// dag.ExecOptions). Zero values keep the executor's standing settings.
	StreamParallelism     int
	StreamMaxBufferedRows int
	StreamSpillDir        string
	// StreamStats, when non-nil, receives this request's execution-stats
	// delta after the run (streamed chunk/row counts, spill activity). The
	// PeakBufferedRows field is the executor's buffered-row high-water mark
	// as of this request, not a per-request delta.
	StreamStats func(dag.Stats)
	// CostBudgetBytes caps this request's estimated cloud scan bytes: past
	// it the planner substitutes block samples for the most expensive scans
	// and the result comes back annotated Degraded (never cached). 0 keeps
	// the executor's standing budget.
	CostBudgetBytes int64
	// PlanCost, when non-nil, receives the compiled plan's cost estimate
	// after the run (estimation must be enabled on the executor; the
	// callback is skipped when no estimate was produced).
	PlanCost func(plan.PlanCost)
	// BusyRetry, when enabled, overrides the session's standing busy-retry
	// policy for this call's §2.4 lock acquisition only; backoff runs on
	// Clock when set. Background scheduled refreshes use a small bounded
	// policy so a held lock makes them skip, not queue indefinitely.
	BusyRetry faults.RetryPolicy
}

// applyTuningLocked applies tune to the executor and returns a restore
// function that fires the post-run callbacks (StreamStats delta, PlanCost)
// and reinstates the standing options. Both this call and the returned
// function must run while the session's running flag is held: the §2.4
// lock guarantees no other execution reads the options concurrently.
func (s *Session) applyTuningLocked(tune *Tuning) func() {
	if tune == nil {
		return func() {}
	}
	saved := s.executor.Options
	if tune.Deadline > 0 {
		s.executor.Options.Deadline = tune.Deadline
	}
	if tune.Retry.Enabled() {
		s.executor.Options.Retry = tune.Retry
	}
	if tune.Clock != nil {
		s.executor.Options.Clock = tune.Clock
	}
	if tune.Stream != nil {
		s.executor.Options.Stream = tune.Stream
		s.executor.Options.StreamChunkRows = tune.StreamChunkRows
	}
	if tune.StreamParallelism != 0 {
		s.executor.Options.StreamParallelism = tune.StreamParallelism
	}
	if tune.StreamMaxBufferedRows > 0 {
		s.executor.Options.StreamMaxBufferedRows = tune.StreamMaxBufferedRows
	}
	if tune.StreamSpillDir != "" {
		s.executor.Options.StreamSpillDir = tune.StreamSpillDir
	}
	if tune.CostBudgetBytes > 0 {
		s.executor.Options.CostBudgetBytes = tune.CostBudgetBytes
	}
	// The session lock serializes executions, so a before/after snapshot of
	// the shared counters isolates this request's delta.
	var before dag.Stats
	if tune.StreamStats != nil {
		before = s.executor.Stats()
	}
	return func() {
		if tune.StreamStats != nil {
			after := s.executor.Stats()
			tune.StreamStats(dag.Stats{
				StreamedChunks:   after.StreamedChunks - before.StreamedChunks,
				StreamedRows:     after.StreamedRows - before.StreamedRows,
				SpillRuns:        after.SpillRuns - before.SpillRuns,
				SpilledRows:      after.SpilledRows - before.SpilledRows,
				SpilledBytes:     after.SpilledBytes - before.SpilledBytes,
				PeakBufferedRows: after.PeakBufferedRows,
				StreamWorkers:    after.StreamWorkers,
			})
		}
		if tune.PlanCost != nil {
			if pc := s.executor.LastPlanCost(); pc != nil {
				tune.PlanCost(*pc)
			}
		}
		s.executor.Options = saved
	}
}

// RequestProgram executes a multi-step program under one acquisition of the
// session lock: all steps are appended to the session DAG, the final step is
// planned and run as one unit (earlier steps execute as its ancestors), and
// every step is recorded in the history. This is the shared entry point the
// front ends funnel through — a GEL program, a pyapi script, and a replayed
// recipe describing the same pipeline lower into identical logical plans and
// therefore share sub-DAG cache entries.
func (s *Session) RequestProgram(user string, invs ...skills.Invocation) (*skills.Result, []dag.NodeID, error) {
	return s.RequestProgramCtx(context.Background(), user, nil, invs...)
}

// RequestProgramCtx is RequestProgram with an explicit context and optional
// per-request tuning. Cancelling ctx aborts busy-retry backoffs on the
// session lock and the execution's own retry backoffs; tune (may be nil)
// overrides the executor's deadline, retry policy, and clock for this
// request only, restored before the lock is released.
func (s *Session) RequestProgramCtx(ctx context.Context, user string, tune *Tuning, invs ...skills.Invocation) (*skills.Result, []dag.NodeID, error) {
	if len(invs) == 0 {
		return nil, nil, fmt.Errorf("session: empty program")
	}
	if err := s.lockWithTuning(ctx, user, tune); err != nil {
		return nil, nil, err
	}
	defer s.unlock()
	restore := s.applyTuningLocked(tune)
	defer restore()

	ids := make([]dag.NodeID, len(invs))
	entries := make([]HistoryEntry, len(invs))
	for i, inv := range invs {
		ids[i] = s.graph.Add(inv)
		gelLine, gerr := s.reg.RenderGEL(inv)
		if gerr != nil {
			gelLine = inv.Skill
		}
		entries[i] = HistoryEntry{User: user, Node: ids[i], GEL: gelLine, When: time.Now()}
	}
	res, err := s.executor.RunContext(ctx, s.graph, ids[len(ids)-1])
	if err != nil {
		entries[len(entries)-1].Error = err.Error()
	}
	s.mu.Lock()
	s.history = append(s.history, entries...)
	s.mu.Unlock()
	if err != nil {
		return nil, ids, err
	}
	return res, ids, nil
}

// Explain compiles — without executing — the plan for the node producing the
// named dataset ("" means the session's latest step) and returns the EXPLAIN
// report.
func (s *Session) Explain(output string) (*plan.Explain, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.graph.Last()
	if output != "" {
		id, ok := s.graph.ProducerOf(output)
		if !ok {
			return nil, fmt.Errorf("session: no step in %q produces %q", s.Name, output)
		}
		target = id
	}
	if target < 0 {
		return nil, fmt.Errorf("session: %q has no steps to explain", s.Name)
	}
	return s.executor.Explain(s.graph, target)
}

// History returns the synchronized request log.
func (s *Session) History() []HistoryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HistoryEntry{}, s.history...)
}

// ReplayRecipe re-executes a recipe on the session's executor under the
// §2.4 lock (invalidate drops the sub-DAG cache first so changed source
// data is re-read). Funneling replays through the lock keeps them from
// racing concurrent requests on the same executor.
func (s *Session) ReplayRecipe(ctx context.Context, user string, r *recipe.Recipe, invalidate bool) (*skills.Result, error) {
	if err := s.lockForUser(ctx, user); err != nil {
		return nil, err
	}
	defer s.unlock()
	return r.Replay(s.executor, invalidate)
}

// ReplayRecipePlanned is the scheduler's incremental-refresh entry point.
// Under ONE acquisition of the §2.4 lock (honoring tune.BusyRetry, so a
// busy session makes a background run skip rather than queue) it first
// EXPLAINs the recipe's plan — read-only, zero execution; the per-node
// Cached flags show which sub-DAGs the coming replay will serve from cache
// — and then replays WITHOUT invalidation: sources whose content
// fingerprints are unchanged keep their cache keys, so their sub-DAGs
// cache-hit with zero cloud scans, and only changed inputs recompute. It
// returns the result, the pre-run explain (for fingerprint diffing against
// the previous run), and this call's execution-stats delta.
func (s *Session) ReplayRecipePlanned(ctx context.Context, user string, r *recipe.Recipe, tune *Tuning) (*skills.Result, *plan.Explain, dag.Stats, error) {
	if err := s.lockWithTuning(ctx, user, tune); err != nil {
		return nil, nil, dag.Stats{}, err
	}
	defer s.unlock()
	restore := s.applyTuningLocked(tune)
	defer restore()

	g := r.Graph()
	last := g.Last()
	if last < 0 {
		return nil, nil, dag.Stats{}, fmt.Errorf("session: recipe %q has no steps", r.Name)
	}
	exp, err := s.executor.Explain(g, last)
	if err != nil {
		return nil, nil, dag.Stats{}, fmt.Errorf("session: planning recipe %q: %w", r.Name, err)
	}
	before := s.executor.Stats()
	res, err := s.executor.RunContext(ctx, g, last)
	delta := execStatsDelta(before, s.executor.Stats())
	if err != nil {
		return nil, exp, delta, err
	}
	return res, exp, delta, nil
}

// execStatsDelta subtracts two executor snapshots field by field; the
// high-water mark and gauge fields keep their "after" values (they are not
// sums).
func execStatsDelta(before, after dag.Stats) dag.Stats {
	return dag.Stats{
		TasksRun:          after.TasksRun - before.TasksRun,
		SQLTasks:          after.SQLTasks - before.SQLTasks,
		DirectTasks:       after.DirectTasks - before.DirectTasks,
		NodesConsolidated: after.NodesConsolidated - before.NodesConsolidated,
		QueryBlocks:       after.QueryBlocks - before.QueryBlocks,
		RowsMaterialized:  after.RowsMaterialized - before.RowsMaterialized,
		CacheHits:         after.CacheHits - before.CacheHits,
		CacheMisses:       after.CacheMisses - before.CacheMisses,
		Retries:           after.Retries - before.Retries,
		PermanentFailures: after.PermanentFailures - before.PermanentFailures,
		Degraded:          after.Degraded - before.Degraded,
		StreamedChunks:    after.StreamedChunks - before.StreamedChunks,
		StreamedRows:      after.StreamedRows - before.StreamedRows,
		SpillRuns:         after.SpillRuns - before.SpillRuns,
		SpilledRows:       after.SpilledRows - before.SpilledRows,
		SpilledBytes:      after.SpilledBytes - before.SpilledBytes,
		PeakBufferedRows:  after.PeakBufferedRows,
		StreamWorkers:     after.StreamWorkers,
	}
}

// SaveArtifact slices the session DAG to the steps node depends on and
// persists the result as an artifact carrying that recipe (§2.3). The
// producing step re-executes under the §2.4 lock (usually a pure cache
// republish).
func (s *Session) SaveArtifact(store *artifact.Store, user, name string, node dag.NodeID, typ artifact.Type) (*artifact.Artifact, error) {
	if s.AccessOf(user) < artifact.EditAccess {
		return nil, fmt.Errorf("session: %s cannot save artifacts from %q", user, s.Name)
	}
	if err := s.lockForUser(context.Background(), user); err != nil {
		return nil, err
	}
	defer s.unlock()
	return s.saveLocked(store, user, name, node, typ)
}

// SaveArtifactOutput saves the step producing the named dataset, or the
// session's latest step when output is "". The anchor node is resolved after
// the §2.4 lock is acquired, so a concurrent request appending steps cannot
// move it between resolution and the save — remote callers go through here
// instead of reading the graph themselves.
func (s *Session) SaveArtifactOutput(store *artifact.Store, user, name, output string, typ artifact.Type) (*artifact.Artifact, error) {
	if s.AccessOf(user) < artifact.EditAccess {
		return nil, fmt.Errorf("session: %s cannot save artifacts from %q", user, s.Name)
	}
	if err := s.lockForUser(context.Background(), user); err != nil {
		return nil, err
	}
	defer s.unlock()
	node := s.graph.Last()
	if output != "" {
		id, ok := s.graph.ProducerOf(output)
		if !ok {
			return nil, fmt.Errorf("session: no step in %q produces %q", s.Name, output)
		}
		node = id
	}
	if node < 0 {
		return nil, fmt.Errorf("session: %q has no steps to save", s.Name)
	}
	return s.saveLocked(store, user, name, node, typ)
}

// saveLocked does the slice-replay-persist work; callers hold the §2.4 lock.
func (s *Session) saveLocked(store *artifact.Store, user, name string, node dag.NodeID, typ artifact.Type) (*artifact.Artifact, error) {
	sliced, _, err := dag.Slice(s.graph, node)
	if err != nil {
		return nil, err
	}
	rec, err := recipe.FromGraph(name, sliced)
	if err != nil {
		return nil, err
	}
	res, err := s.executor.Run(s.graph, node)
	if err != nil {
		return nil, err
	}
	a := &artifact.Artifact{
		Name:         name,
		Type:         typ,
		Owner:        user,
		Recipe:       rec,
		Table:        res.Table,
		Degraded:     res.Degraded,
		DegradedNote: res.DegradedNote,
	}
	if len(res.Charts) > 0 {
		a.Chart = res.Charts[0]
		if typ == "" {
			a.Type = artifact.TypeChart
		}
	}
	if res.Model != nil {
		a.ModelName = res.Model.Kind()
		a.Explanation = res.Model.Explain()
		if typ == "" {
			a.Type = artifact.TypeModel
		}
	}
	if a.Type == "" {
		a.Type = artifact.TypeTable
	}
	if res.Message != "" {
		a.Explanation = res.Message
	}
	if err := store.Save(a); err != nil {
		return nil, err
	}
	return a, nil
}

// Folder is a Home Screen container: it holds artifact names and child
// folders, and is itself manageable like an artifact (§2.4).
type Folder struct {
	Name     string
	Items    []string
	Children map[string]*Folder
}

// HomeScreen is the file-manager-like organizer of §2.4.
type HomeScreen struct {
	mu   sync.Mutex
	root *Folder
}

// NewHomeScreen returns an empty home screen.
func NewHomeScreen() *HomeScreen {
	return &HomeScreen{root: &Folder{Name: "/", Children: map[string]*Folder{}}}
}

// MkDir creates a folder at the /-separated path.
func (h *HomeScreen) MkDir(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := h.ensure(path)
	return err
}

func (h *HomeScreen) ensure(path string) (*Folder, error) {
	cur := h.root
	for _, part := range splitPath(path) {
		child, ok := cur.Children[part]
		if !ok {
			child = &Folder{Name: part, Children: map[string]*Folder{}}
			cur.Children[part] = child
		}
		cur = child
	}
	return cur, nil
}

func (h *HomeScreen) lookup(path string) (*Folder, error) {
	cur := h.root
	for _, part := range splitPath(path) {
		child, ok := cur.Children[part]
		if !ok {
			return nil, fmt.Errorf("session: no folder %q", path)
		}
		cur = child
	}
	return cur, nil
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// Place puts an artifact name into a folder (creating the folder).
func (h *HomeScreen) Place(path, artifactName string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	folder, err := h.ensure(path)
	if err != nil {
		return err
	}
	for _, existing := range folder.Items {
		if existing == artifactName {
			return nil
		}
	}
	folder.Items = append(folder.Items, artifactName)
	return nil
}

// ListFolder returns a folder's items and child folder names, sorted.
func (h *HomeScreen) ListFolder(path string) (items, children []string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	folder, err := h.lookup(path)
	if err != nil {
		return nil, nil, err
	}
	items = append([]string{}, folder.Items...)
	sort.Strings(items)
	for name := range folder.Children {
		children = append(children, name)
	}
	sort.Strings(children)
	return items, children, nil
}

// Remove takes an artifact out of a folder.
func (h *HomeScreen) Remove(path, artifactName string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	folder, err := h.lookup(path)
	if err != nil {
		return err
	}
	for i, existing := range folder.Items {
		if existing == artifactName {
			folder.Items = append(folder.Items[:i], folder.Items[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("session: %q is not in folder %q", artifactName, path)
}

// BoardItem is one artifact placed on an Insights Board, with free-form
// layout (§2.4: IBs allow arbitrary positioning, unlike dashboards).
type BoardItem struct {
	Artifact string
	X, Y     int
	W, H     int
	Caption  string
}

// TextBox is a free-floating annotation on a board.
type TextBox struct {
	Text string
	X, Y int
}

// InsightsBoard is a presentation surface of unrelated artifacts — modeled
// as a poster, not an operational dashboard.
type InsightsBoard struct {
	Name string

	mu    sync.Mutex
	items []BoardItem
	texts []TextBox
}

// NewInsightsBoard creates an empty board.
func NewInsightsBoard(name string) *InsightsBoard {
	return &InsightsBoard{Name: name}
}

// Pin places an artifact on the board.
func (b *InsightsBoard) Pin(item BoardItem) error {
	if item.Artifact == "" {
		return fmt.Errorf("session: board item needs an artifact name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.items = append(b.items, item)
	return nil
}

// AddText places a text box on the board.
func (b *InsightsBoard) AddText(t TextBox) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.texts = append(b.texts, t)
}

// Items returns pinned items in placement order.
func (b *InsightsBoard) Items() []BoardItem {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BoardItem{}, b.items...)
}

// Texts returns the board's text boxes.
func (b *InsightsBoard) Texts() []TextBox {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]TextBox{}, b.texts...)
}

// Unpin removes the first placement of an artifact from the board.
func (b *InsightsBoard) Unpin(artifactName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, item := range b.items {
		if item.Artifact == artifactName {
			b.items = append(b.items[:i], b.items[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("session: %q is not on board %q", artifactName, b.Name)
}
