package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/sqlengine"
)

// The stream experiment measures what morsel-driven execution buys: time to
// first output chunk should be decoupled from table size (it reflects one
// morsel of work, not the whole scan), and the engine's peak buffered rows
// should stay near-constant as input grows for streaming shapes (filters
// and projections buffer nothing; a group-by buffers only its groups).
// Buffered execution of the same statement is the baseline.

// StreamCase is one (query shape, scale) cell.
type StreamCase struct {
	Query string `json:"query"` // "filter" or "groupby"
	Scale int    `json:"scale"` // multiplier over the base row count
	Rows  int    `json:"rows"`
	// FirstChunkMs is the latency until the first chunk of rows exists —
	// what a remote client waits before seeing output.
	FirstChunkMs float64 `json:"first_chunk_ms"`
	// DrainMs is the wall time to pull the whole stream.
	DrainMs float64 `json:"drain_ms"`
	// BufferedMs is the wall time of the buffered (materialize-everything)
	// execution of the identical statement.
	BufferedMs float64 `json:"buffered_ms"`
	// PeakBufferedRows is the engine's maximum rows resident in pipeline
	// breakers during the drain — the memory-budget figure.
	PeakBufferedRows int `json:"peak_buffered_rows"`
	RowsOut          int `json:"rows_out"`
}

// StreamResult is the full grid for BENCH_stream.json.
type StreamResult struct {
	BaseRows  int          `json:"base_rows"`
	ChunkRows int          `json:"chunk_rows"`
	Cases     []StreamCase `json:"cases"`
}

// streamTable builds an n-row fact table without going through CSV, so the
// 100× scale stays cheap to construct.
func streamTable(n int) *dataset.Table {
	ids := make([]int64, n)
	ks := make([]int64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		ks[i] = int64(i % 13)
		vs[i] = float64(i%1000) / 10
	}
	return dataset.MustNewTable("facts",
		dataset.IntColumn("id", ids, nil),
		dataset.IntColumn("k", ks, nil),
		dataset.FloatColumn("v", vs, nil),
	)
}

// Stream runs the grid: each query shape at 1×, 10×, and 100× of baseRows.
func Stream(baseRows int) (*StreamResult, error) {
	if baseRows <= 0 {
		baseRows = 20_000
	}
	queries := []struct{ name, sql string }{
		{"filter", "SELECT id, v FROM facts WHERE v > 25.0 AND k % 3 = 1"},
		{"groupby", "SELECT k, SUM(v), COUNT(*) FROM facts GROUP BY k"},
	}
	res := &StreamResult{BaseRows: baseRows, ChunkRows: sqlengine.DefaultChunkRows}
	for _, scale := range []int{1, 10, 100} {
		n := baseRows * scale
		catalog := sqlengine.NewMapCatalog(map[string]*dataset.Table{"facts": streamTable(n)})
		for _, q := range queries {
			stmt, err := sqlengine.Parse(q.sql)
			if err != nil {
				return nil, fmt.Errorf("stream: parsing %s: %w", q.name, err)
			}
			start := time.Now()
			rs, err := sqlengine.ExecStreamStmt(catalog, stmt, sqlengine.StreamOptions{})
			if err != nil {
				return nil, fmt.Errorf("stream: %s at %dx: %w", q.name, scale, err)
			}
			first, err := rs.Next()
			if err != nil {
				return nil, fmt.Errorf("stream: %s at %dx first chunk: %w", q.name, scale, err)
			}
			firstMs := float64(time.Since(start).Microseconds()) / 1000
			rows := 0
			if first != nil {
				rows = first.NumRows()
			}
			for {
				chunk, err := rs.Next()
				if err != nil {
					return nil, fmt.Errorf("stream: %s at %dx drain: %w", q.name, scale, err)
				}
				if chunk == nil {
					break
				}
				rows += chunk.NumRows()
			}
			drainMs := float64(time.Since(start).Microseconds()) / 1000

			start = time.Now()
			buf, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{})
			if err != nil {
				return nil, fmt.Errorf("stream: %s at %dx buffered: %w", q.name, scale, err)
			}
			bufMs := float64(time.Since(start).Microseconds()) / 1000
			if buf.NumRows() != rows {
				return nil, fmt.Errorf("stream: %s at %dx: streamed %d rows, buffered %d",
					q.name, scale, rows, buf.NumRows())
			}
			res.Cases = append(res.Cases, StreamCase{
				Query: q.name, Scale: scale, Rows: n,
				FirstChunkMs: firstMs, DrainMs: drainMs, BufferedMs: bufMs,
				PeakBufferedRows: rs.PeakBufferedRows(), RowsOut: rows,
			})
		}
	}
	return res, nil
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *StreamResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Morsel streaming: first-chunk latency and engine peak memory vs row count (chunk=%d)\n", r.ChunkRows)
	b.WriteString("  query    scale  rows      first_chunk(ms)  drain(ms)  buffered(ms)  peak_buffered_rows\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-8s %-6s %-9d %-16.3f %-10.2f %-13.2f %d\n",
			c.Query, fmt.Sprintf("%dx", c.Scale), c.Rows, c.FirstChunkMs, c.DrainMs, c.BufferedMs, c.PeakBufferedRows)
	}
	return b.String()
}

// JSON renders the result for BENCH_stream.json.
func (r *StreamResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
