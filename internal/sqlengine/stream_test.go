package sqlengine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"datachat/internal/dataset"
)

// runStreamAndReference pins the morsel pipeline to the row-at-a-time
// reference: the drained stream must equal the reference result, or both
// paths must fail.
func runStreamAndReference(t *testing.T, catalog MapCatalog, query string, opts StreamOptions) {
	t.Helper()
	stmt, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	var streamOut *dataset.Table
	rs, streamErr := ExecStreamStmt(catalog, stmt, opts)
	if streamErr == nil {
		streamOut, streamErr = rs.ReadAll()
	}
	refOut, refErr := ExecStmtOptions(catalog, stmt, Options{DisableVectorized: true})
	if (streamErr == nil) != (refErr == nil) {
		t.Fatalf("error divergence for %q:\n  stream:    %v\n  reference: %v", query, streamErr, refErr)
	}
	if streamErr != nil {
		return
	}
	if !streamOut.Equal(refOut) {
		t.Fatalf("result divergence for %q (fellBack=%v):\nstream:\n%s\nreference:\n%s",
			query, rs.FellBack(), streamOut, refOut)
	}
}

// TestDifferentialStreamVsReference runs every corpus query through the
// streaming pipeline under several chunk sizes (including a tiny one that
// forces many chunk boundaries) and both kernel settings.
func TestDifferentialStreamVsReference(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	variants := []StreamOptions{
		{},
		{ChunkRows: 7},
		{ChunkRows: 32, Options: Options{DisableVectorized: true}},
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			catalog := NewMapCatalog(CorpusTables(rng, 150+rng.Intn(200), 40+rng.Intn(40)))
			queries := CorpusQueries(rng, 40)
			for _, q := range queries {
				for _, opts := range variants {
					runStreamAndReference(t, catalog, q, opts)
				}
			}
		})
	}
}

// TestDifferentialStreamMidFallback forces the mid-stream switch to
// materialized execution after one chunk and checks the spliced row sequence
// still equals the reference result for every corpus query.
func TestDifferentialStreamMidFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	catalog := NewMapCatalog(CorpusTables(rng, 200, 50))
	opts := StreamOptions{ChunkRows: 13, ForceFallbackAfterChunks: 1}
	for _, q := range CorpusQueries(rng, 40) {
		runStreamAndReference(t, catalog, q, opts)
	}
}

// TestStreamEmptyTables pins the zero-row edges: the stream must still emit
// a schema-bearing chunk and match the reference.
func TestStreamEmptyTables(t *testing.T) {
	empty := dataset.MustNewTable("t1",
		dataset.IntColumn("i", nil, nil),
		dataset.FloatColumn("f", nil, nil),
		dataset.StringColumn("s", nil, nil),
		dataset.BoolColumn("b", nil, nil),
		dataset.TimeColumn("ts", nil, nil),
	)
	t2 := dataset.MustNewTable("t2",
		dataset.IntColumn("k", []int64{1, 2}, nil),
		dataset.StringColumn("s2", []string{"a", "b"}, nil),
		dataset.FloatColumn("v", []float64{1, 2}, nil),
	)
	catalog := NewMapCatalog(map[string]*dataset.Table{"t1": empty, "t2": t2})
	for _, q := range []string{
		"SELECT * FROM t1 WHERE i > 0",
		"SELECT i, f FROM t1 ORDER BY i",
		"SELECT s, COUNT(*) AS c FROM t1 GROUP BY s",
		"SELECT t1.i, t2.v FROM t1 JOIN t2 ON t1.i = t2.k",
		"SELECT t1.i, t2.v FROM t1 LEFT JOIN t2 ON t1.i = t2.k",
		"SELECT COUNT(*) AS c FROM t1",
		"SELECT DISTINCT s FROM t1",
	} {
		runStreamAndReference(t, catalog, q, StreamOptions{ChunkRows: 4})
	}
}

// TestStreamFirstChunkIsIncremental checks the defining morsel property: a
// streaming filter/projection emits its first chunk after scanning only a
// prefix of the input, with no pipeline-breaker buffering at all.
func TestStreamFirstChunkIsIncremental(t *testing.T) {
	const rows = 50_000
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i)
	}
	catalog := NewMapCatalog(map[string]*dataset.Table{
		"big": dataset.MustNewTable("big", dataset.IntColumn("n", vals, nil)),
	})
	rs, err := ExecStream(catalog, "SELECT n FROM big WHERE n >= 10", StreamOptions{ChunkRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	chunk, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The first 100-row morsel loses its 10 filtered rows: the chunk arrives
	// after scanning only a 100-row prefix of the 50k-row input.
	if chunk == nil || chunk.NumRows() != 90 {
		t.Fatalf("first chunk = %v, want 90 rows", chunk)
	}
	if got := chunk.Columns()[0].Value(0); got != dataset.Int(10) {
		t.Fatalf("first row = %v, want 10", got)
	}
	if rs.PeakBufferedRows() != 0 {
		t.Fatalf("streaming filter buffered %d rows; want 0", rs.PeakBufferedRows())
	}
	if rs.FellBack() {
		t.Fatal("filter/projection should not fall back")
	}
}

// TestStreamBudgetError checks pipeline breakers fail loudly with the typed
// overflow error instead of buffering past the budget. ORDER BY needs spill
// disabled (it spills to disk by default now); join build sides cannot spill
// and must fail either way.
func TestStreamBudgetError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	catalog := NewMapCatalog(CorpusTables(rng, 500, 10))
	for _, q := range []string{
		"SELECT i FROM t1 ORDER BY i",
		"SELECT t1.i, t2.v FROM t1 JOIN t2 ON t1.i = t2.k",
	} {
		rs, err := ExecStream(catalog, q, StreamOptions{MaxBufferedRows: 5, DisableSpill: true})
		if err == nil {
			_, err = rs.ReadAll()
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%q: error = %v, want *BudgetError", q, err)
		}
		if be.Budget != 5 || be.Buffered <= be.Budget || be.Op == "" {
			t.Fatalf("%q: malformed budget error %+v", q, be)
		}
	}
}

// TestStreamGroupByConstantMemory checks the streaming group-by working set
// scales with group count, not input rows.
func TestStreamGroupByConstantMemory(t *testing.T) {
	const rows = 20_000
	keys := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range keys {
		keys[i] = int64(i % 13)
		vals[i] = float64(i)
	}
	catalog := NewMapCatalog(map[string]*dataset.Table{
		"m": dataset.MustNewTable("m",
			dataset.IntColumn("k", keys, nil),
			dataset.FloatColumn("v", vals, nil)),
	})
	rs, err := ExecStream(catalog, "SELECT k, SUM(v) AS s FROM m GROUP BY k ORDER BY k", StreamOptions{ChunkRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rs.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 13 {
		t.Fatalf("got %d groups, want 13", out.NumRows())
	}
	if peak := rs.PeakBufferedRows(); peak != 13 {
		t.Fatalf("peak buffered rows = %d, want 13 (one per group)", peak)
	}
}

// TestStreamMidFallbackContinuesSequence pins that the forced fallback
// resumes after the already-emitted prefix rather than restarting.
func TestStreamMidFallbackContinuesSequence(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	catalog := NewMapCatalog(map[string]*dataset.Table{
		"seq": dataset.MustNewTable("seq", dataset.IntColumn("n", vals, nil)),
	})
	rs, err := ExecStream(catalog, "SELECT n FROM seq", StreamOptions{ChunkRows: 100, ForceFallbackAfterChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	chunks := 0
	for {
		chunk, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		chunks++
		c := chunk.Columns()[0]
		for r := 0; r < c.Len(); r++ {
			if got := c.Value(r); got != dataset.Int(next) {
				t.Fatalf("row %d = %v after fallback, want %d", next, got, next)
			}
			next++
		}
	}
	if next != 1000 {
		t.Fatalf("drained %d rows, want 1000", next)
	}
	if !rs.FellBack() {
		t.Fatal("forced fallback did not trigger")
	}
}
