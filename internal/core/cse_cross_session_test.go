package core

import (
	"fmt"
	"sync"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/skills"
)

// cseProgram builds a pipeline with a structurally duplicated filter branch:
// session-wide CSE merges the two filters into one executed node aliased
// under both output names, and the concatenation consumes the survivor twice.
func cseProgram(f1, f2, out string) []skills.Invocation {
	return []skills.Invocation{
		skillInv("KeepRows", []string{"base"}, f1, map[string]any{"condition": "v > 5"}),
		skillInv("KeepRows", []string{"base"}, f2, map[string]any{"condition": "v > 5"}),
		skillInv("Concatenate", []string{f1, f2}, out, nil),
	}
}

// TestCrossSessionCSESharesCache pins the platform-wide payoff of plan-time
// CSE: after one session runs a pipeline with a duplicated branch (merged by
// CSE into a single executed node), a second session on the same platform
// running the same shape is served from the shared cache — and replacing the
// input dataset invalidates those entries through the content fingerprint,
// never serving stale bytes. The final phase hammers both sessions
// concurrently so -race checks the shared cache and stats registry.
func TestCrossSessionCSESharesCache(t *testing.T) {
	p := New()
	table := planTable()
	sa, err := p.CreateSession("a", "ann")
	if err != nil {
		t.Fatal(err)
	}
	sa.Context().PutDataset("base", table)
	sb, err := p.CreateSession("b", "ann")
	if err != nil {
		t.Fatal(err)
	}
	sb.Context().PutDataset("base", table)

	resA, err := p.Run("a", "ann", cseProgram("f1", "f2", "both")...)
	if err != nil {
		t.Fatal(err)
	}
	// CSE must have fired on the duplicated branch, and the alias
	// materialization must publish the merged output under both names.
	ex, err := p.Explain("a", "")
	if err != nil {
		t.Fatal(err)
	}
	cseFired := false
	for _, tr := range ex.Passes {
		if tr.Pass == "cse" && tr.Fired && tr.Dedup > 0 {
			cseFired = true
		}
	}
	if !cseFired {
		t.Fatal("cse pass did not merge the duplicated branch")
	}
	d1, err := sa.Context().Dataset("f1")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sa.Context().Dataset("f2")
	if err != nil {
		t.Fatalf("merged branch's alias was not materialized: %v", err)
	}
	if !d1.Equal(d2.WithName("f1")) {
		t.Fatal("alias dataset differs from survivor dataset")
	}

	// Session B runs the identical shape: its (post-CSE) plan keys match
	// session A's, so the shared cache must serve it.
	resB, err := p.Run("b", "ann", cseProgram("f1", "f2", "both")...)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Table.Equal(resA.Table) {
		t.Fatal("session B result differs from session A")
	}
	if hits := sb.Executor().Stats().CacheHits; hits == 0 {
		t.Error("session B had no cache hits; CSE'd plans are not sharing keys across sessions")
	}

	// Invalidation: replacing the input dataset changes its content
	// fingerprint, so the old entries no longer match and the rerun must
	// reflect the new data rather than the cached bytes.
	n := 10
	ids := make([]int64, n)
	vals := make([]float64, n)
	for i := range ids {
		ids[i] = int64(100 + i)
		vals[i] = 6 // all pass the v > 5 filter now
	}
	sb.Context().PutDataset("base", dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
	))
	resB2, err := p.Run("b", "ann", cseProgram("g1", "g2", "both2")...)
	if err != nil {
		t.Fatal(err)
	}
	if resB2.Table.NumRows() != 2*n {
		t.Fatalf("rerun after PutDataset returned %d rows, want %d (stale cache?)", resB2.Table.NumRows(), 2*n)
	}

	// Concurrent phase: both sessions replan and re-execute CSE'd pipelines
	// against the shared cache and stats registry at once.
	var wg sync.WaitGroup
	for gi, sess := range []string{"a", "b"} {
		wg.Add(1)
		go func(gi int, sess string) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				out := fmt.Sprintf("c%d_%d", gi, i)
				if _, err := p.Run(sess, "ann", cseProgram(out+"1", out+"2", out)...); err != nil {
					t.Errorf("concurrent run %s/%d: %v", sess, i, err)
				}
			}
		}(gi, sess)
	}
	wg.Wait()
}
