package plan

import (
	"fmt"
	"strings"

	"datachat/internal/skills"
)

// ---------------------------------------------------------------------------
// Slice: dead-step elimination (§2.3, Figure 5).

type slicePass struct{}

// SlicePass prunes every node the target does not depend on.
func SlicePass() Pass { return slicePass{} }

func (slicePass) Name() string { return "slice" }

func (slicePass) Run(p *Plan, env *Env, t *PassTrace) error {
	needed := map[int]bool{}
	var visit func(id int) error
	visit = func(id int) error {
		if needed[id] {
			return nil
		}
		n := p.Node(id)
		if n == nil {
			return fmt.Errorf("plan: unknown node %d", id)
		}
		needed[id] = true
		for _, in := range n.Inputs {
			if in.Node != External {
				if err := visit(in.Node); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := visit(p.Target); err != nil {
		return err
	}
	t.Pruned = len(p.Nodes) - len(needed)
	if t.Pruned > 0 {
		t.Fired = true
		for _, n := range p.Nodes {
			if !needed[n.ID] {
				t.Detail = append(t.Detail, fmt.Sprintf("prune %s#%d", n.Skill, n.ID))
			}
		}
		p.keep(needed)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fuse: adjacent-operator fusion. Consecutive same-skill steps that one
// invocation can express collapse on every execution, not only when slicing
// a recipe: consecutive KeepRows become one AND-ed filter, consecutive
// LimitRows keep the minimum, and a KeepColumns whose projection is a subset
// of its parent's replaces it outright.

type fusePass struct{}

// FusePass folds fusable parent/child pairs until a fixed point.
func FusePass() Pass { return fusePass{} }

func (fusePass) Name() string { return "fuse" }

func (fusePass) Run(p *Plan, env *Env, t *PassTrace) error {
	for changed := true; changed; {
		changed = false
		cons := p.Consumers()
		for _, child := range p.Nodes {
			if len(child.Inputs) != 1 || child.Inputs[0].Node == External {
				continue
			}
			parent := p.Node(child.Inputs[0].Node)
			if parent == nil || len(cons[parent.ID]) != 1 {
				continue
			}
			merged, ok := FuseArgs(child.Skill, parent, child)
			if !ok {
				continue
			}
			child.Args = merged
			child.Inputs = append([]Input{}, parent.Inputs...)
			child.Absorbed = append(child.Absorbed, parent.Absorbed...)
			child.Absorbed = append(child.Absorbed, parent.ID)
			p.remove(parent.ID)
			t.Merged++
			t.Detail = append(t.Detail, fmt.Sprintf("%s#%d absorbs #%d", child.Skill, child.ID, parent.ID))
			changed = true
			break // the node list mutated; restart the scan
		}
	}
	t.Fired = t.Merged > 0
	return nil
}

// FuseArgs folds a parent step into its same-skill child when one invocation
// can express both, returning the combined arguments. It is the single home
// of the fusion rules formerly duplicated inside dag.Slice; because fusion
// runs before fingerprinting, a pre-merged recipe step and the live chain it
// came from normalize to the same fingerprint.
func FuseArgs(skill string, parent, child *Node) (skills.Args, bool) {
	if !strings.EqualFold(parent.Skill, child.Skill) {
		return nil, false
	}
	switch strings.ToLower(skill) {
	case "keeprows":
		p, err1 := parent.Args.String("condition")
		c, err2 := child.Args.String("condition")
		if err1 != nil || err2 != nil {
			return nil, false
		}
		return skills.Args{"condition": "(" + p + ") AND (" + c + ")"}, true
	case "limitrows":
		p, err1 := parent.Args.Int("count")
		c, err2 := child.Args.Int("count")
		if err1 != nil || err2 != nil {
			return nil, false
		}
		if c < p {
			p = c
		}
		return skills.Args{"count": p}, true
	case "keepcolumns":
		// The child's projection wins, but only when it is a subset of the
		// parent's: sequential execution rejects a projection of columns the
		// parent already dropped, and fusion must not mask that error.
		pc, err1 := parent.Args.StringList("columns")
		cc, err2 := child.Args.StringList("columns")
		if err1 != nil || err2 != nil {
			return nil, false
		}
		have := make(map[string]bool, len(pc))
		for _, col := range pc {
			have[strings.ToLower(col)] = true
		}
		for _, col := range cc {
			if !have[strings.ToLower(col)] {
				return nil, false
			}
		}
		return skills.Args{"columns": cc}, true
	default:
		return nil, false
	}
}

// ---------------------------------------------------------------------------
// Cache probe: walk down from the target and pin nodes whose canonical key
// is already cached, pruning everything only reachable below a hit — the
// recursive executor's short-circuit, now a pass.

type cacheProbePass struct{}

// CacheProbePass marks plan-time cache hits (requires the fingerprint pass).
func CacheProbePass() Pass { return cacheProbePass{} }

func (cacheProbePass) Name() string { return "cache-probe" }

func (cacheProbePass) Run(p *Plan, env *Env, t *PassTrace) error {
	if env.CacheGet == nil {
		return nil
	}
	visited := map[int]bool{}
	var visit func(id int)
	visit = func(id int) {
		if visited[id] {
			return
		}
		visited[id] = true
		n := p.Node(id)
		if n.Key != "" {
			if res, ok := env.CacheGet(n.Key); ok {
				n.Cached = true
				n.Pinned = res
				t.CacheHits++
				t.Detail = append(t.Detail, fmt.Sprintf("hit %s#%d", n.Skill, n.ID))
				return // ancestors are not needed
			}
		}
		for _, in := range n.Inputs {
			if in.Node != External {
				visit(in.Node)
			}
		}
	}
	visit(p.Target)
	if len(visited) < len(p.Nodes) {
		t.Pruned = len(p.Nodes) - len(visited)
		p.keep(visited)
	}
	t.Fired = t.CacheHits > 0
	return nil
}

// ---------------------------------------------------------------------------
// Consolidate: fold maximal relational chains into single SQL fragments
// (§2.2, Figure 4). A chain is a run of mergeable single-input nodes where
// each interior node has exactly one consumer; it stops at a plan-time cache
// hit so the cached prefix is reused as the base instead of being refolded.

type consolidatePass struct{}

// ConsolidatePass emits SQL fragments (requires Env.Lookup).
func ConsolidatePass() Pass { return consolidatePass{} }

func (consolidatePass) Name() string { return "consolidate" }

func (consolidatePass) Run(p *Plan, env *Env, t *PassTrace) error {
	if env.Lookup == nil {
		return nil
	}
	cons := p.Consumers()
	inFragment := map[int]bool{}
	// Walk tails-first so each fragment claims its maximal chain before any
	// interior node is considered as a tail itself.
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		tail := p.Nodes[i]
		if inFragment[tail.ID] || tail.Cached || !tail.Mergeable || len(tail.Inputs) != 1 {
			continue
		}
		chain := []int{tail.ID}
		cur := tail
		for {
			in := cur.Inputs[0]
			if in.Node == External {
				break
			}
			parent := p.Node(in.Node)
			if !parent.Mergeable || len(parent.Inputs) != 1 {
				break
			}
			if len(cons[parent.ID]) != 1 {
				break // shared sub-DAG: materialize the parent for everyone
			}
			if parent.Cached {
				break // cached prefix: build on top of it
			}
			chain = append(chain, parent.ID)
			cur = parent
		}
		for a, b := 0, len(chain)-1; a < b; a, b = a+1, b-1 {
			chain[a], chain[b] = chain[b], chain[a]
		}
		head := p.Node(chain[0])
		frag := Fragment{Nodes: chain, Base: head.Inputs[0]}
		frag.Builder = skills.NewQueryBuilder(frag.Base.Name)
		for _, id := range chain {
			n := p.Node(id)
			def, err := env.Lookup(n.Skill)
			if err != nil {
				return fmt.Errorf("plan: node %d: %w", id, err)
			}
			if err := def.MergeSQL(frag.Builder, n.Invocation()); err != nil {
				return fmt.Errorf("plan: consolidating node %d (%s): %w", id, n.Skill, err)
			}
			inFragment[id] = true
			frag.DagNodes += 1 + len(n.Absorbed)
		}
		frag.SQL = frag.Builder.SQL()
		frag.Blocks = frag.Builder.Blocks()
		p.Fragments = append(p.Fragments, frag)
		t.Chains++
		t.NodesConsolidated += frag.DagNodes
		t.Detail = append(t.Detail, fmt.Sprintf("chain of %d ending at #%d", len(chain), tail.ID))
	}
	// Fragments were collected tails-first; report them in execution order.
	for a, b := 0, len(p.Fragments)-1; a < b; a, b = a+1, b-1 {
		p.Fragments[a], p.Fragments[b] = p.Fragments[b], p.Fragments[a]
	}
	t.Fired = t.Chains > 0
	return nil
}

// ---------------------------------------------------------------------------
// Pushdown: copy a scan's sole consumer's projection or filter into the scan
// itself (§3), so sampling and snapshot reads fetch fewer columns and rows.
// The consumer stays in place — re-projecting or re-filtering is idempotent —
// so the rewrite can never change results, only shrink intermediates.

type pushdownPass struct{}

// PushdownPass injects "columns"/"condition" into scan nodes that declare
// them as optional parameters (requires Env.Lookup).
func PushdownPass() Pass { return pushdownPass{} }

func (pushdownPass) Name() string { return "pushdown" }

func (pushdownPass) Run(p *Plan, env *Env, t *PassTrace) error {
	if env.Lookup == nil {
		return nil
	}
	cons := p.Consumers()
	for _, scan := range p.Nodes {
		if scan.Cached {
			continue
		}
		def, err := env.Lookup(scan.Skill)
		if err != nil {
			return fmt.Errorf("plan: node %d: %w", scan.ID, err)
		}
		accepts := map[string]bool{}
		for _, ps := range def.Params {
			if !ps.Required && (ps.Name == "columns" || ps.Name == "condition") {
				accepts[ps.Name] = true
			}
		}
		if len(accepts) == 0 {
			continue
		}
		ids := cons[scan.ID]
		if len(ids) != 1 {
			continue // a shared scan must stay whole for its other consumers
		}
		consumer := p.Node(ids[0])
		var param string
		var value any
		switch strings.ToLower(consumer.Skill) {
		case "keepcolumns":
			param = "columns"
			cols, err := consumer.Args.StringList("columns")
			if err != nil {
				continue
			}
			value = cols
		case "keeprows":
			param = "condition"
			cond, err := consumer.Args.String("condition")
			if err != nil {
				continue
			}
			value = cond
		default:
			continue
		}
		if !accepts[param] {
			continue
		}
		// Never mix pushed arguments with user-written ones: the scan applies
		// condition before columns, which only mirrors sequential execution
		// when at most one of them is present.
		if _, exists := scan.Args["condition"]; exists {
			continue
		}
		if _, exists := scan.Args["columns"]; exists {
			continue
		}
		// Copy-on-write: the lowered Args map is shared with the graph.
		args := make(skills.Args, len(scan.Args)+1)
		for k, v := range scan.Args {
			args[k] = v
		}
		args[param] = value
		scan.Args = args
		scan.Pushdown = append(scan.Pushdown, param)
		t.Pushdowns++
		t.Detail = append(t.Detail, fmt.Sprintf("%s into %s#%d from %s#%d",
			param, scan.Skill, scan.ID, consumer.Skill, consumer.ID))
	}
	t.Fired = t.Pushdowns > 0
	return nil
}
