package plan

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Explain is the serializable report of one planned execution: the surviving
// nodes, the consolidated SQL fragments, and what every pass did. It renders
// as text for humans and round-trips through JSON for tools.
type Explain struct {
	// Target is the output name the plan materializes.
	Target    string            `json:"target"`
	Nodes     []ExplainNode     `json:"nodes"`
	Fragments []ExplainFragment `json:"fragments,omitempty"`
	Passes    []PassTrace       `json:"passes"`
	// Cost is the whole-plan estimate after the final pass (nil when the
	// cost model was off).
	Cost *PlanCost `json:"cost,omitempty"`
}

// ExplainNode is one surviving plan node.
type ExplainNode struct {
	ID     int      `json:"id"`
	Skill  string   `json:"skill"`
	Args   string   `json:"args,omitempty"` // canonical: sorted keys, JSON values
	Inputs []string `json:"inputs,omitempty"`
	Output string   `json:"output"`
	// Fingerprint is a short prefix of the canonical fingerprint.
	Fingerprint string   `json:"fingerprint,omitempty"`
	Absorbed    []int    `json:"absorbed,omitempty"`
	Cached      bool     `json:"cached,omitempty"`
	Pushdown    []string `json:"pushdown,omitempty"`
	Aliases     []string `json:"aliases,omitempty"`
	// Cost is the node's estimated cost (nil when the cost model was off);
	// Substituted marks a budget-degraded scan.
	Cost           *NodeCost `json:"cost,omitempty"`
	Substituted    bool      `json:"substituted,omitempty"`
	SubstituteNote string    `json:"substitute_note,omitempty"`
}

// ExplainFragment is one consolidated SQL fragment.
type ExplainFragment struct {
	Nodes    []int  `json:"nodes"`
	Base     string `json:"base"`
	SQL      string `json:"sql"`
	Blocks   int    `json:"blocks"`
	DagNodes int    `json:"dag_nodes"`
}

// NewExplain builds the report for a plan that has been through the pass
// pipeline.
func NewExplain(p *Plan) *Explain {
	e := &Explain{Passes: append([]PassTrace{}, p.Trace...)}
	if p.Cost != nil {
		c := *p.Cost
		e.Cost = &c
	}
	if t := p.Node(p.Target); t != nil {
		e.Target = t.OutputName()
	}
	for _, n := range p.Nodes {
		en := ExplainNode{
			ID:     n.ID,
			Skill:  n.Skill,
			Args:   canonicalArgs(n),
			Output: n.OutputName(),
			Cached: n.Cached,
		}
		// Copy-only-when-present keeps the report DeepEqual to its own JSON
		// round trip (omitempty drops empty slices).
		if len(n.Absorbed) > 0 {
			en.Absorbed = append([]int{}, n.Absorbed...)
		}
		if len(n.Pushdown) > 0 {
			en.Pushdown = append([]string{}, n.Pushdown...)
		}
		if len(n.Aliases) > 0 {
			en.Aliases = append([]string{}, n.Aliases...)
		}
		if n.Cost != nil {
			c := *n.Cost
			en.Cost = &c
		}
		en.Substituted = n.Substituted
		en.SubstituteNote = n.SubstituteNote
		if len(n.Fingerprint) >= 12 {
			en.Fingerprint = n.Fingerprint[:12]
		} else {
			en.Fingerprint = n.Fingerprint
		}
		for _, in := range n.Inputs {
			if in.Node == External {
				en.Inputs = append(en.Inputs, in.Name)
			} else {
				en.Inputs = append(en.Inputs, fmt.Sprintf("#%d", in.Node))
			}
		}
		e.Nodes = append(e.Nodes, en)
	}
	for _, f := range p.Fragments {
		base := f.Base.Name
		if f.Base.Node != External {
			base = fmt.Sprintf("#%d", f.Base.Node)
		}
		e.Fragments = append(e.Fragments, ExplainFragment{
			Nodes:    append([]int{}, f.Nodes...),
			Base:     base,
			SQL:      f.SQL,
			Blocks:   f.Blocks,
			DagNodes: f.DagNodes,
		})
	}
	return e
}

func canonicalArgs(n *Node) string {
	if len(n.Args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(n.Args))
	for k := range n.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v, err := json.Marshal(n.Args[k])
		if err != nil {
			v = []byte(fmt.Sprintf("%q", fmt.Sprint(n.Args[k])))
		}
		parts = append(parts, fmt.Sprintf("%s=%s", k, v))
	}
	return strings.Join(parts, ", ")
}

// String renders the report as indented text, stable enough for golden-file
// tests.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN target=%s\n", e.Target)
	b.WriteString("passes:\n")
	var prevScan int64
	prevKnown := false
	for _, t := range e.Passes {
		fired := "-"
		if t.Fired {
			fired = "fired"
		}
		fmt.Fprintf(&b, "  %-17s %s", t.Pass, fired)
		if t.Pruned > 0 {
			fmt.Fprintf(&b, " pruned=%d", t.Pruned)
		}
		if t.Merged > 0 {
			fmt.Fprintf(&b, " merged=%d", t.Merged)
		}
		if t.Dedup > 0 {
			fmt.Fprintf(&b, " dedup=%d", t.Dedup)
		}
		if t.Reordered > 0 {
			fmt.Fprintf(&b, " reordered=%d", t.Reordered)
		}
		if t.Substituted > 0 {
			fmt.Fprintf(&b, " substituted=%d", t.Substituted)
		}
		if t.Chains > 0 {
			fmt.Fprintf(&b, " chains=%d nodes=%d", t.Chains, t.NodesConsolidated)
		}
		if t.Pushdowns > 0 {
			fmt.Fprintf(&b, " pushdowns=%d", t.Pushdowns)
		}
		if t.CacheHits > 0 {
			fmt.Fprintf(&b, " hits=%d", t.CacheHits)
		}
		if t.Cost != nil {
			fmt.Fprintf(&b, " est_scan=%d", t.Cost.ScanBytes)
			if prevKnown && t.Cost.ScanBytes != prevScan {
				fmt.Fprintf(&b, " (%+d)", t.Cost.ScanBytes-prevScan)
			}
			prevScan, prevKnown = t.Cost.ScanBytes, true
		}
		b.WriteByte('\n')
	}
	if e.Cost != nil {
		fmt.Fprintf(&b, "cost: rows~%d bytes~%d scan~%d latency~%s dollars~%.6f",
			e.Cost.Rows, e.Cost.Bytes, e.Cost.ScanBytes, e.Cost.Latency, e.Cost.Dollars)
		if e.Cost.Substituted > 0 {
			fmt.Fprintf(&b, " substituted=%d", e.Cost.Substituted)
		}
		b.WriteByte('\n')
	}
	b.WriteString("nodes:\n")
	for _, n := range e.Nodes {
		fmt.Fprintf(&b, "  #%d %s", n.ID, n.Skill)
		if n.Args != "" {
			fmt.Fprintf(&b, "(%s)", n.Args)
		}
		if len(n.Inputs) > 0 {
			fmt.Fprintf(&b, " <- %s", strings.Join(n.Inputs, ", "))
		}
		fmt.Fprintf(&b, " => %s", n.Output)
		if len(n.Absorbed) > 0 {
			fmt.Fprintf(&b, " [fused %s]", joinInts(n.Absorbed))
		}
		if n.Cached {
			b.WriteString(" [cached]")
		}
		if len(n.Pushdown) > 0 {
			fmt.Fprintf(&b, " [pushdown %s]", strings.Join(n.Pushdown, ","))
		}
		if len(n.Aliases) > 0 {
			fmt.Fprintf(&b, " [aka %s]", strings.Join(n.Aliases, ","))
		}
		if n.Cost != nil {
			fmt.Fprintf(&b, " [rows~%d", n.Cost.Rows)
			if n.Cost.ScanBytes > 0 {
				fmt.Fprintf(&b, " scan~%d", n.Cost.ScanBytes)
			}
			b.WriteByte(']')
		}
		if n.Substituted {
			b.WriteString(" [substituted]")
		}
		b.WriteByte('\n')
	}
	if len(e.Fragments) > 0 {
		b.WriteString("fragments:\n")
		for i, f := range e.Fragments {
			fmt.Fprintf(&b, "  F%d nodes=[%s] base=%s blocks=%d dag_nodes=%d\n",
				i, joinInts(f.Nodes), f.Base, f.Blocks, f.DagNodes)
			fmt.Fprintf(&b, "     %s\n", f.SQL)
		}
	}
	return b.String()
}

func joinInts(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("#%d", x)
	}
	return strings.Join(parts, " ")
}

// Encode serializes the report as indented JSON.
func (e *Explain) Encode() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// DecodeExplain parses a report produced by Encode.
func DecodeExplain(data []byte) (*Explain, error) {
	var e Explain
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("plan: decoding explain: %w", err)
	}
	return &e, nil
}
