package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

// The plan experiment measures the logical-plan pass pipeline end to end: a
// workload of filter/projection chains and cloud scans runs once through a
// naive executor (every pass off, one task per step) and once through the
// planned executor (slice, fuse, consolidate, pushdown, cache). It reports
// the §2.2 flatness measures — tasks, SELECT blocks, nodes folded — plus the
// rows materialized into the session (the volume pushdown shrinks) and the
// cache hit rate when a second "front end" replays the same pipelines
// against the shared cache.

// PlanResult holds the planned-vs-naive comparison.
type PlanResult struct {
	Rows      int `json:"rows"`
	Pipelines int `json:"pipelines"`

	NaiveTasks   int `json:"naive_tasks"`
	PlannedTasks int `json:"planned_tasks"`

	NaiveBlocks   int `json:"naive_blocks"`
	PlannedBlocks int `json:"planned_blocks"`

	NaiveRowsMaterialized   int `json:"naive_rows_materialized"`
	PlannedRowsMaterialized int `json:"planned_rows_materialized"`

	NodesConsolidated int `json:"nodes_consolidated"`
	Pushdowns         int `json:"pushdowns"`

	// ReplayHitRate is the shared-cache hit rate when the same pipelines are
	// rebuilt by a second session (as a different front end would) and run
	// against the first run's cache.
	ReplayHitRate float64 `json:"replay_hit_rate"`

	NaiveSeconds   float64 `json:"naive_seconds"`
	PlannedSeconds float64 `json:"planned_seconds"`
}

// planWorkload builds the pipeline set over a fresh context.
type planWorkload struct {
	graphs  []*dag.Graph
	targets []dag.NodeID
}

func planGraphs(pipelines int) planWorkload {
	var w planWorkload
	add := func(g *dag.Graph, last dag.NodeID) {
		w.graphs = append(w.graphs, g)
		w.targets = append(w.targets, last)
	}
	for i := 0; i < pipelines; i++ {
		// A relational chain with fusable neighbors: two adjacent filters and
		// two adjacent projections collapse, then the whole chain consolidates
		// into one SELECT.
		g := dag.NewGraph()
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"events"},
			Args: skills.Args{"condition": fmt.Sprintf("c0 > %d", 10+i)}, Output: "f1"})
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"f1"},
			Args: skills.Args{"condition": "c1 < 900"}, Output: "f2"})
		g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"f2"},
			Args: skills.Args{"columns": []string{"id", "c0", "c1"}}, Output: "p1"})
		g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"p1"},
			Args: skills.Args{"columns": []string{"id", "c0"}}, Output: "p2"})
		last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"p2"},
			Args: skills.Args{"count": 100}})
		add(g, last)

		// A cloud scan whose sole consumer projects two of the columns: the
		// pushdown pass folds the projection into the scan, so the wide table
		// never materializes.
		g2 := dag.NewGraph()
		g2.Add(skills.Invocation{Skill: "LoadTable", Inputs: nil,
			Args: skills.Args{"database": "wh", "table": "orders"}, Output: "orders"})
		g2.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"orders"},
			Args: skills.Args{"columns": []string{"id", "c0"}}, Output: "slim"})
		last2 := g2.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"slim"},
			Args: skills.Args{"count": 100 + i}})
		add(g2, last2)
	}
	return w
}

func planCtx(rows int) (*skills.Context, error) {
	ctx := skills.NewContext()
	cols := []*dataset.Column{}
	ids := make([]int64, rows)
	for i := range ids {
		ids[i] = int64(i)
	}
	cols = append(cols, dataset.IntColumn("id", ids, nil))
	for c := 0; c < 6; c++ {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = float64((i * (c + 3)) % 997)
		}
		cols = append(cols, dataset.FloatColumn(fmt.Sprintf("c%d", c), vals, nil))
	}
	events := dataset.MustNewTable("events", cols...)
	ctx.Datasets["events"] = events

	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	orders := dataset.MustNewTable("orders", cols...)
	if err := db.CreateTable(orders); err != nil {
		return nil, err
	}
	ctx.Cloud["wh"] = db
	return ctx, nil
}

// Plan runs the workload under both executors and a shared-cache replay.
func Plan(rows, pipelines int) (*PlanResult, error) {
	reg := skills.NewRegistry()
	result := &PlanResult{Rows: rows, Pipelines: 2 * pipelines}

	runAll := func(ex *dag.Executor) (time.Duration, error) {
		w := planGraphs(pipelines)
		start := time.Now()
		for i, g := range w.graphs {
			if _, err := ex.Run(g, w.targets[i]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Naive: one direct task per step, nothing fused, full-width scans.
	naiveCtx, err := planCtx(rows)
	if err != nil {
		return nil, err
	}
	naive := dag.NewExecutor(reg, naiveCtx)
	naive.Consolidate, naive.Fuse, naive.Pushdown, naive.UseCache = false, false, false, false
	naiveDur, err := runAll(naive)
	if err != nil {
		return nil, err
	}
	ns := naive.Stats()
	result.NaiveTasks = ns.TasksRun
	// One block per direct task stands in for the naive block count.
	result.NaiveBlocks = ns.TasksRun
	result.NaiveRowsMaterialized = ns.RowsMaterialized
	result.NaiveSeconds = naiveDur.Seconds()

	// Planned: the full pass pipeline with a fresh shared cache.
	plannedCtx, err := planCtx(rows)
	if err != nil {
		return nil, err
	}
	shared := dag.NewCache(dag.DefaultCacheCapacity)
	planned := dag.NewExecutor(reg, plannedCtx)
	planned.SetCache(shared)
	plannedDur, err := runAll(planned)
	if err != nil {
		return nil, err
	}
	ps := planned.Stats()
	result.PlannedTasks = ps.TasksRun
	result.PlannedBlocks = ps.QueryBlocks
	result.PlannedRowsMaterialized = ps.RowsMaterialized
	result.NodesConsolidated = ps.NodesConsolidated
	result.PlannedSeconds = plannedDur.Seconds()

	// Count pushdowns from the compiled plans (the scan pipelines).
	w := planGraphs(pipelines)
	for i, g := range w.graphs {
		e, err := planned.Explain(g, w.targets[i])
		if err != nil {
			return nil, err
		}
		for _, tr := range e.Passes {
			if tr.Pass == "pushdown" {
				result.Pushdowns += tr.Pushdowns
			}
		}
	}

	// Replay: a second session (same data, shared cache) rebuilds the same
	// pipelines, as another front end would, and runs them.
	replayCtx, err := planCtx(rows)
	if err != nil {
		return nil, err
	}
	replayCtx.Datasets["events"] = plannedCtx.Datasets["events"]
	replay := dag.NewExecutor(reg, replayCtx)
	replay.SetCache(shared)
	before := shared.Stats()
	if _, err := runAll(replay); err != nil {
		return nil, err
	}
	after := shared.Stats()
	lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	if lookups > 0 {
		result.ReplayHitRate = float64(after.Hits-before.Hits) / float64(lookups)
	}
	return result, nil
}

// Report renders the comparison as the EXPERIMENTS.md table.
func (r *PlanResult) Report() string {
	var b strings.Builder
	b.WriteString("Logical-plan pass pipeline: planned vs naive execution\n")
	fmt.Fprintf(&b, "  workload: %d pipelines over %d rows\n", r.Pipelines, r.Rows)
	b.WriteString("  metric                naive      planned\n")
	fmt.Fprintf(&b, "  tasks run             %-10d %d\n", r.NaiveTasks, r.PlannedTasks)
	fmt.Fprintf(&b, "  SELECT blocks         %-10d %d\n", r.NaiveBlocks, r.PlannedBlocks)
	fmt.Fprintf(&b, "  rows materialized     %-10d %d\n", r.NaiveRowsMaterialized, r.PlannedRowsMaterialized)
	fmt.Fprintf(&b, "  wall seconds          %-10.3f %.3f\n", r.NaiveSeconds, r.PlannedSeconds)
	fmt.Fprintf(&b, "  nodes consolidated    %d\n", r.NodesConsolidated)
	fmt.Fprintf(&b, "  scan pushdowns        %d\n", r.Pushdowns)
	fmt.Fprintf(&b, "  replay cache hit rate %.0f%%\n", r.ReplayHitRate*100)
	return b.String()
}

// JSON renders the result for BENCH_plan.json.
func (r *PlanResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
