package skills

import (
	"fmt"
	"strings"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/faults"
)

// DegradePolicy configures graceful degradation for cloud-reading skills:
// when a scan fails permanently (retrying cannot fix it), the skill may
// answer from a fresh-enough snapshot of the same table, or failing that
// from a block sample, instead of aborting the whole DAG. Every degraded
// answer is annotated on the Result — the paper's §2.3 transparency rule
// applied to failure handling: the platform may change how it got the
// answer, never silently what the answer means.
type DegradePolicy struct {
	// Enabled turns degradation on. Off (the zero value), permanent
	// failures propagate.
	Enabled bool
	// MaxSnapshotAge is how stale a snapshot may be and still substitute
	// for a live scan (0 = any age).
	MaxSnapshotAge time.Duration
	// SampleRate is the block-sample rate of the last-resort fallback;
	// 0 disables the sample fallback.
	SampleRate float64
	// Now supplies the current time for snapshot-age checks (virtual in
	// tests); nil means time.Now.
	Now func() time.Time
}

func (p DegradePolicy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// degradedScan is the fallback ladder for a permanently failed cloud scan:
// freshest matching snapshot first, then a block sample of the table itself
// (samples touch fewer blocks, so they can dodge localized block faults).
// It returns nil when no fallback applies; the caller then surfaces origErr.
func degradedScan(ctx *Context, db cloud.DB, table string, origErr error) *Result {
	pol := ctx.Degrade
	if !pol.Enabled || !faults.IsPermanent(origErr) {
		return nil
	}
	if t, note := degradedFromSnapshot(ctx, db, table, pol); t != nil {
		return &Result{
			Table:        t,
			Degraded:     true,
			DegradedNote: note,
			Message:      fmt.Sprintf("degraded: %s (scan failed: %v)", note, origErr),
		}
	}
	if pol.SampleRate > 0 && pol.SampleRate <= 1 {
		if t, err := db.SampleBlocks(table, pol.SampleRate, ctx.Seed); err == nil {
			note := fmt.Sprintf("%.0f%% block sample of %s", pol.SampleRate*100, table)
			return &Result{
				Table:        t.WithName(table),
				Degraded:     true,
				DegradedNote: note,
				Message:      fmt.Sprintf("degraded: %s (scan failed: %v)", note, origErr),
			}
		}
	}
	return nil
}

// degradedFromSnapshot picks the freshest snapshot of db/table within the
// policy's age bound.
func degradedFromSnapshot(ctx *Context, db cloud.DB, table string, pol DegradePolicy) (*dataset.Table, string) {
	if ctx.Snapshots == nil {
		return nil, ""
	}
	var best *time.Time
	var bestName string
	for _, name := range ctx.Snapshots.Names() {
		info, err := ctx.Snapshots.Info(name)
		if err != nil || info.SourceDB != db.Name() || !strings.EqualFold(info.SourceTable, table) {
			continue
		}
		if pol.MaxSnapshotAge > 0 && pol.now().Sub(info.RefreshedAt) > pol.MaxSnapshotAge {
			continue
		}
		if best == nil || info.RefreshedAt.After(*best) {
			t := info.RefreshedAt
			best, bestName = &t, name
		}
	}
	if bestName == "" {
		return nil, ""
	}
	t, err := ctx.Snapshots.Get(bestName)
	if err != nil {
		return nil, ""
	}
	return t.WithName(table), fmt.Sprintf("snapshot %q (refreshed %s)", bestName, best.Format("2006-01-02 15:04:05"))
}
