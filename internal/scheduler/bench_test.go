package scheduler

import (
	"context"
	"testing"
	"time"

	"datachat/internal/board"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/skills"
)

func benchRig(b *testing.B) (*Scheduler, *faults.VirtualClock) {
	b.Helper()
	p := core.New()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	tb, err := dataset.ReadCSVString("metrics", metricsCSV(2000, 1))
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable(tb); err != nil {
		b.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err != nil {
		b.Fatal(err)
	}
	clock := faults.NewVirtualClock(time.Unix(1_700_000_000, 0))
	hub := board.NewHub()
	hub.SetClock(clock)
	s := New(p, hub)
	s.SetClock(clock)
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable",
		Args: skills.Args{"database": "wh", "table": "metrics"}, Output: "metrics"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"metrics"},
		Args: skills.Args{"condition": "val >= 500"}, Output: "hot"})
	r, err := recipe.FromGraph("hot-metrics", g)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Add(Spec{Name: "bench", User: "bench", Recipe: r,
		Every: time.Hour, Board: "bench", Tile: "hot"}); err != nil {
		b.Fatal(err)
	}
	return s, clock
}

// BenchmarkRefreshUnchanged measures the scheduler's steady state: a
// refresh whose sources have not changed, served end to end from the
// fingerprint-keyed cache (plan + diff + cache hit + publish, no scans).
func BenchmarkRefreshUnchanged(b *testing.B) {
	s, _ := benchRig(b)
	ctx := context.Background()
	if rec, err := s.RunNow(ctx, "bench"); err != nil || rec.Err != "" {
		b.Fatalf("cold run: %v %q", err, rec.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := s.RunNow(ctx, "bench")
		if err != nil || rec.Err != "" {
			b.Fatalf("refresh: %v %q", err, rec.Err)
		}
		if rec.FPChanged != 0 {
			b.Fatalf("refresh recomputed %d nodes, want pure cache", rec.FPChanged)
		}
	}
}

// BenchmarkRunDueIdle measures the no-op tick: RunDue when no job has
// reached its trigger time — the cost the daemon's poll loop pays when
// nothing is due.
func BenchmarkRunDueIdle(b *testing.B) {
	s, _ := benchRig(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.RunDue(ctx); n != 0 {
			b.Fatalf("idle tick ran %d jobs", n)
		}
	}
}
