package plan

import (
	"strings"
	"testing"

	"datachat/internal/cloud"
	"datachat/internal/skills"
)

// TestAdaptiveWorkersDecisionTable pins the worker-count policy: one worker
// per 50k estimated input rows, at least one, capped at the processor count,
// full fan-out when the cardinality is unknown.
func TestAdaptiveWorkersDecisionTable(t *testing.T) {
	cases := []struct {
		estRows int64
		procs   int
		want    int
	}{
		{0, 8, 8},        // unknown cardinality: keep full fan-out
		{-1, 8, 8},       // negative counts as unknown
		{1, 8, 1},        // tiny input: one worker
		{49_999, 8, 1},   // below the first step
		{50_000, 8, 2},   // first step boundary
		{149_999, 8, 3},  // mid-ladder
		{200_000, 4, 4},  // capped by procs (1+4 = 5 > 4)
		{10_000_000, 8, 8}, // far past the cap
		{100, 0, 1},      // degenerate procs: at least one worker
		{0, -3, 1},       // degenerate procs with unknown rows
	}
	for _, c := range cases {
		if got := AdaptiveWorkers(c.estRows, c.procs); got != c.want {
			t.Errorf("AdaptiveWorkers(%d, %d) = %d, want %d", c.estRows, c.procs, got, c.want)
		}
	}
}

// costEnv builds an env with a one-table catalog and a real skill registry.
func costEnv(t *testing.T, rows, bytes int64) *Env {
	t.Helper()
	env := lookupEnv(t)
	env.TableStats = func(db, table string) (TableEstimate, bool) {
		if db == "wh" && table == "orders" {
			return TableEstimate{Rows: rows, Bytes: bytes, Pricing: cloud.DefaultPricing}, true
		}
		return TableEstimate{}, false
	}
	return env
}

// TestEstimateCostsHeuristics pins the scan-seeded estimates: catalog stats
// size the scan, filter selectivity shrinks descendants, observed stats
// override the heuristic, and a plan-time cache hit zeroes the scan.
func TestEstimateCostsHeuristics(t *testing.T) {
	env := costEnv(t, 9000, 90_000)
	p := New(1)
	p.Add(&Node{ID: 0, Skill: "LoadTable",
		Args: skills.Args{"database": "wh", "table": "orders"}, Output: "orders"})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "v > 5"},
		Inputs: []Input{{Node: 0, Name: "orders"}}, Output: "f"})
	mustRun(t, p, env, FingerprintPass())

	scan := p.Node(0).Cost
	if scan == nil || scan.Rows != 9000 || scan.ScanBytes != 90_000 || scan.Source != "table-stats" {
		t.Fatalf("scan cost = %+v, want 9000 rows / 90000 scan bytes from table-stats", scan)
	}
	if scan.Latency <= 0 || scan.Dollars <= 0 {
		t.Fatalf("scan cost = %+v, want positive latency and dollars", scan)
	}
	filter := p.Node(1).Cost
	if filter == nil || filter.Rows != 9000/3+1 {
		t.Fatalf("filter cost = %+v, want 1/3 selectivity of the scan", filter)
	}
	if p.Cost == nil || p.Cost.ScanBytes != 90_000 || p.Cost.Rows != filter.Rows {
		t.Fatalf("plan cost = %+v, want target rows and scan total", p.Cost)
	}

	// A pushdown condition on the scan shrinks the output estimate but not
	// the scanned bytes (blocks are still read).
	p2 := New(0)
	p2.Add(&Node{ID: 0, Skill: "LoadTable",
		Args:   skills.Args{"database": "wh", "table": "orders", "condition": "v > 5"},
		Output: "orders"})
	mustRun(t, p2, env, FingerprintPass())
	cond := p2.Node(0).Cost
	if cond.Rows != 9000/3+1 || cond.ScanBytes != 90_000 {
		t.Fatalf("conditioned scan = %+v, want reduced rows, full scan bytes", cond)
	}

	// Observed stats from a previous execution override the heuristic.
	env.Observed = func(fp string) (ObservedStats, bool) {
		if fp == p.Node(1).Fingerprint {
			return ObservedStats{Rows: 42, Bytes: 420}, true
		}
		return ObservedStats{}, false
	}
	EstimateCosts(p, env)
	if c := p.Node(1).Cost; c.Rows != 42 || c.Bytes != 420 || c.Source != "observed" {
		t.Fatalf("observed override = %+v, want rows 42 from feedback", c)
	}

	// A plan-time cache hit zeroes the node's scan contribution.
	p.Node(0).Cached = true
	EstimateCosts(p, env)
	if c := p.Node(0).Cost; c.ScanBytes != 0 || c.Latency != 0 || c.Dollars != 0 || c.Source != "cached" {
		t.Fatalf("cached scan cost = %+v, want zeroed", c)
	}
	if p.Cost.ScanBytes != 0 {
		t.Fatalf("plan scan total = %d, want 0 with the only scan cached", p.Cost.ScanBytes)
	}
}

// TestCSEPassMergesDuplicateBranches pins the merge mechanics: the first
// occurrence survives, the duplicate's output name becomes an alias, its ID
// joins Absorbed, and consumers are rewired by node while keeping the
// name-based input references intact.
func TestCSEPassMergesDuplicateBranches(t *testing.T) {
	p := New(3)
	p.Add(&Node{ID: 0, Skill: "LoadData", Args: skills.Args{"file": "sales.csv"}, Output: "sales"})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "v > 5"},
		Inputs: []Input{{Node: 0, Name: "sales"}}, Output: "f1"})
	p.Add(&Node{ID: 2, Skill: "KeepRows", Args: skills.Args{"condition": "v > 5"},
		Inputs: []Input{{Node: 0, Name: "sales"}}, Output: "f2"})
	p.Add(&Node{ID: 3, Skill: "Concatenate",
		Inputs: []Input{{Node: 1, Name: "f1"}, {Node: 2, Name: "f2"}}, Output: "both"})
	env := lookupEnv(t)
	mustRun(t, p, env, StructuralFingerprintPass(), CSEPass())

	if got := trace(t, p, "cse").Dedup; got != 1 {
		t.Fatalf("Dedup = %d, want 1", got)
	}
	if p.Node(2) != nil {
		t.Fatal("duplicate node 2 survived CSE")
	}
	surv := p.Node(1)
	if len(surv.Aliases) != 1 || surv.Aliases[0] != "f2" {
		t.Fatalf("survivor aliases = %v, want [f2]", surv.Aliases)
	}
	if len(surv.Absorbed) != 1 || surv.Absorbed[0] != 2 {
		t.Fatalf("survivor absorbed = %v, want [2]", surv.Absorbed)
	}
	concat := p.Node(3)
	if concat.Inputs[0].Node != 1 || concat.Inputs[1].Node != 1 {
		t.Fatalf("concat inputs = %+v, want both rewired to node 1", concat.Inputs)
	}
	if concat.Inputs[0].Name != "f1" || concat.Inputs[1].Name != "f2" {
		t.Fatalf("concat input names = %+v, want f1/f2 preserved", concat.Inputs)
	}
}

// joinChainPlan builds ((small ⋈ big) ⋈ mid) with bare-equality predicates
// and pairwise-disjoint leaf schemas — the shape the reorder pass accepts.
func joinChainPlan(onBottom, onTop string) *Plan {
	p := New(1)
	p.Add(&Node{ID: 0, Skill: "JoinDatasets",
		Args:   skills.Args{"kind": "inner", "on": onBottom},
		Inputs: []Input{{Node: External, Name: "small"}, {Node: External, Name: "big"}}})
	p.Add(&Node{ID: 1, Skill: "JoinDatasets",
		Args:   skills.Args{"kind": "inner", "on": onTop},
		Inputs: []Input{{Node: 0, Name: "node0"}, {Node: External, Name: "mid"}},
		Output: "joined"})
	return p
}

func joinEnv(t *testing.T) *Env {
	t.Helper()
	env := lookupEnv(t)
	rows := map[string]int64{"small": 10, "big": 1_000_000, "mid": 10_000}
	cols := map[string][]string{
		"small": {"s_id", "s_k"},
		"big":   {"b_id", "b_val"},
		"mid":   {"m_id", "m_val"},
	}
	env.DatasetStats = func(name string) (int64, int64, bool) {
		r, ok := rows[name]
		return r, r * 16, ok
	}
	env.DatasetColumns = func(name string) ([]string, bool) {
		c, ok := cols[name]
		return c, ok
	}
	return env
}

// TestJoinReorderPassReordersBySize pins the rewrite: with both probes
// connected to the small base, the pass probes the 10k-row side before the
// 1M-row side, keeps the predicates attached to their probe leaves, and
// restores the original output column order on the chain top.
func TestJoinReorderPassReordersBySize(t *testing.T) {
	p := joinChainPlan("s_id = b_id", "s_k = m_id")
	env := joinEnv(t)
	mustRun(t, p, env, FingerprintPass(), JoinReorderPass())

	tr := trace(t, p, "join-reorder")
	if !tr.Fired || tr.Reordered != 2 {
		t.Fatalf("trace = %+v, want fired with 2 reordered joins", tr)
	}
	bottom, top := p.Node(0), p.Node(1)
	if bottom.Inputs[1].Name != "mid" || bottom.Args.StringOr("on", "") != "s_k = m_id" {
		t.Fatalf("bottom join = probe %q on %q, want mid via s_k = m_id",
			bottom.Inputs[1].Name, bottom.Args.StringOr("on", ""))
	}
	if top.Inputs[1].Name != "big" || top.Args.StringOr("on", "") != "s_id = b_id" {
		t.Fatalf("top join = probe %q on %q, want big via s_id = b_id",
			top.Inputs[1].Name, top.Args.StringOr("on", ""))
	}
	wantCols := []string{"s_id", "s_k", "b_id", "b_val", "m_id", "m_val"}
	gotCols := top.Args.StringListOr("columns")
	if strings.Join(gotCols, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("top projection = %v, want original order %v", gotCols, wantCols)
	}
	if bottom.Fingerprint == "" || top.Fingerprint == "" {
		t.Fatal("reordered nodes were not refingerprinted")
	}
}

// TestJoinReorderPassGating pins the conservative gates: qualified
// predicates, unknown stats, named intermediates, and outer joins all pin
// the original shape.
func TestJoinReorderPassGating(t *testing.T) {
	run := func(name string, p *Plan, env *Env) {
		t.Helper()
		mustRun(t, p, env, FingerprintPass(), JoinReorderPass())
		if tr := trace(t, p, "join-reorder"); tr.Fired {
			t.Errorf("%s: join-reorder fired, want original shape pinned", name)
		}
	}
	// Qualified predicate: the qualifier names a direct input, so any
	// re-association would dangle it.
	run("qualified", joinChainPlan("small.s_id = b_id", "s_k = m_id"), joinEnv(t))

	// Unknown leaf stats: no cost basis, no rewrite.
	envNoStats := joinEnv(t)
	inner := envNoStats.DatasetStats
	envNoStats.DatasetStats = func(name string) (int64, int64, bool) {
		if name == "big" {
			return 0, 0, false
		}
		return inner(name)
	}
	run("unknown-stats", joinChainPlan("s_id = b_id", "s_k = m_id"), envNoStats)

	// A named interior is observable session state; its content would change.
	named := joinChainPlan("s_id = b_id", "s_k = m_id")
	named.Node(0).Output = "halfway"
	run("named-interior", named, joinEnv(t))

	// Outer joins are order-sensitive.
	left := joinChainPlan("s_id = b_id", "s_k = m_id")
	left.Node(1).Args["kind"] = "left"
	run("outer-join", left, joinEnv(t))
}

// TestSampleSubstitutePassBudget pins the §3 substitution math: the most
// expensive scan is sampled at the rate that lands the plan back inside the
// budget, the node is flagged with an honest note, and the rewrite clears
// cache keys so the degraded result can never be served silently.
func TestSampleSubstitutePassBudget(t *testing.T) {
	env := lookupEnv(t)
	env.TableStats = func(db, table string) (TableEstimate, bool) {
		switch table {
		case "bigtab":
			return TableEstimate{Rows: 10_000, Bytes: 100_000, Pricing: cloud.DefaultPricing}, true
		case "smalltab":
			return TableEstimate{Rows: 1_000, Bytes: 10_000, Pricing: cloud.DefaultPricing}, true
		}
		return TableEstimate{}, false
	}
	build := func() *Plan {
		p := New(2)
		p.Add(&Node{ID: 0, Skill: "LoadTable",
			Args: skills.Args{"database": "wh", "table": "bigtab"}, Output: "b"})
		p.Add(&Node{ID: 1, Skill: "LoadTable",
			Args: skills.Args{"database": "wh", "table": "smalltab"}, Output: "s"})
		p.Add(&Node{ID: 2, Skill: "Concatenate",
			Inputs: []Input{{Node: 0, Name: "b"}, {Node: 1, Name: "s"}}, Output: "both"})
		return p
	}

	// Budget 20k against 110k total: sampling the 100k scan at 10% lands at
	// exactly 10k + 10k; the small scan is untouched.
	p := build()
	env.CostBudgetBytes = 20_000
	mustRun(t, p, env, FingerprintPass(), SampleSubstitutePass())
	tr := trace(t, p, "sample-substitute")
	if !tr.Fired || tr.Substituted != 1 {
		t.Fatalf("trace = %+v, want exactly one substitution", tr)
	}
	big := p.Node(0)
	if big.Skill != "SampleTable" || big.Args.FloatOr("rate", 0) != 0.10 {
		t.Fatalf("big scan = %s rate %v, want SampleTable at 0.10", big.Skill, big.Args["rate"])
	}
	if !big.Substituted || !strings.Contains(big.SubstituteNote, "10% block sample") ||
		!strings.Contains(big.SubstituteNote, "20000-byte request budget") {
		t.Fatalf("substitute note = %q, want honest rate and budget", big.SubstituteNote)
	}
	if big.Key != "" || p.Node(2).Key != "" {
		t.Fatal("substituted subtree kept cache keys; a degraded result could be cached")
	}
	if small := p.Node(1); small.Skill != "LoadTable" || small.Substituted {
		t.Fatalf("small scan = %+v, want untouched", small)
	}

	// An ample budget changes nothing.
	p2 := build()
	env.CostBudgetBytes = 200_000
	mustRun(t, p2, env, FingerprintPass(), SampleSubstitutePass())
	if tr := trace(t, p2, "sample-substitute"); tr.Fired {
		t.Fatalf("trace = %+v, want no-op under an ample budget", tr)
	}

	// An impossible budget floors every scan at the 5% minimum rather than
	// sampling to nothing.
	p3 := build()
	env.CostBudgetBytes = 1_000
	mustRun(t, p3, env, FingerprintPass(), SampleSubstitutePass())
	if tr := trace(t, p3, "sample-substitute"); tr.Substituted != 2 {
		t.Fatalf("trace = %+v, want both scans substituted", tr)
	}
	for _, id := range []int{0, 1} {
		if rate := p3.Node(id).Args.FloatOr("rate", 0); rate != minSampleRate {
			t.Fatalf("node %d rate = %v, want floored at %v", id, rate, minSampleRate)
		}
	}
}

// TestStatsRegistry pins the feedback store: lookups return what was
// observed, spill flags are sticky, the capacity bound evicts wholesale, and
// a nil registry is inert.
func TestStatsRegistry(t *testing.T) {
	r := NewStatsRegistry(2)
	r.Observe("a", ObservedStats{Rows: 5, Bytes: 50})
	r.ObserveSpill("a")
	r.Observe("a", ObservedStats{Rows: 6, Bytes: 60}) // update keeps spill sticky
	got, ok := r.Lookup("a")
	if !ok || got.Rows != 6 || !got.Spilled {
		t.Fatalf("Lookup(a) = %+v %v, want rows 6 with sticky spill", got, ok)
	}
	r.Observe("b", ObservedStats{Rows: 1})
	r.Observe("c", ObservedStats{Rows: 2}) // over capacity: wholesale eviction
	if r.Len() > 2 {
		t.Fatalf("Len = %d, want capacity bound respected", r.Len())
	}
	if _, ok := r.Lookup("c"); !ok {
		t.Fatal("the entry that triggered eviction was itself dropped")
	}

	var nilReg *StatsRegistry
	nilReg.Observe("x", ObservedStats{Rows: 1})
	nilReg.ObserveSpill("x")
	if _, ok := nilReg.Lookup("x"); ok {
		t.Fatal("nil registry returned an entry")
	}
	if nilReg.Len() != 0 {
		t.Fatal("nil registry has nonzero length")
	}
}
