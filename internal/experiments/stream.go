package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/sqlengine"
)

// The stream experiment measures what morsel-driven execution buys: time to
// first output chunk should be decoupled from table size (it reflects one
// morsel of work, not the whole scan), the engine's peak buffered rows
// should stay near-constant as input grows for streaming shapes (filters
// and projections buffer nothing; a group-by buffers only its groups), and
// intra-operator parallelism should scale the drain across the worker grid.
// Buffered execution of the same statement is the baseline, and every
// streamed cell is checked cell-for-cell against it — a divergence fails the
// experiment (and dcbench exits nonzero) instead of producing a wrong table
// quickly.

// StreamCase is one (query shape, scale, workers) cell.
type StreamCase struct {
	Query string `json:"query"` // "filter" or "groupby"
	Scale int    `json:"scale"` // multiplier over the base row count
	Rows  int    `json:"rows"`
	// Workers is the morsel pipeline worker setting for the cell; 1 is the
	// serial baseline pipeline.
	Workers int `json:"workers"`
	// FirstChunkMs is the latency until the first chunk of rows exists —
	// what a remote client waits before seeing output.
	FirstChunkMs float64 `json:"first_chunk_ms"`
	// DrainMs is the wall time to pull the whole stream.
	DrainMs float64 `json:"drain_ms"`
	// BufferedMs is the wall time of the buffered (materialize-everything)
	// execution of the identical statement.
	BufferedMs float64 `json:"buffered_ms"`
	// PeakBufferedRows is the engine's maximum rows resident in pipeline
	// breakers during the drain — the memory-budget figure.
	PeakBufferedRows int `json:"peak_buffered_rows"`
	RowsOut          int `json:"rows_out"`
}

// SpillCase is one forced-spill cell: the same statement under a memory
// budget far below its state size, which the strict (spill-disabled) engine
// refuses with a BudgetError and the spill layer completes from disk.
type SpillCase struct {
	Query   string `json:"query"`
	Rows    int    `json:"rows"`
	Budget  int    `json:"budget"`
	Workers int    `json:"workers"`
	// SerialBudgetError is the error the strict spill-disabled run fails
	// with — evidence the budget genuinely does not fit in memory.
	SerialBudgetError string  `json:"serial_budget_error"`
	DrainMs           float64 `json:"drain_ms"`
	SpillRuns         int     `json:"spill_runs"`
	SpilledRows       int     `json:"spilled_rows"`
	SpilledBytes      int64   `json:"spilled_bytes"`
	PeakBufferedRows  int     `json:"peak_buffered_rows"`
	RowsOut           int     `json:"rows_out"`
}

// StreamResult is the full grid for BENCH_stream.json.
type StreamResult struct {
	BaseRows   int          `json:"base_rows"`
	ChunkRows  int          `json:"chunk_rows"`
	WorkerGrid []int        `json:"worker_grid"`
	Cases      []StreamCase `json:"cases"`
	Spill      []SpillCase  `json:"spill"`
}

// streamTable builds an n-row fact table without going through CSV, so the
// 100× scale stays cheap to construct.
func streamTable(n int) *dataset.Table {
	ids := make([]int64, n)
	ks := make([]int64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		ks[i] = int64(i % 13)
		vs[i] = float64(i%1000) / 10
	}
	return dataset.MustNewTable("facts",
		dataset.IntColumn("id", ids, nil),
		dataset.IntColumn("k", ks, nil),
		dataset.FloatColumn("v", vs, nil),
	)
}

// drainStream pulls a stream to completion, timing the first chunk and the
// full drain and assembling the chunks back into one table for the
// divergence check.
func drainStream(rs *sqlengine.RowStream) (full *dataset.Table, firstMs, drainMs float64, err error) {
	start := time.Now()
	seen := 0
	full, err = rs.Drain(func(*dataset.Table) error {
		if seen == 0 {
			firstMs = float64(time.Since(start).Microseconds()) / 1000
		}
		seen++
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	drainMs = float64(time.Since(start).Microseconds()) / 1000
	return full, firstMs, drainMs, nil
}

// Stream runs the grid: each query shape at 1×, 10×, and 100× of baseRows,
// across every worker setting in workerGrid (nil means 1, 2, 4, 8), plus the
// forced-spill cells.
func Stream(baseRows int, workerGrid []int) (*StreamResult, error) {
	if baseRows <= 0 {
		baseRows = 20_000
	}
	if len(workerGrid) == 0 {
		workerGrid = []int{1, 2, 4, 8}
	}
	queries := []struct{ name, sql string }{
		{"filter", "SELECT id, v FROM facts WHERE v > 25.0 AND k % 3 = 1"},
		{"groupby", "SELECT k, SUM(v), COUNT(*) FROM facts GROUP BY k"},
	}
	res := &StreamResult{BaseRows: baseRows, ChunkRows: sqlengine.DefaultChunkRows, WorkerGrid: workerGrid}
	for _, scale := range []int{1, 10, 100} {
		n := baseRows * scale
		catalog := sqlengine.NewMapCatalog(map[string]*dataset.Table{"facts": streamTable(n)})
		for _, q := range queries {
			stmt, err := sqlengine.Parse(q.sql)
			if err != nil {
				return nil, fmt.Errorf("stream: parsing %s: %w", q.name, err)
			}
			bufStart := time.Now()
			buf, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{})
			if err != nil {
				return nil, fmt.Errorf("stream: %s at %dx buffered: %w", q.name, scale, err)
			}
			bufMs := float64(time.Since(bufStart).Microseconds()) / 1000
			for _, workers := range workerGrid {
				rs, err := sqlengine.ExecStreamStmt(catalog, stmt, sqlengine.StreamOptions{Parallelism: workers})
				if err != nil {
					return nil, fmt.Errorf("stream: %s at %dx w=%d: %w", q.name, scale, workers, err)
				}
				full, firstMs, drainMs, err := drainStream(rs)
				if err != nil {
					return nil, fmt.Errorf("stream: %s at %dx w=%d drain: %w", q.name, scale, workers, err)
				}
				if !buf.Equal(full.WithName(buf.Name())) {
					return nil, fmt.Errorf("stream: %s at %dx w=%d: streamed table diverges from buffered execution (%d vs %d rows)",
						q.name, scale, workers, full.NumRows(), buf.NumRows())
				}
				res.Cases = append(res.Cases, StreamCase{
					Query: q.name, Scale: scale, Rows: n, Workers: workers,
					FirstChunkMs: firstMs, DrainMs: drainMs, BufferedMs: bufMs,
					PeakBufferedRows: rs.PeakBufferedRows(), RowsOut: full.NumRows(),
				})
			}
		}
	}
	if err := streamSpillCases(res, baseRows, workerGrid); err != nil {
		return nil, err
	}
	return res, nil
}

// streamSpillCases runs the forced-spill cells: a high-cardinality group-by
// whose state is an order of magnitude over the budget, strict first (must
// fail with a typed BudgetError), then with the spill layer (must complete
// from disk and match the unbudgeted buffered result).
func streamSpillCases(res *StreamResult, baseRows int, workerGrid []int) error {
	n := baseRows
	budget := n / 10
	if budget < 64 {
		budget = 64
	}
	catalog := sqlengine.NewMapCatalog(map[string]*dataset.Table{"facts": streamTable(n)})
	const sql = "SELECT id, SUM(v) AS sv, COUNT(*) AS c FROM facts GROUP BY id ORDER BY id"
	stmt, err := sqlengine.Parse(sql)
	if err != nil {
		return fmt.Errorf("stream: parsing spill query: %w", err)
	}
	buf, err := sqlengine.ExecStmtOptions(catalog, stmt, sqlengine.Options{})
	if err != nil {
		return fmt.Errorf("stream: spill buffered reference: %w", err)
	}
	serialWorkers := workerGrid[0]
	strict, err := sqlengine.ExecStreamStmt(catalog, stmt, sqlengine.StreamOptions{
		Parallelism: serialWorkers, MaxBufferedRows: budget, DisableSpill: true,
	})
	var strictErr error
	if err != nil {
		strictErr = err
	} else if _, strictErr = strict.Drain(nil); strictErr == nil {
		return fmt.Errorf("stream: spill case with budget %d and spill disabled completed; budget too large to force spill", budget)
	}
	var be *sqlengine.BudgetError
	if !errors.As(strictErr, &be) {
		return fmt.Errorf("stream: strict run failed with %v, want a BudgetError", strictErr)
	}
	for _, workers := range workerGrid {
		rs, err := sqlengine.ExecStreamStmt(catalog, stmt, sqlengine.StreamOptions{
			Parallelism: workers, MaxBufferedRows: budget,
		})
		if err != nil {
			return fmt.Errorf("stream: spill w=%d: %w", workers, err)
		}
		full, _, drainMs, err := drainStream(rs)
		if err != nil {
			return fmt.Errorf("stream: spill w=%d drain: %w", workers, err)
		}
		if !buf.Equal(full.WithName(buf.Name())) {
			return fmt.Errorf("stream: spill w=%d: spilled table diverges from buffered execution (%d vs %d rows)",
				workers, full.NumRows(), buf.NumRows())
		}
		ss := rs.SpillStats()
		if ss.SpilledRows == 0 {
			return fmt.Errorf("stream: spill w=%d: budget %d over %d groups spilled nothing", workers, budget, n)
		}
		res.Spill = append(res.Spill, SpillCase{
			Query: "groupby-wide", Rows: n, Budget: budget, Workers: workers,
			SerialBudgetError: strictErr.Error(), DrainMs: drainMs,
			SpillRuns: ss.Runs, SpilledRows: ss.SpilledRows, SpilledBytes: ss.SpilledBytes,
			PeakBufferedRows: rs.PeakBufferedRows(), RowsOut: full.NumRows(),
		})
	}
	return nil
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *StreamResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Morsel streaming: first-chunk latency, drain scaling, and engine peak memory (chunk=%d)\n", r.ChunkRows)
	b.WriteString("  query    scale  rows      workers  first_chunk(ms)  drain(ms)  buffered(ms)  peak_buffered_rows\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-8s %-6s %-9d %-8d %-16.3f %-10.2f %-13.2f %d\n",
			c.Query, fmt.Sprintf("%dx", c.Scale), c.Rows, c.Workers, c.FirstChunkMs, c.DrainMs, c.BufferedMs, c.PeakBufferedRows)
	}
	if len(r.Spill) > 0 {
		b.WriteString("Disk spill beyond the memory budget (strict run fails; spill completes from disk)\n")
		b.WriteString("  query        rows      budget  workers  drain(ms)  spill_runs  spilled_rows  peak_buffered_rows\n")
		for _, c := range r.Spill {
			fmt.Fprintf(&b, "  %-12s %-9d %-7d %-8d %-10.2f %-11d %-13d %d\n",
				c.Query, c.Rows, c.Budget, c.Workers, c.DrainMs, c.SpillRuns, c.SpilledRows, c.PeakBufferedRows)
		}
		fmt.Fprintf(&b, "  strict (spill disabled): %s\n", r.Spill[0].SerialBudgetError)
	}
	return b.String()
}

// JSON renders the result for BENCH_stream.json.
func (r *StreamResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
