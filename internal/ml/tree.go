package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TreeModel is a CART-style decision tree. It handles both regression
// (variance splitting) and classification over label-encoded targets
// (treated as regression to the label index, then rounded by callers).
type TreeModel struct {
	Features []string
	Root     *TreeNode
	MaxDepth int
	MinLeaf  int
}

// TreeNode is one node of the tree.
type TreeNode struct {
	// Leaf fields.
	IsLeaf bool
	Value  float64
	Count  int
	// Split fields.
	Feature   int
	Threshold float64
	Left      *TreeNode
	Right     *TreeNode
}

// TrainTree fits a regression tree with the given depth and leaf-size
// limits (defaults: depth 5, min leaf 2).
func TrainTree(m *Matrix, maxDepth, minLeaf int) (*TreeModel, error) {
	if len(m.Target) != len(m.Rows) {
		return nil, fmt.Errorf("ml: decision tree requires a target column")
	}
	if maxDepth <= 0 {
		maxDepth = 5
	}
	if minLeaf <= 0 {
		minLeaf = 2
	}
	idx := make([]int, len(m.Rows))
	for i := range idx {
		idx[i] = i
	}
	root := buildNode(m, idx, maxDepth, minLeaf)
	return &TreeModel{Features: m.Names, Root: root, MaxDepth: maxDepth, MinLeaf: minLeaf}, nil
}

func buildNode(m *Matrix, idx []int, depth, minLeaf int) *TreeNode {
	mean := 0.0
	for _, i := range idx {
		mean += m.Target[i]
	}
	mean /= float64(len(idx))
	node := &TreeNode{IsLeaf: true, Value: mean, Count: len(idx)}
	if depth == 0 || len(idx) < 2*minLeaf {
		return node
	}
	variance := 0.0
	for _, i := range idx {
		variance += (m.Target[i] - mean) * (m.Target[i] - mean)
	}
	if variance < 1e-12 {
		return node
	}
	bestFeature, bestThreshold, bestScore := -1, 0.0, math.Inf(1)
	for f := range m.Names {
		feature, threshold, score, ok := bestSplit(m, idx, f, minLeaf)
		if ok && score < bestScore {
			bestFeature, bestThreshold, bestScore = feature, threshold, score
		}
	}
	if bestFeature < 0 || bestScore >= variance {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if m.Rows[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		return node
	}
	node.IsLeaf = false
	node.Feature = bestFeature
	node.Threshold = bestThreshold
	node.Left = buildNode(m, left, depth-1, minLeaf)
	node.Right = buildNode(m, right, depth-1, minLeaf)
	return node
}

// bestSplit finds the threshold on feature f minimizing the summed child
// variance, scanning split points between sorted distinct values.
func bestSplit(m *Matrix, idx []int, f, minLeaf int) (feature int, threshold, score float64, ok bool) {
	order := append([]int{}, idx...)
	sort.Slice(order, func(a, b int) bool { return m.Rows[order[a]][f] < m.Rows[order[b]][f] })
	n := len(order)
	// Prefix sums of y and y² enable O(1) variance at each split point.
	prefY := make([]float64, n+1)
	prefY2 := make([]float64, n+1)
	for i, ri := range order {
		y := m.Target[ri]
		prefY[i+1] = prefY[i] + y
		prefY2[i+1] = prefY2[i] + y*y
	}
	best := math.Inf(1)
	bestThresh := 0.0
	found := false
	for i := minLeaf; i <= n-minLeaf; i++ {
		lo, hi := m.Rows[order[i-1]][f], m.Rows[order[i]][f]
		if lo == hi {
			continue
		}
		ssLeft := prefY2[i] - prefY[i]*prefY[i]/float64(i)
		nr := float64(n - i)
		sumR := prefY[n] - prefY[i]
		ssRight := (prefY2[n] - prefY2[i]) - sumR*sumR/nr
		if total := ssLeft + ssRight; total < best {
			best = total
			bestThresh = (lo + hi) / 2
			found = true
		}
	}
	return f, bestThresh, best, found
}

// Predict implements Model.
func (tm *TreeModel) Predict(features [][]float64) []float64 {
	out := make([]float64, len(features))
	for i, row := range features {
		node := tm.Root
		for !node.IsLeaf {
			f := node.Feature
			var x float64
			if f < len(row) {
				x = row[f]
			}
			if x <= node.Threshold {
				node = node.Left
			} else {
				node = node.Right
			}
		}
		out[i] = node.Value
	}
	return out
}

// Kind implements Model.
func (tm *TreeModel) Kind() string { return "decision-tree" }

// Explain implements Model.
func (tm *TreeModel) Explain() string {
	var b strings.Builder
	b.WriteString("Fitted a decision tree:\n")
	tm.describe(tm.Root, 0, &b)
	return strings.TrimRight(b.String(), "\n")
}

func (tm *TreeModel) describe(node *TreeNode, depth int, b *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	if node.IsLeaf {
		fmt.Fprintf(b, "%spredict %.4g (%d rows)\n", indent, node.Value, node.Count)
		return
	}
	fmt.Fprintf(b, "%sif %s <= %.4g:\n", indent, tm.Features[node.Feature], node.Threshold)
	tm.describe(node.Left, depth+1, b)
	fmt.Fprintf(b, "%selse:\n", indent)
	tm.describe(node.Right, depth+1, b)
}

// Depth returns the tree's realized depth.
func (tm *TreeModel) Depth() int { return nodeDepth(tm.Root) }

func nodeDepth(n *TreeNode) int {
	if n == nil || n.IsLeaf {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
