package board

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/faults"
)

func smallTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	tb, err := dataset.ReadCSVString("t", "a\n1\n")
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	return tb
}

func TestPublishPinsAndVersions(t *testing.T) {
	h := NewHub()
	h.SetClock(faults.NewVirtualClock(time.Unix(0, 0)))
	b, err := h.Create("ops", "Ops board", "alice")
	if err != nil {
		t.Fatal(err)
	}
	u1 := b.Publish("revenue", Update{Message: "v1"})
	u2 := b.Publish("revenue", Update{Message: "v2", Degraded: true, DegradedNote: "sampled"})
	u3 := b.Publish("errors", Update{Message: "e1"})
	if u1.Version != 1 || u2.Version != 2 || u3.Version != 3 {
		t.Fatalf("versions = %d,%d,%d; want 1,2,3", u1.Version, u2.Version, u3.Version)
	}
	snap := b.Snapshot()
	if snap.Version != 3 || len(snap.Tiles) != 2 {
		t.Fatalf("snapshot version=%d tiles=%d", snap.Version, len(snap.Tiles))
	}
	if snap.Tiles[0].Tile != "revenue" || snap.Tiles[0].Last.Message != "v2" || !snap.Tiles[0].Last.Degraded {
		t.Fatalf("revenue tile not pinned to latest: %+v", snap.Tiles[0])
	}
	if snap.Tiles[0].Updates != 2 || snap.Tiles[1].Updates != 1 {
		t.Fatalf("tile update counts wrong: %+v", snap.Tiles)
	}
}

func TestSubscribeBacklogThenLive(t *testing.T) {
	h := NewHub()
	b, _ := h.Create("ops", "", "alice")
	b.Publish("a", Update{Message: "1"})
	b.Publish("a", Update{Message: "2"})

	sub, backlog, err := b.Subscribe(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if len(backlog) != 1 || backlog[0].Message != "2" {
		t.Fatalf("backlog = %+v; want just version 2", backlog)
	}
	b.Publish("a", Update{Message: "3"})
	got := <-sub.C
	if got.Message != "3" || got.Version != 3 {
		t.Fatalf("live update = %+v", got)
	}
}

func TestSlowConsumerEvicted(t *testing.T) {
	h := NewHub()
	b, _ := h.Create("ops", "", "alice")
	sub, _, err := b.Subscribe(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("a", Update{Message: "1"}) // fills the buffer
	b.Publish("a", Update{Message: "2"}) // overflows: evict
	// The channel must close after draining the buffered update.
	u, ok := <-sub.C
	if !ok || u.Message != "1" {
		t.Fatalf("first recv = %+v ok=%v", u, ok)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel still open after eviction")
	}
	if sub.Err() != ErrSlowConsumer {
		t.Fatalf("Err() = %v; want ErrSlowConsumer", sub.Err())
	}
	if n := b.subscriberCount(); n != 0 {
		t.Fatalf("subscriberCount = %d after eviction", n)
	}
	if st := h.Stats(); st.Evictions != 1 || st.Publishes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeleteEndsSubscriptions(t *testing.T) {
	h := NewHub()
	b, _ := h.Create("ops", "", "alice")
	sub, _, err := b.Subscribe(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Delete("ops") {
		t.Fatal("Delete returned false")
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel open after board delete")
	}
	if sub.Err() != ErrDeleted {
		t.Fatalf("Err() = %v; want ErrDeleted", sub.Err())
	}
	if _, _, err := b.Subscribe(0, 1); err != ErrDeleted {
		t.Fatalf("Subscribe on deleted board = %v; want ErrDeleted", err)
	}
	if _, ok := h.Get("ops"); ok {
		t.Fatal("Get found deleted board")
	}
}

func TestHistoryRingCapped(t *testing.T) {
	h := NewHub()
	h.retain = 4
	b, _ := h.Create("ops", "", "alice")
	for i := 1; i <= 10; i++ {
		b.Publish("a", Update{Message: fmt.Sprintf("m%d", i)})
	}
	_, backlog, err := b.Subscribe(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 4 || backlog[0].Version != 7 || backlog[3].Version != 10 {
		t.Fatalf("backlog = %+v; want versions 7..10", backlog)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub()
	b, _ := h.Create("ops", "", "alice")
	tb := smallTable(t, 1)

	const publishers, perPublisher = 4, 50
	var wg sync.WaitGroup
	// Churning subscribers with tiny buffers: most get evicted; the test
	// is that nothing deadlocks or races and every channel terminates.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, backlog, err := b.Subscribe(0, 2)
			if err != nil {
				t.Error(err)
				return
			}
			_ = backlog
			for range sub.C {
			}
			if sub.Err() != ErrSlowConsumer && sub.Err() != nil {
				t.Errorf("unexpected sub error %v", sub.Err())
			}
		}()
	}
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(fmt.Sprintf("tile%d", p), Update{Table: tb, Message: "m"})
			}
		}(p)
	}
	// Close any survivors so the range loops end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < publishers*perPublisher; i++ {
		}
		b.mu.Lock()
		subs := make([]*Subscription, 0, len(b.subs))
		for s := range b.subs {
			subs = append(subs, s)
		}
		b.mu.Unlock()
		for _, s := range subs {
			s.Close()
		}
	}()
	wg.Wait()
	// Late close sweep: any subscriber still registered after publishers
	// finished gets closed so nothing leaks.
	b.mu.Lock()
	for s := range b.subs {
		delete(b.subs, s)
		s.finish(nil)
	}
	b.mu.Unlock()
	if got := b.Snapshot().Version; got != publishers*perPublisher {
		t.Fatalf("final version = %d; want %d", got, publishers*perPublisher)
	}
}
