// Package recipe implements §2.3's recipes: the serialized skill DAG that
// accompanies every artifact. A recipe is a portable, JSON-serializable
// list of steps that can be rendered as GEL (the default human view),
// Python API code, or consolidated SQL; replayed to reproduce the artifact;
// and refreshed to recompute it on the latest data.
package recipe

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"datachat/internal/dag"
	"datachat/internal/faults"
	"datachat/internal/skills"
)

// Step is one serialized skill call.
type Step struct {
	// Skill is the canonical skill name.
	Skill string `json:"skill"`
	// Inputs are the dataset names consumed (outputs of earlier steps or
	// external session datasets).
	Inputs []string `json:"inputs,omitempty"`
	// Output is the dataset name produced.
	Output string `json:"output,omitempty"`
	// Args are the skill parameters.
	Args skills.Args `json:"args,omitempty"`
}

// Recipe is a serialized skill DAG plus metadata.
type Recipe struct {
	// Name labels the recipe (usually the artifact name).
	Name string `json:"name"`
	// CreatedAt records when the recipe was captured.
	CreatedAt time.Time `json:"created_at"`
	// Steps are the skill calls in topological order.
	Steps []Step `json:"steps"`
}

// FromGraph serializes a DAG into a recipe stamped with the wall clock.
func FromGraph(name string, g *dag.Graph) (*Recipe, error) {
	return FromGraphAt(name, g, nil)
}

// FromGraphAt is FromGraph with an injected clock, so tests and replay
// tooling can produce byte-identical recipes. A nil clock uses real time.
// Output names are made explicit so the graph rebuilds with identical wiring.
func FromGraphAt(name string, g *dag.Graph, clock faults.Clock) (*Recipe, error) {
	if clock == nil {
		clock = faults.Real()
	}
	r := &Recipe{Name: name, CreatedAt: clock.Now().UTC()}
	for _, id := range g.Order() {
		node, err := g.Node(id)
		if err != nil {
			return nil, err
		}
		inv := node.Inv
		step := Step{
			Skill:  inv.Skill,
			Inputs: append([]string{}, inv.Inputs...),
			Output: node.OutputName(),
			Args:   inv.Args,
		}
		// Rewrite parent references to the parents' explicit output names.
		for i, p := range node.Parents {
			if p >= 0 {
				parent, err := g.Node(p)
				if err != nil {
					return nil, err
				}
				step.Inputs[i] = parent.OutputName()
			}
		}
		r.Steps = append(r.Steps, step)
	}
	return r, nil
}

// Graph rebuilds the DAG from the recipe.
func (r *Recipe) Graph() *dag.Graph {
	g := dag.NewGraph()
	for _, step := range r.Steps {
		g.Add(skills.Invocation{
			Skill:  step.Skill,
			Inputs: append([]string{}, step.Inputs...),
			Output: step.Output,
			Args:   step.Args,
		})
	}
	return g
}

// MarshalJSON gives recipes a stable JSON form.
func (r *Recipe) MarshalJSON() ([]byte, error) {
	type alias Recipe
	return json.Marshal((*alias)(r))
}

// Fingerprint hashes the recipe's canonical content — name and steps, but
// not CreatedAt — so two captures of the same pipeline compare equal no
// matter when they were taken.
func (r *Recipe) Fingerprint() (string, error) {
	canon := struct {
		Name  string `json:"name"`
		Steps []Step `json:"steps"`
	}{Name: r.Name, Steps: r.Steps}
	data, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("recipe: fingerprinting: %w", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// Encode serializes the recipe as indented JSON.
func (r *Recipe) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Decode parses a JSON recipe. Callers receiving recipes from outside the
// platform should run Validate before replaying them.
func Decode(data []byte) (*Recipe, error) {
	var r Recipe
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("recipe: decoding: %w", err)
	}
	if len(r.Steps) == 0 {
		return nil, fmt.Errorf("recipe: %q has no steps", r.Name)
	}
	return &r, nil
}

// GEL renders the recipe as numbered GEL lines — the view users see first
// (Figure 2a).
func (r *Recipe) GEL(reg *skills.Registry) ([]string, error) {
	lines := make([]string, len(r.Steps))
	for i, step := range r.Steps {
		sentence, err := reg.RenderGEL(skills.Invocation{
			Skill:  step.Skill,
			Inputs: step.Inputs,
			Output: step.Output,
			Args:   step.Args,
		})
		if err != nil {
			return nil, fmt.Errorf("recipe: rendering step %d: %w", i+1, err)
		}
		lines[i] = sentence
	}
	return lines, nil
}

// Python renders the recipe as a DataChat Python API program.
func (r *Recipe) Python(reg *skills.Registry) (string, error) {
	lines := make([]string, len(r.Steps))
	for i, step := range r.Steps {
		code, err := reg.RenderPython(skills.Invocation{
			Skill:  step.Skill,
			Inputs: step.Inputs,
			Output: step.Output,
			Args:   step.Args,
		})
		if err != nil {
			return "", fmt.Errorf("recipe: rendering step %d: %w", i+1, err)
		}
		lines[i] = code
	}
	return strings.Join(lines, "\n"), nil
}

// SQL renders the consolidated SQL for the recipe's final step when the
// whole tail is relational; it errors otherwise (technical users get SQL
// "where possible", per §2.3).
func (r *Recipe) SQL(ex *dag.Executor) (string, error) {
	g := r.Graph()
	return ex.CompileSQL(g, g.Last())
}

// Replay rebuilds the DAG and executes it to the final step — the §2.3
// "refresh" interaction. Pass invalidate=true to drop cached sub-results
// so changed source data is re-read.
func (r *Recipe) Replay(ex *dag.Executor, invalidate bool) (*skills.Result, error) {
	if invalidate {
		ex.InvalidateCache()
	}
	g := r.Graph()
	last := g.Last()
	if last < 0 {
		return nil, fmt.Errorf("recipe: %q has no steps", r.Name)
	}
	return ex.Run(g, last)
}

// ReplayStep reports one step of a live replay.
type ReplayStep struct {
	// Index is the 0-based step position.
	Index int
	// Step is the recipe step that ran.
	Step Step
	// Result is its execution result.
	Result *skills.Result
	// Elapsed is the step's wall-clock execution time.
	Elapsed time.Duration
}

// LiveReplay executes the recipe step by step, invoking observe after each
// one — §2.3's "live replay of the steps … as if an expert was entering
// the steps for the first time". Returns the final result.
func (r *Recipe) LiveReplay(ex *dag.Executor, observe func(ReplayStep)) (*skills.Result, error) {
	g := r.Graph()
	var final *skills.Result
	for i, id := range g.Order() {
		start := time.Now()
		res, err := ex.Run(g, id)
		if err != nil {
			return nil, fmt.Errorf("recipe: step %d (%s) failed: %w", i+1, r.Steps[i].Skill, err)
		}
		final = res
		if observe != nil {
			observe(ReplayStep{Index: i, Step: r.Steps[i], Result: res, Elapsed: time.Since(start)})
		}
	}
	if final == nil {
		return nil, fmt.Errorf("recipe: %q has no steps", r.Name)
	}
	return final, nil
}

// Validate statically checks a recipe against a skill registry before
// replay: every step must name a known skill, carry its required
// parameters, and consume datasets that are either earlier steps' outputs
// or plausibly external. Decoded recipes from outside the platform go
// through this before they touch an executor.
func (r *Recipe) Validate(reg *skills.Registry) error {
	if len(r.Steps) == 0 {
		return fmt.Errorf("recipe: %q has no steps", r.Name)
	}
	produced := map[string]bool{}
	for i, step := range r.Steps {
		def, err := reg.Lookup(step.Skill)
		if err != nil {
			return fmt.Errorf("recipe: step %d: %w", i+1, err)
		}
		for _, p := range def.Params {
			if !p.Required {
				continue
			}
			if _, ok := step.Args[p.Name]; !ok {
				return fmt.Errorf("recipe: step %d (%s) is missing required parameter %q",
					i+1, def.Name, p.Name)
			}
		}
		if step.Output != "" {
			if produced[step.Output] {
				return fmt.Errorf("recipe: step %d redefines output %q", i+1, step.Output)
			}
			produced[step.Output] = true
		}
		// Forward references are impossible in a topologically ordered
		// recipe: an input must be an earlier output or an external name
		// that no LATER step produces.
		for _, in := range step.Inputs {
			if produced[in] {
				continue
			}
			for j := i + 1; j < len(r.Steps); j++ {
				if r.Steps[j].Output == in {
					return fmt.Errorf("recipe: step %d consumes %q before step %d produces it",
						i+1, in, j+1)
				}
			}
		}
	}
	return nil
}
