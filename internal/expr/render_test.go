package expr

import (
	"strings"
	"testing"

	"datachat/internal/dataset"
)

func TestStringRenderingAllNodes(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Not(Column("flag")), "(NOT flag)"},
		{Neg(Column("x")), "(-x)"},
		{&IsNull{Operand: Column("x")}, "(x IS NULL)"},
		{&IsNull{Operand: Column("x"), Negated: true}, "(x IS NOT NULL)"},
		{&In{Operand: Column("x"), List: []Expr{Lit(dataset.Int(1)), Lit(dataset.Int(2))}},
			"(x IN (1, 2))"},
		{&In{Operand: Column("x"), List: []Expr{Lit(dataset.Str("a"))}, Negated: true},
			"(x NOT IN ('a'))"},
		{&Between{Operand: Column("x"), Lo: Lit(dataset.Int(1)), Hi: Lit(dataset.Int(9))},
			"(x BETWEEN 1 AND 9)"},
		{&Between{Operand: Column("x"), Lo: Lit(dataset.Int(1)), Hi: Lit(dataset.Int(9)), Negated: true},
			"(x NOT BETWEEN 1 AND 9)"},
		{&Case{
			Whens: []When{{Cond: Bin(OpGt, Column("x"), Lit(dataset.Int(0))), Result: Lit(dataset.Str("pos"))}},
			Else:  Lit(dataset.Str("neg")),
		}, "CASE WHEN (x > 0) THEN 'pos' ELSE 'neg' END"},
		{Func("ROUND", Column("x"), Lit(dataset.Int(2))), "ROUND(x, 2)"},
		{Lit(dataset.Null), "NULL"},
		{Lit(dataset.Str("it's")), "'it''s'"},
		{Bin(OpConcat, Column("a"), Column("b")), "(a || b)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestColumnsCollectionAllNodes(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Not(Column("a")), "a"},
		{&IsNull{Operand: Column("b")}, "b"},
		{&Between{Operand: Column("a"), Lo: Column("b"), Hi: Column("c")}, "a,b,c"},
		{&Case{
			Whens: []When{{Cond: Column("a"), Result: Column("b")}},
			Else:  Column("c"),
		}, "a,b,c"},
		{Func("CONCAT", Column("a"), Column("b")), "a,b"},
		{Lit(dataset.Int(1)), ""},
	}
	for _, c := range cases {
		got := strings.Join(c.e.Columns(nil), ",")
		if got != c.want {
			t.Errorf("Columns(%s) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestUnaryEvalErrors(t *testing.T) {
	if _, err := Neg(Lit(dataset.Str("x"))).Eval(nil); err == nil {
		t.Error("negating a string should error")
	}
	if _, err := Not(Lit(dataset.Str("x"))).Eval(nil); err == nil {
		t.Error("NOT of a string should error")
	}
	if got, _ := Not(Lit(dataset.Bool(true))).Eval(nil); got.B {
		t.Error("NOT true should be false")
	}
	if got, _ := Not(Lit(dataset.Int(0))).Eval(nil); !got.B {
		t.Error("NOT 0 should be true")
	}
}

func TestFunctionTypeErrors(t *testing.T) {
	bad := []Expr{
		Func("ABS", Lit(dataset.Str("x"))),
		Func("POW", Lit(dataset.Str("x")), Lit(dataset.Int(2))),
		Func("ROUND", Lit(dataset.Str("x"))),
		Func("SUBSTR", Lit(dataset.Str("x")), Lit(dataset.Str("y"))),
		Func("YEAR", Lit(dataset.Int(3))),
		Func("CAST", Lit(dataset.Int(3)), Lit(dataset.Str("madeuptype"))),
		Func("ABS", Lit(dataset.Int(1)), Lit(dataset.Int(2))), // arity
		Func("ROUND"), // arity
	}
	for _, e := range bad {
		if _, err := e.Eval(nil); err == nil {
			t.Errorf("%s should error", e)
		}
	}
}

func TestMoreErrorPropagation(t *testing.T) {
	// Errors inside operands surface through every composite node.
	bad := Column("missing")
	env := MapEnv{}
	nodes := []Expr{
		Bin(OpAdd, bad, Lit(dataset.Int(1))),
		Bin(OpAnd, bad, Lit(dataset.Bool(true))),
		Bin(OpOr, Lit(dataset.Bool(false)), bad),
		Not(bad),
		&IsNull{Operand: bad},
		&In{Operand: bad, List: []Expr{Lit(dataset.Int(1))}},
		&In{Operand: Lit(dataset.Int(1)), List: []Expr{bad}},
		&Between{Operand: bad, Lo: Lit(dataset.Int(1)), Hi: Lit(dataset.Int(2))},
		&Between{Operand: Lit(dataset.Int(1)), Lo: bad, Hi: Lit(dataset.Int(2))},
		&Case{Whens: []When{{Cond: bad, Result: Lit(dataset.Int(1))}}},
		Func("ABS", bad),
	}
	for _, e := range nodes {
		if _, err := e.Eval(env); err == nil {
			t.Errorf("%s should propagate the lookup error", e)
		}
	}
}

func TestStringPlusConcatenation(t *testing.T) {
	got, err := Bin(OpAdd, Lit(dataset.Str("a")), Lit(dataset.Int(1))).Eval(nil)
	if err != nil || got.S != "a1" {
		t.Errorf("string + = %v, %v", got, err)
	}
	if _, err := Bin(OpSub, Lit(dataset.Str("a")), Lit(dataset.Int(1))).Eval(nil); err == nil {
		t.Error("string - should error")
	}
}
