package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"datachat/internal/core"
	"datachat/internal/faults"
	"datachat/internal/session"
	"datachat/internal/wire"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxInFlight <= 0 {
		t.Fatalf("MaxInFlight = %d, want > 0", cfg.MaxInFlight)
	}
	if cfg.MaxQueue != 0 {
		t.Fatalf("MaxQueue = %d, want 0 (zero value queues nothing)", cfg.MaxQueue)
	}
	cfg = Config{MaxQueue: -1}.withDefaults()
	if cfg.MaxQueue != 2*cfg.MaxInFlight {
		t.Fatalf("MaxQueue = %d, want 2*MaxInFlight = %d", cfg.MaxQueue, 2*cfg.MaxInFlight)
	}
	if cfg.DefaultMaxRows != 100 || cfg.MaxPageRows != 10000 {
		t.Fatalf("row caps = (%d, %d), want (100, 10000)", cfg.DefaultMaxRows, cfg.MaxPageRows)
	}
}

func TestTuningDeadlines(t *testing.T) {
	s := New(core.New(), Config{DefaultDeadline: 2 * time.Second, MaxDeadline: 5 * time.Second})
	if got := s.tuning(0).Deadline; got != 2*time.Second {
		t.Fatalf("default deadline = %v, want 2s", got)
	}
	if got := s.tuning(1000).Deadline; got != time.Second {
		t.Fatalf("asked deadline = %v, want 1s", got)
	}
	if got := s.tuning(60_000).Deadline; got != 5*time.Second {
		t.Fatalf("capped deadline = %v, want 5s", got)
	}
	// With a cap but no default, an unbounded ask is still capped.
	s = New(core.New(), Config{MaxDeadline: 3 * time.Second})
	if got := s.tuning(0).Deadline; got != 3*time.Second {
		t.Fatalf("uncapped ask with MaxDeadline = %v, want 3s", got)
	}
}

func TestErrStatus(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{session.ErrBusy, http.StatusConflict, wire.CodeBusy},
		{fmt.Errorf("session: wrapped: %w", session.ErrBusy), http.StatusConflict, wire.CodeBusy},
		{errThrottled, http.StatusTooManyRequests, wire.CodeThrottled},
		{errDraining, http.StatusServiceUnavailable, wire.CodeDraining},
		{faults.ErrDeadline, http.StatusGatewayTimeout, wire.CodeDeadline},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, wire.CodeDeadline},
		// A client disconnect is not a deadline expiry: distinct status and
		// code, and countRefusal leaves deadline504 untouched for 499s.
		{context.Canceled, statusClientClosedRequest, wire.CodeCanceled},
		{fmt.Errorf("run: %w", context.Canceled), statusClientClosedRequest, wire.CodeCanceled},
		{errors.New(`core: no session "x"`), http.StatusNotFound, wire.CodeNotFound},
		{errors.New(`artifact: no artifact "kpis"`), http.StatusNotFound, wire.CodeNotFound},
		{errors.New(`artifact: invalid or revoked link`), http.StatusNotFound, wire.CodeNotFound},
		{errors.New(`session: bob cannot run requests`), http.StatusForbidden, wire.CodeDenied},
		{errors.New(`artifact: ann has no access to "kpis"`), http.StatusForbidden, wire.CodeDenied},
		{errors.New(`gel: cannot understand "frobnicate"`), http.StatusBadRequest, wire.CodeBadRequest},
		{errors.New(`pyapi: unexpected token`), http.StatusBadRequest, wire.CodeBadRequest},
		{errors.New(`server: file name must not be empty`), http.StatusBadRequest, wire.CodeBadRequest},
		{errors.New("boom"), http.StatusInternalServerError, wire.CodeInternal},
	}
	for _, c := range cases {
		status, code := errStatus(c.err)
		if status != c.status || code != c.code {
			t.Errorf("errStatus(%q) = (%d, %s), want (%d, %s)", c.err, status, code, c.status, c.code)
		}
	}
}

func TestAdmitRefusesWhenFull(t *testing.T) {
	s := New(core.New(), Config{MaxInFlight: 1, MaxQueue: 0})
	if err := s.admit(context.Background(), classInteractive, "t"); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := s.admit(context.Background(), classInteractive, "t"); !errors.Is(err, errThrottled) {
		t.Fatalf("second admit = %v, want errThrottled", err)
	}
	s.release(classInteractive)
	if err := s.admit(context.Background(), classInteractive, "t"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	s.release(classInteractive)
}

func TestAdmitQueuesUntilCancel(t *testing.T) {
	s := New(core.New(), Config{MaxInFlight: 1, MaxQueue: 1})
	if err := s.admit(context.Background(), classInteractive, "t"); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.admit(ctx, classInteractive, "t") }()
	// The queued waiter blocks until its context dies.
	select {
	case err := <-errc:
		t.Fatalf("queued admit returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued admit = %v, want context.Canceled", err)
	}
	s.release(classInteractive)
}

func TestAdmitRefusesWhileDraining(t *testing.T) {
	s := New(core.New(), Config{MaxInFlight: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with nothing in flight: %v", err)
	}
	if err := s.admit(context.Background(), classInteractive, "t"); !errors.Is(err, errDraining) {
		t.Fatalf("admit while draining = %v, want errDraining", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
}
