package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffEnvelopeProperties: for any policy, the un-jittered envelope is
// monotonically non-decreasing and capped at MaxDelay.
func TestBackoffEnvelopeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := RetryPolicy{
			MaxAttempts: 2 + rng.Intn(20),
			BaseDelay:   time.Duration(rng.Intn(200)) * time.Millisecond,
			MaxDelay:    time.Duration(1+rng.Intn(5000)) * time.Millisecond,
			Multiplier:  0.5 + rng.Float64()*4,
		}
		prev := time.Duration(0)
		for n := 1; n <= 30; n++ {
			env := p.Envelope(n)
			if env < prev {
				t.Fatalf("trial %d: envelope not monotone at n=%d: %v < %v (policy %+v)", trial, n, env, prev, p)
			}
			if env > p.normalized().MaxDelay {
				t.Fatalf("trial %d: envelope %v exceeds cap %v at n=%d", trial, env, p.normalized().MaxDelay, n)
			}
			if env <= 0 {
				t.Fatalf("trial %d: non-positive envelope %v at n=%d", trial, env, n)
			}
			prev = env
		}
	}
}

// TestBackoffJitterBounds: for any seed, every jittered delay stays within
// [env*(1-J), env*(1+J)] and never exceeds MaxDelay.
func TestBackoffJitterBounds(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := RetryPolicy{
			MaxAttempts: 10,
			BaseDelay:   7 * time.Millisecond,
			MaxDelay:    900 * time.Millisecond,
			Multiplier:  2.3,
			JitterFrac:  0.4,
			Seed:        seed,
		}
		for n, d := range p.Delays(12) {
			env := float64(p.Envelope(n + 1))
			lo := time.Duration(env * (1 - p.JitterFrac) * 0.999)
			hi := time.Duration(env * (1 + p.JitterFrac) * 1.001)
			if hi > p.MaxDelay {
				hi = p.MaxDelay
			}
			if d < lo || d > hi {
				t.Fatalf("seed %d retry %d: delay %v outside [%v, %v]", seed, n+1, d, lo, hi)
			}
		}
	}
}

// TestBackoffDelaysDeterministic: the schedule is a pure function of the
// seed.
func TestBackoffDelaysDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, JitterFrac: 0.5, Seed: 42}
	a, b := p.Delays(10), p.Delays(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs between identical policies: %v vs %v", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 43
	c := p2.Delays(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

// TestDoRetriesUntilSuccess: transient errors are retried, the virtual clock
// accumulates exactly the policy's schedule, and no wall-clock sleeping
// happens.
func TestDoRetriesUntilSuccess(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, JitterFrac: 0.3, Seed: 7}
	fails := 3
	start := time.Now()
	v, stats, err := Do(context.Background(), clock, p, time.Time{}, nil, func() (int, error) {
		if fails > 0 {
			fails--
			return 0, &Error{Op: "scan", Kind: Throttled, Class: Transient}
		}
		return 99, nil
	})
	if err != nil || v != 99 {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if stats.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", stats.Attempts)
	}
	want := time.Duration(0)
	for _, d := range p.Delays(3) {
		want += d
	}
	if stats.Backoff != want || clock.Slept() != want {
		t.Fatalf("backoff = %v, clock slept %v, want %v", stats.Backoff, clock.Slept(), want)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual-time retry took %v of wall clock", wall)
	}
}

// TestDoDeadlineProperty: for any seed, total virtual retry time never
// exceeds the configured deadline — a backoff that would cross it is not
// taken.
func TestDoDeadlineProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		start := time.Unix(1000, 0)
		clock := NewVirtualClock(start)
		budget := time.Duration(50+seed*13) * time.Millisecond
		deadline := start.Add(budget)
		p := RetryPolicy{MaxAttempts: 1000, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 1.7, JitterFrac: 0.5, Seed: seed}
		_, _, err := Do(context.Background(), clock, p, deadline, nil, func() (int, error) {
			return 0, &Error{Op: "scan", Kind: Throttled, Class: Transient}
		})
		if err == nil {
			t.Fatalf("seed %d: always-failing fn returned nil error", seed)
		}
		if !clock.Now().Before(deadline) && !clock.Now().Equal(deadline) {
			t.Fatalf("seed %d: virtual time %v passed the deadline %v", seed, clock.Now(), deadline)
		}
		if clock.Slept() > budget {
			t.Fatalf("seed %d: total retry time %v exceeds deadline budget %v", seed, clock.Slept(), budget)
		}
	}
}

// TestDoNonRetryable: permanent faults and plain errors return immediately
// with one attempt.
func TestDoNonRetryable(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	p := RetryPolicy{MaxAttempts: 10}
	perm := &Error{Op: "scan", Kind: Unavailable, Class: Permanent}
	_, stats, err := Do(context.Background(), clock, p, time.Time{}, nil, func() (int, error) {
		return 0, perm
	})
	if !errors.Is(err, perm) || stats.Attempts != 1 {
		t.Fatalf("permanent fault: err=%v attempts=%d", err, stats.Attempts)
	}
	plain := fmt.Errorf("no dataset named x")
	_, stats, err = Do(context.Background(), clock, p, time.Time{}, nil, func() (int, error) {
		return 0, plain
	})
	if !errors.Is(err, plain) || stats.Attempts != 1 {
		t.Fatalf("plain error: err=%v attempts=%d", err, stats.Attempts)
	}
	if clock.Slept() != 0 {
		t.Fatalf("non-retryable errors slept %v", clock.Slept())
	}
}

// TestDoExhaustion: a persistent transient error gives up after MaxAttempts
// with a wrapped cause.
func TestDoExhaustion(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}
	cause := &Error{Op: "scan", Kind: BlockIO, Class: Transient}
	_, stats, err := Do(context.Background(), clock, p, time.Time{}, nil, func() (int, error) {
		return 0, cause
	})
	if stats.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", stats.Attempts)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("exhaustion error does not wrap the cause: %v", err)
	}
	if !IsTransient(err) {
		t.Fatalf("wrapped exhaustion error lost its transient class: %v", err)
	}
}

// TestDoZeroPolicyFailsFast: the zero policy is single-attempt, and the
// error comes back unwrapped.
func TestDoZeroPolicyFailsFast(t *testing.T) {
	cause := &Error{Op: "scan", Kind: Throttled, Class: Transient}
	_, stats, err := Do(context.Background(), nil, RetryPolicy{}, time.Time{}, nil, func() (int, error) {
		return 0, cause
	})
	if stats.Attempts != 1 {
		t.Fatalf("zero policy attempts = %d, want 1", stats.Attempts)
	}
	if err != error(cause) {
		t.Fatalf("zero policy wrapped the error: %v", err)
	}
}

// TestDoContextCancel: cancelling the context aborts the retry loop.
func TestDoContextCancel(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 1000, BaseDelay: time.Millisecond}
	calls := 0
	_, _, err := Do(ctx, clock, p, time.Time{}, nil, func() (int, error) {
		calls++
		if calls == 3 {
			cancel()
		}
		return 0, &Error{Op: "scan", Kind: Throttled, Class: Transient}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times after cancel", calls)
	}
}
