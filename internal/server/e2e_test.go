package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"datachat/internal/client"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/server"
	"datachat/internal/skills"
	"datachat/internal/wire"
)

const salesCSV = `order_id,region,status,price,discount
1,east,Successful,120.5,0.1
2,west,Successful,80.0,0.0
3,east,Unsuccessful,45.0,0.2
4,north,Successful,210.0,0.15
5,west,Refunded,99.0,0.0
6,east,Successful,60.0,0.05
7,south,Successful,150.0,0.1
8,north,Unsuccessful,30.0,0.0
9,south,Successful,75.5,0.25
10,east,Successful,88.0,0.0
`

// newTestDeployment serves a fresh platform over a real listener and returns
// the server (for Shutdown/Stats) plus a client pointed at it.
func newTestDeployment(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(core.New(), cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, client.New(hs.URL)
}

// nodeOutput is the client-side naming convention for unnamed step outputs,
// mirroring dag.Node.OutputName.
func nodeOutput(resp *wire.RunResponse) string {
	return fmt.Sprintf("node%d", resp.Nodes[len(resp.Nodes)-1])
}

// runPipeline executes the quickstart GEL pipeline over the wire and returns
// the output dataset name of the final step.
func runPipeline(t *testing.T, c *client.Client, sess, user string) string {
	t.Helper()
	ctx := context.Background()
	lines := []string{
		"Load data from the file sales.csv",
		"Keep the rows where status = 'Successful'",
		"Create a new column revenue as price * (1 - discount)",
		"Compute the sum of revenue for each region and call the computed columns TotalRevenue",
		"Sort the rows by TotalRevenue in descending order",
	}
	current := ""
	for _, line := range lines {
		resp, err := c.RunGEL(ctx, sess, user, line, current)
		if err != nil {
			t.Fatalf("RunGEL(%q): %v", line, err)
		}
		current = nodeOutput(resp)
	}
	return current
}

// TestEndToEndGELPipeline drives the full acceptance path remotely: upload a
// file, open a session, run load → wrangle → visualize, page and stream the
// result, save it as an artifact, export the recipe in all dialects, mint a
// secret link, and resolve it account-less.
func TestEndToEndGELPipeline(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()

	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatalf("RegisterFile: %v", err)
	}
	if _, err := c.CreateSession(ctx, "quarterly", "ann"); err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	final := runPipeline(t, c, "quarterly", "ann")

	// Visualize the aggregate through GEL.
	chartResp, err := c.RunGEL(ctx, "quarterly", "ann",
		"Plot a bar chart with the x-axis region, the y-axis TotalRevenue", final)
	if err != nil {
		t.Fatalf("plot: %v", err)
	}
	if len(chartResp.Result.Charts) != 1 {
		t.Fatalf("charts = %d, want 1", len(chartResp.Result.Charts))
	}

	// Page the final dataset and check the aggregate itself.
	table, err := c.FetchTable(ctx, "quarterly", final, 2) // tiny pages to exercise pagination
	if err != nil {
		t.Fatalf("FetchTable: %v", err)
	}
	if table.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 regions", table.NumRows())
	}
	regions := table.Columns()[0]
	if got := regions.Value(0).S; got != "east" {
		t.Errorf("top region = %q, want east (highest TotalRevenue first)", got)
	}

	// The stream endpoint must reassemble to the identical table.
	streamed, err := c.StreamTable(ctx, "quarterly", final, 3)
	if err != nil {
		t.Fatalf("StreamTable: %v", err)
	}
	if !table.Equal(streamed) {
		t.Fatal("streamed table differs from paginated table")
	}

	// EXPLAIN over the wire: the plan report arrives as structured JSON.
	explain, err := c.Explain(ctx, "quarterly", final)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if explain == nil || len(explain.Nodes) == 0 {
		t.Fatalf("explain = %+v, want nodes", explain)
	}

	// The Python API rides the same run endpoint.
	pyResp, err := c.RunPython(ctx, "quarterly", "ann",
		fmt.Sprintf("top2 = %s.limit_rows(count = 2)", final))
	if err != nil {
		t.Fatalf("RunPython: %v", err)
	}
	if got := pyResp.Result.Table.TotalRows; got != 2 {
		t.Fatalf("python limit_rows rows = %d, want 2", got)
	}

	// A request with no dialect set is a typed 400.
	_, err = c.Run(ctx, "quarterly", wire.RunRequest{User: "ann"})
	if e, ok := err.(*wire.Error); !ok || e.Status != 400 || e.Code != wire.CodeBadRequest {
		t.Fatalf("empty run request = %v, want typed 400", err)
	}

	// Save, export the recipe, share by secret link.
	if _, err := c.SaveArtifact(ctx, "quarterly", wire.SaveArtifactRequest{
		User: "ann", Name: "revenue-by-region", Output: final,
	}); err != nil {
		t.Fatalf("SaveArtifact: %v", err)
	}
	rec, err := c.Recipe(ctx, "revenue-by-region", "ann")
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	if rec.Recipe == nil || len(rec.Recipe.Steps) == 0 {
		t.Fatal("recipe has no steps")
	}
	if len(rec.GEL) == 0 || rec.Python == "" || rec.SQL == "" {
		t.Fatalf("missing renderings: gel=%d python=%t sql=%t",
			len(rec.GEL), rec.Python != "", rec.SQL != "")
	}
	if !strings.Contains(rec.SQL, "SELECT") {
		t.Fatalf("SQL rendering = %q, want a SELECT", rec.SQL)
	}

	secret, err := c.MintLink(ctx, "revenue-by-region", "ann")
	if err != nil {
		t.Fatalf("MintLink: %v", err)
	}
	viaLink, err := c.ResolveLink(ctx, secret)
	if err != nil {
		t.Fatalf("ResolveLink: %v", err)
	}
	if viaLink.Name != "revenue-by-region" || viaLink.Table == nil {
		t.Fatalf("link resolved to %+v, want the saved table artifact", viaLink)
	}

	// Statsz reflects the work.
	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatalf("Statsz: %v", err)
	}
	if stats.Sessions != 1 || stats.Server.Requests == 0 || stats.Exec["tasks_run"] == 0 {
		t.Fatalf("statsz = %+v, want 1 session and nonzero work", stats)
	}
}

// registerBlockingSkill installs a skill that parks until release is closed,
// then emits a one-row table. started receives one value per execution start.
func registerBlockingSkill(t *testing.T, p *core.Platform, started chan<- struct{}, release <-chan struct{}) {
	t.Helper()
	err := p.Registry.Register(&skills.Definition{
		Name:     "Block",
		Category: skills.DataWrangling,
		Summary:  "test skill: block until released",
		GEL:      "Block",
		Volatile: true,
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			started <- struct{}{}
			<-release
			tab, err := dataset.NewTable(inv.Output, dataset.IntColumn("ok", []int64{1}, nil))
			if err != nil {
				return nil, err
			}
			return &skills.Result{Table: tab, Message: "unblocked"}, nil
		},
	})
	if err != nil {
		t.Fatalf("registering Block skill: %v", err)
	}
}

// program builds a one-step explicit program for a zero-input skill.
func program(skill, output string) []recipe.Step {
	return []recipe.Step{{Skill: skill, Output: output}}
}

// TestConcurrentClientsSerializeOr409 pins the §2.4 contract on the wire: N
// clients hammering one session each either execute (serialized by the
// session lock) or receive a typed 409; nothing else.
func TestConcurrentClientsSerializeOr409(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, c := newTestDeployment(t, server.Config{MaxInFlight: 16, MaxQueue: 32})
	registerBlockingSkill(t, srv.Platform(), started, release)
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "shared", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "shared", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RunGEL(ctx, "shared", "ann",
				"Keep the rows where status = 'Successful'", base)
		}(i)
	}
	wg.Wait()

	succeeded, busy := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			succeeded++
		case client.IsBusy(err):
			busy++
			if client.RetryAfter(err) <= 0 {
				t.Errorf("client %d: busy without retry_after hint", i)
			}
		default:
			t.Errorf("client %d: unexpected error %v", i, err)
		}
	}
	if succeeded == 0 {
		t.Fatal("no client succeeded")
	}
	if succeeded+busy != n {
		t.Fatalf("succeeded %d + busy %d != %d", succeeded, busy, n)
	}

	// Deterministic half: while a Block execution holds the session lock, a
	// concurrent request MUST come back as a typed 409 with a backoff hint.
	holding := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "shared", wire.RunRequest{User: "ann", Program: program("Block", "hold")})
		holding <- err
	}()
	<-started
	_, err = c.RunGEL(ctx, "shared", "ann", "Keep the rows where status = 'Successful'", base)
	if !client.IsBusy(err) {
		t.Fatalf("run against held lock = %v, want busy", err)
	}
	if client.RetryAfter(err) <= 0 {
		t.Error("busy refusal carries no retry_after hint")
	}
	close(release)
	if err := <-holding; err != nil {
		t.Fatalf("lock-holding run: %v", err)
	}
	if srv.Stats().Busy409 == 0 {
		t.Fatal("server did not count the 409")
	}
}

// TestBusyRetryAbsorbsContention opts server-created sessions into §2.4
// bounded busy-retry under a virtual clock: every concurrent client succeeds
// and no 409 ever reaches the wire, without a single real sleep.
func TestBusyRetryAbsorbsContention(t *testing.T) {
	vc := faults.NewVirtualClock(time.Unix(0, 0))
	srv, c := newTestDeployment(t, server.Config{
		MaxInFlight: 16,
		MaxQueue:    32,
		Clock:       vc,
		BusyRetry: faults.RetryPolicy{
			MaxAttempts: 500, BaseDelay: time.Millisecond,
			MaxDelay: 4 * time.Millisecond, Multiplier: 2,
		},
	})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "shared", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "shared", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RunGEL(ctx, "shared", "ann",
				"Keep the rows where status = 'Successful'", base)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if got := srv.Stats().Busy409; got != 0 {
		t.Fatalf("busy 409s = %d, want 0 (absorbed by busy-retry)", got)
	}
	if vc.Slept() == 0 {
		t.Log("note: no backoff was needed (lock never contended)")
	}
}

// TestAdmissionControl429 pins the throttling contract: with one execution
// slot and no queue, a second concurrent run is refused with 429 and a
// Retry-After hint while the first still runs.
func TestAdmissionControl429(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, c := newTestDeployment(t, server.Config{MaxInFlight: 1, MaxQueue: 0, RetryAfter: 2 * time.Second})
	registerBlockingSkill(t, srv.Platform(), started, release)
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s2", "ann"); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "s1", wire.RunRequest{
			User: "ann", Program: program("Block", "b1"),
		})
		done <- err
	}()
	<-started // the first run holds the only slot

	_, err := c.Run(ctx, "s2", wire.RunRequest{User: "ann", Program: program("Block", "b2")})
	if !client.IsThrottled(err) {
		t.Fatalf("second run = %v, want throttled", err)
	}
	if ra := client.RetryAfter(err); ra != 2000 {
		t.Errorf("retry_after = %dms, want 2000", ra)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if got := srv.Stats().Throttled429; got != 1 {
		t.Fatalf("throttled count = %d, want 1", got)
	}
}

// TestDeadlineExpiresTo504 drives a transiently failing skill under a
// virtual clock: retry backoff crosses the request deadline, the executor
// reports faults.ErrDeadline, and the wire maps it to a typed 504 — all
// without a real sleep.
func TestDeadlineExpiresTo504(t *testing.T) {
	vc := faults.NewVirtualClock(time.Unix(0, 0))
	srv, c := newTestDeployment(t, server.Config{
		MaxInFlight: 4,
		Clock:       vc,
		Retry: faults.RetryPolicy{
			MaxAttempts: 10, BaseDelay: 60 * time.Millisecond,
			MaxDelay: time.Second, Multiplier: 2,
		},
	})
	err := srv.Platform().Registry.Register(&skills.Definition{
		Name:     "Flaky",
		Category: skills.DataWrangling,
		Summary:  "test skill: always fails transiently",
		GEL:      "Flaky",
		Volatile: true,
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			return nil, &faults.Error{Op: "scan", Target: "flaky", Kind: faults.Throttled, Class: faults.Transient}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}

	_, err = c.Run(ctx, "s1", wire.RunRequest{
		User: "ann", Program: program("Flaky", "f1"), DeadlineMs: 100,
	})
	if !client.IsDeadline(err) {
		t.Fatalf("run = %v, want deadline error", err)
	}
	if got := srv.Stats().Deadline504; got != 1 {
		t.Fatalf("deadline 504s = %d, want 1", got)
	}
	if vc.Slept() == 0 {
		t.Fatal("no virtual backoff was taken before the deadline fired")
	}
}

// TestDrainOnShutdown pins graceful drain: an in-flight execution completes,
// new work is refused with a typed 503, and Shutdown returns once the last
// slot frees.
func TestDrainOnShutdown(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, c := newTestDeployment(t, server.Config{MaxInFlight: 2})
	registerBlockingSkill(t, srv.Platform(), started, release)
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}

	inFlight := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "s1", wire.RunRequest{User: "ann", Program: program("Block", "b1")})
		inFlight <- err
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Shutdown(sctx)
	}()
	// Wait until the drain flag is visible, then verify refusal.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	_, err := c.Run(ctx, "s1", wire.RunRequest{User: "ann", Program: program("Block", "b2")})
	if !client.IsDraining(err) {
		t.Fatalf("run during drain = %v, want draining error", err)
	}
	if err := c.Health(ctx); !client.IsDraining(err) && err == nil {
		t.Fatalf("healthz during drain = %v, want non-nil", err)
	}

	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned %v before in-flight work finished", err)
	default:
	}
	close(release)
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight run failed across drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := srv.Stats().Draining503; got == 0 {
		t.Fatal("draining refusals were not counted")
	}
}

// TestDegradedPropagatesOverWire pins §2.3 transparency end to end: a
// degraded skill result crosses the wire with its note, the artifact saved
// from it stays marked, and the executor counter surfaces in /statsz.
func TestDegradedPropagatesOverWire(t *testing.T) {
	srv, c := newTestDeployment(t, server.Config{})
	err := srv.Platform().Registry.Register(&skills.Definition{
		Name:     "StaleRead",
		Category: skills.DataWrangling,
		Summary:  "test skill: serves a degraded result",
		GEL:      "StaleRead",
		Volatile: true,
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			tab, err := dataset.NewTable(inv.Output, dataset.IntColumn("v", []int64{7}, nil))
			if err != nil {
				return nil, err
			}
			return &skills.Result{
				Table: tab, Degraded: true,
				DegradedNote: "served from snapshot aged 2h after primary scan failed",
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Run(ctx, "s1", wire.RunRequest{User: "ann", Program: program("StaleRead", "d1")})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Result.Degraded || !strings.Contains(resp.Result.DegradedNote, "snapshot") {
		t.Fatalf("result = %+v, want degraded with note", resp.Result)
	}
	a, err := c.SaveArtifact(ctx, "s1", wire.SaveArtifactRequest{User: "ann", Name: "stale", Output: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded || a.DegradedNote == "" {
		t.Fatalf("artifact = %+v, want degradation preserved", a)
	}
	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exec["degraded"] == 0 {
		t.Fatal("statsz does not count the degraded execution")
	}
}

// TestSaveArtifactRacesRun hammers one session with concurrent runs,
// artifact saves, and info reads. Saves resolve their anchor step inside the
// session under the §2.4 lock and the DAG is internally synchronized, so
// under -race none of this may trip the detector; every response must be a
// success or a typed busy refusal.
func TestSaveArtifactRacesRun(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{MaxInFlight: 16, MaxQueue: 32})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "racy", "ann"); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.RunGEL(ctx, "racy", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	base := nodeOutput(loaded)

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.RunGEL(ctx, "racy", "ann",
				"Keep the rows where status = 'Successful'", base)
			if err != nil && !client.IsBusy(err) {
				t.Errorf("run %d: %v", i, err)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.SaveArtifact(ctx, "racy", wire.SaveArtifactRequest{
				User: "ann", Name: fmt.Sprintf("racy-%d", i),
			})
			if err != nil && !client.IsBusy(err) {
				t.Errorf("save %d: %v", i, err)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.SessionInfo(ctx, "racy"); err != nil {
				t.Errorf("info %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// With the session quiet, a save anchored at the latest step must land.
	a, err := c.SaveArtifact(ctx, "racy", wire.SaveArtifactRequest{User: "ann", Name: "final"})
	if err != nil {
		t.Fatalf("final save: %v", err)
	}
	if a.Recipe == nil || len(a.Recipe.Steps) == 0 {
		t.Fatalf("artifact = %+v, want a sliced recipe", a)
	}
}

// TestSessionShareOverWire pins remote permission grants: a non-member is
// denied with 403 until the owner shares edit access over the wire.
func TestSessionShareOverWire(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "sales.csv", salesCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}
	_, err := c.RunGEL(ctx, "s1", "bob", "Load data from the file sales.csv", "")
	if e, ok := err.(*wire.Error); !ok || e.Status != 403 {
		t.Fatalf("outsider run = %v, want 403", err)
	}
	if err := c.ShareSession(ctx, "s1", "ann", "bob", "edit"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunGEL(ctx, "s1", "bob", "Load data from the file sales.csv", ""); err != nil {
		t.Fatalf("member run after share: %v", err)
	}
	info, err := c.SessionInfo(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Members) != 2 {
		t.Fatalf("members = %v, want ann and bob", info.Members)
	}
}

// ordersCSV builds a cloud fixture large enough that its estimated scan
// dwarfs a one-kilobyte request budget.
func ordersCSV(rows int) string {
	var sb strings.Builder
	sb.WriteString("id,region,amount\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,region-%d,%d\n", i, i%7, i*3)
	}
	return sb.String()
}

// TestCostBudgetOverWire pins the §3 budget knob end to end: a request whose
// estimated scan exceeds cost_budget_bytes gets a block-sampled answer that
// is flagged degraded with the substitution note and a cost summary showing
// the scan reduction; the same scan unbudgeted stays exact; and the degraded
// answer is never served from cache on a repeat run.
func TestCostBudgetOverWire(t *testing.T) {
	srv, c := newTestDeployment(t, server.Config{})
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 64)
	tab, err := dataset.ReadCSVString("orders", ordersCSV(4000))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := srv.Platform().ConnectDatabase(db); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}
	load := func(output string) []recipe.Step {
		return []recipe.Step{{
			Skill:  "LoadTable",
			Args:   skills.Args{"database": "warehouse", "table": "orders"},
			Output: output,
		}}
	}

	exact, err := c.Run(ctx, "s1", wire.RunRequest{User: "ann", Program: load("full")})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Result.Degraded {
		t.Fatalf("unbudgeted run degraded: %q", exact.Result.DegradedNote)
	}
	if exact.Cost == nil || exact.Cost.EstScanBytes <= 0 || exact.Cost.Substituted != 0 {
		t.Fatalf("unbudgeted cost summary = %+v, want positive scan estimate, no substitution", exact.Cost)
	}

	budgeted, err := c.Run(ctx, "s1", wire.RunRequest{
		User: "ann", Program: load("sampled"), CostBudgetBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !budgeted.Result.Degraded || !strings.Contains(budgeted.Result.DegradedNote, "block sample") {
		t.Fatalf("budgeted result = degraded=%v note=%q, want degraded block-sample note",
			budgeted.Result.Degraded, budgeted.Result.DegradedNote)
	}
	if budgeted.Cost == nil || budgeted.Cost.Substituted == 0 || budgeted.Cost.BudgetBytes != 1024 {
		t.Fatalf("budgeted cost summary = %+v, want substituted with budget echo", budgeted.Cost)
	}
	if budgeted.Cost.EstScanBytes*2 > exact.Cost.EstScanBytes {
		t.Fatalf("estimated scan %d not reduced >=2x from %d",
			budgeted.Cost.EstScanBytes, exact.Cost.EstScanBytes)
	}

	// The sampled scan is keyless (volatile, refingerprinted), so a repeat
	// can only re-execute — never a silent cache hit of a degraded answer.
	repeat, err := c.Run(ctx, "s1", wire.RunRequest{
		User: "ann", Program: load("sampled2"), CostBudgetBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.Result.Degraded {
		t.Fatal("repeat budgeted run lost the degraded flag (cached?)")
	}

	// Negative budgets are refused at the door.
	if _, err := c.Run(ctx, "s1", wire.RunRequest{
		User: "ann", Program: load("bad"), CostBudgetBytes: -5,
	}); err == nil {
		t.Fatal("negative cost_budget_bytes accepted")
	}
}

// TestDefaultCostBudgetConfig pins the server-wide default: with
// DefaultCostBudgetBytes configured, a request that sets no budget of its own
// still gets the substitution, while an explicit per-request budget overrides
// the default.
func TestDefaultCostBudgetConfig(t *testing.T) {
	srv, c := newTestDeployment(t, server.Config{DefaultCostBudgetBytes: 1024})
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 64)
	tab, err := dataset.ReadCSVString("orders", ordersCSV(4000))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := srv.Platform().ConnectDatabase(db); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, "s1", "ann"); err != nil {
		t.Fatal(err)
	}
	steps := []recipe.Step{{
		Skill:  "LoadTable",
		Args:   skills.Args{"database": "warehouse", "table": "orders"},
		Output: "d1",
	}}
	resp, err := c.Run(ctx, "s1", wire.RunRequest{User: "ann", Program: steps})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Result.Degraded || resp.Cost == nil || resp.Cost.Substituted == 0 {
		t.Fatalf("default budget did not substitute: degraded=%v cost=%+v",
			resp.Result.Degraded, resp.Cost)
	}
	if resp.Cost.BudgetBytes != 1024 {
		t.Fatalf("budget echo = %d, want 1024", resp.Cost.BudgetBytes)
	}

	// A generous explicit budget overrides the tight default.
	steps[0].Output = "d2"
	resp, err = c.Run(ctx, "s1", wire.RunRequest{
		User: "ann", Program: steps, CostBudgetBytes: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Degraded || (resp.Cost != nil && resp.Cost.Substituted != 0) {
		t.Fatalf("explicit ample budget still degraded: %+v", resp.Cost)
	}
}
