package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// grab runs acquire on its own goroutine and reports the result.
func grab(a *admission, ctx context.Context, class int, tenant string) chan error {
	ch := make(chan error, 1)
	go func() { ch <- a.acquire(ctx, class, tenant) }()
	return ch
}

func mustIdle(t *testing.T, ch chan error) {
	t.Helper()
	select {
	case err := <-ch:
		t.Fatalf("waiter returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
}

func mustGrant(t *testing.T, ch chan error) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("waiter failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never granted")
	}
}

// TestBackgroundCapBelowSlots: background in-flight is capped at maxBg even
// while execution slots are free, and the free slots stay available to
// interactive work.
func TestBackgroundCapBelowSlots(t *testing.T) {
	a := newAdmission(2, 1, 4)
	ctx := context.Background()
	if err := a.acquire(ctx, classBackground, "sched"); err != nil {
		t.Fatalf("first background: %v", err)
	}
	bg2 := grab(a, ctx, classBackground, "sched")
	mustIdle(t, bg2) // a slot is free, but the bg cap is reached
	if err := a.acquire(ctx, classInteractive, "u"); err != nil {
		t.Fatalf("interactive blocked by queued background: %v", err)
	}
	a.release(classBackground)
	mustGrant(t, bg2)
	a.release(classBackground)
	a.release(classInteractive)
	if inflight, queued := a.gauges(); inflight != 0 || queued != 0 {
		t.Fatalf("gauges after drain = (%d, %d)", inflight, queued)
	}
}

// TestInteractiveServedFirst: a released slot goes to the queued interactive
// request even when a background request queued before it.
func TestInteractiveServedFirst(t *testing.T) {
	a := newAdmission(1, 1, 4)
	ctx := context.Background()
	if err := a.acquire(ctx, classBackground, "sched"); err != nil {
		t.Fatal(err)
	}
	bg := grab(a, ctx, classBackground, "sched")
	mustIdle(t, bg)
	ia := grab(a, ctx, classInteractive, "u")
	mustIdle(t, ia)

	a.release(classBackground)
	mustGrant(t, ia) // interactive overtakes the earlier background waiter
	mustIdle(t, bg)
	a.release(classInteractive)
	mustGrant(t, bg)
	a.release(classBackground)

	snap := a.snapshot()
	if snap.Interactive.Admitted != 1 || snap.Background.Admitted != 2 {
		t.Fatalf("admitted = %+v", snap)
	}
	if snap.Interactive.Queued != 1 || snap.Background.Queued != 1 {
		t.Fatalf("queued = %+v", snap)
	}
}

// TestQueueBoundSharedAcrossClasses: the waiter queue is one bound, not one
// per class.
func TestQueueBoundSharedAcrossClasses(t *testing.T) {
	a := newAdmission(1, 1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx, classInteractive, "u"); err != nil {
		t.Fatal(err)
	}
	w := grab(a, ctx, classInteractive, "u")
	mustIdle(t, w)
	if err := a.acquire(ctx, classBackground, "sched"); !errors.Is(err, errThrottled) {
		t.Fatalf("over-queue acquire = %v, want errThrottled", err)
	}
	a.release(classInteractive)
	mustGrant(t, w)
	a.release(classInteractive)
	snap := a.snapshot()
	if snap.Background.Throttled != 1 {
		t.Fatalf("throttled = %+v", snap)
	}
	if st := snap.Tenants["sched"]; st.Throttled != 1 {
		t.Fatalf("tenant stats = %+v", snap.Tenants)
	}
}

// TestCancelWhileQueuedReleasesNothing: a cancelled waiter leaves the queue
// without leaking a slot or a queue position.
func TestCancelWhileQueuedReleasesNothing(t *testing.T) {
	a := newAdmission(1, 1, 2)
	if err := a.acquire(context.Background(), classInteractive, "u"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := grab(a, ctx, classInteractive, "u")
	mustIdle(t, w)
	cancel()
	if err := <-w; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v", err)
	}
	a.release(classInteractive)
	if inflight, queued := a.gauges(); inflight != 0 || queued != 0 {
		t.Fatalf("gauges = (%d, %d) after cancel+release", inflight, queued)
	}
	// The slot freed by the cancel is still grantable.
	if err := a.acquire(context.Background(), classInteractive, "u"); err != nil {
		t.Fatal(err)
	}
	a.release(classInteractive)
}

// TestTenantMapBounded: past maxTenantEntries distinct tenants, new ones
// aggregate under the overflow bucket instead of growing the map.
func TestTenantMapBounded(t *testing.T) {
	a := newAdmission(1000, 1000, 0)
	ctx := context.Background()
	for i := 0; i < maxTenantEntries+10; i++ {
		if err := a.acquire(ctx, classInteractive, fmt.Sprintf("tenant-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := a.snapshot()
	// Every admission took the fast path, so the median wait sits in the
	// lowest histogram bucket.
	if snap.Interactive.P50WaitMs > waitBoundsMs[0] {
		t.Fatalf("fast-path p50 wait = %vms", snap.Interactive.P50WaitMs)
	}
	if len(snap.Tenants) != maxTenantEntries+1 {
		t.Fatalf("tenant map has %d entries; want %d", len(snap.Tenants), maxTenantEntries+1)
	}
	if st := snap.Tenants[tenantOverflow]; st.Admitted != 10 {
		t.Fatalf("overflow bucket = %+v", st)
	}
}
