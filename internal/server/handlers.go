package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"datachat/internal/artifact"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/plan"
	"datachat/internal/pyapi"
	"datachat/internal/session"
	"datachat/internal/skills"
	"datachat/internal/sqlengine"
	"datachat/internal/wire"
)

// routes wires the HTTP surface. Execution endpoints (run, save, refresh)
// pass through admission control; metadata reads do not.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/files", s.handleRegisterFile)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{name}", s.handleSessionInfo)
	mux.HandleFunc("POST /v1/sessions/{name}/share", s.handleShareSession)
	mux.HandleFunc("POST /v1/sessions/{name}/run", s.handleRun)
	mux.HandleFunc("POST /v1/sessions/{name}/run/stream", s.handleRunStream)
	mux.HandleFunc("GET /v1/sessions/{name}/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/sessions/{name}/datasets/{dataset}", s.handleRows)
	mux.HandleFunc("GET /v1/sessions/{name}/datasets/{dataset}/stream", s.handleRowStream)
	mux.HandleFunc("POST /v1/sessions/{name}/artifacts", s.handleSaveArtifact)
	mux.HandleFunc("GET /v1/artifacts", s.handleListArtifacts)
	mux.HandleFunc("GET /v1/artifacts/{name}", s.handleGetArtifact)
	mux.HandleFunc("GET /v1/artifacts/{name}/recipe", s.handleRecipe)
	mux.HandleFunc("POST /v1/artifacts/{name}/share", s.handleShareArtifact)
	mux.HandleFunc("POST /v1/artifacts/{name}/links", s.handleMintLink)
	mux.HandleFunc("POST /v1/artifacts/{name}/refresh", s.handleRefreshArtifact)
	mux.HandleFunc("GET /v1/links/{secret}", s.handleResolveLink)
	mux.HandleFunc("POST /v1/schedules", s.handleCreateSchedule)
	mux.HandleFunc("GET /v1/schedules", s.handleListSchedules)
	mux.HandleFunc("GET /v1/schedules/{name}", s.handleGetSchedule)
	mux.HandleFunc("DELETE /v1/schedules/{name}", s.handleDeleteSchedule)
	mux.HandleFunc("POST /v1/schedules/{name}/run", s.handleRunSchedule)
	mux.HandleFunc("POST /v1/boards", s.handleCreateBoard)
	mux.HandleFunc("GET /v1/boards", s.handleListBoards)
	mux.HandleFunc("GET /v1/boards/{id}", s.handleGetBoard)
	mux.HandleFunc("DELETE /v1/boards/{id}", s.handleDeleteBoard)
	mux.HandleFunc("GET /v1/boards/{id}/subscribe", s.handleSubscribeBoard)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps err onto the wire: status code, typed payload, and a
// Retry-After hint on 409/429 so well-behaved clients back off.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	s.countRefusal(status)
	e := &wire.Error{Code: code, Message: err.Error()}
	if status == http.StatusConflict || status == http.StatusTooManyRequests {
		e.RetryAfterMs = s.cfg.RetryAfter.Milliseconds()
		secs := int64(s.cfg.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, e)
}

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("server: invalid request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	exec := s.platform.ExecStats()
	cache := s.platform.CacheStats()
	statsz := wire.Statsz{
		Sessions: len(s.platform.Sessions()),
		Server:   s.Stats(),
		Exec: map[string]int64{
			"tasks_run":          int64(exec.TasksRun),
			"sql_tasks":          int64(exec.SQLTasks),
			"direct_tasks":       int64(exec.DirectTasks),
			"nodes_consolidated": int64(exec.NodesConsolidated),
			"query_blocks":       int64(exec.QueryBlocks),
			"rows_materialized":  int64(exec.RowsMaterialized),
			"cache_hits":         int64(exec.CacheHits),
			"cache_misses":       int64(exec.CacheMisses),
			"retries":            int64(exec.Retries),
			"permanent_failures": int64(exec.PermanentFailures),
			"degraded":           int64(exec.Degraded),
			"streamed_chunks":    int64(exec.StreamedChunks),
			"streamed_rows":      int64(exec.StreamedRows),
			"spill_runs":         int64(exec.SpillRuns),
			"spilled_rows":       int64(exec.SpilledRows),
			"spilled_bytes":      exec.SpilledBytes,
			"peak_buffered_rows": int64(exec.PeakBufferedRows),
		},
		Cache: map[string]int64{
			"hits":      cache.Hits,
			"misses":    cache.Misses,
			"evictions": cache.Evictions,
			"entries":   int64(cache.Entries),
		},
		Vec: sqlengine.VecCounters(),
	}
	statsz.Admission = s.adm.snapshot()
	if s.sched != nil {
		st := s.sched.Stats()
		statsz.Scheduler = &wire.SchedulerStats{
			Jobs: st.Jobs, Done: st.Done, Runs: st.Runs, Failures: st.Failures,
			Skips: st.Skips, Degraded: st.Degraded, NodesTotal: st.NodesTotal,
			NodesChanged: st.NodesChanged, NodesUnchanged: st.NodesUnchanged,
			Published: st.Published,
		}
	}
	if s.boards != nil {
		st := s.boards.Stats()
		statsz.Boards = &wire.BoardHubStats{
			Boards: st.Boards, Tiles: st.Tiles, Subscribers: st.Subscribers,
			Publishes: st.Publishes, Evictions: st.Evictions, Backfills: st.Backfills,
		}
	}
	writeJSON(w, http.StatusOK, statsz)
}

func (s *Server) handleRegisterFile(w http.ResponseWriter, r *http.Request) {
	var req wire.FileRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if req.Name == "" {
		s.writeErr(w, fmt.Errorf("server: file name must not be empty"))
		return
	}
	s.platform.RegisterFile(req.Name, req.Content)
	writeJSON(w, http.StatusOK, map[string]string{"name": req.Name})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	sess, err := s.platform.CreateSession(req.Name, req.Owner)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// Sessions created over the wire inherit the server's busy-retry
	// policy, so §2.4 contention is absorbed server-side before any 409.
	if s.cfg.BusyRetry.Enabled() {
		sess.SetBusyRetry(s.cfg.BusyRetry, s.cfg.Clock)
	}
	writeJSON(w, http.StatusCreated, s.sessionInfo(sess))
}

func (s *Server) sessionInfo(sess *session.Session) wire.SessionInfo {
	return wire.SessionInfo{
		Name:    sess.Name,
		Owner:   sess.Owner,
		Members: sess.Members(),
		Steps:   sess.Graph().Len(),
		History: len(sess.History()),
	}
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.SessionsResponse{Sessions: s.platform.Sessions()})
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.platform.Session(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.sessionInfo(sess))
}

func (s *Server) handleShareSession(w http.ResponseWriter, r *http.Request) {
	var req wire.ShareSessionRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	sess, err := s.platform.Session(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	access, err := parseAccess(req.Access)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if err := sess.Share(req.By, req.With, access); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.sessionInfo(sess))
}

func parseAccess(a string) (artifact.Access, error) {
	switch a {
	case "view":
		return artifact.ViewAccess, nil
	case "edit":
		return artifact.EditAccess, nil
	default:
		return artifact.NoAccess, fmt.Errorf("server: invalid access %q (want view or edit)", a)
	}
}

// resolveProgram reduces a run request to skill invocations: one GEL
// sentence, a Python API script, a phrase request, or an explicit program.
func (s *Server) resolveProgram(sessionName string, req wire.RunRequest) ([]skills.Invocation, error) {
	set := 0
	for _, on := range []bool{req.GEL != "", req.Python != "", req.Phrase != "", len(req.Program) > 0} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("server: invalid run request: exactly one of gel, python, phrase, program required (got %d)", set)
	}
	switch {
	case req.GEL != "":
		inv, err := s.platform.ParseGEL(req.GEL, req.Current)
		if err != nil {
			return nil, err
		}
		return []skills.Invocation{inv}, nil
	case req.Python != "":
		prog, err := pyapi.Parse(req.Python)
		if err != nil {
			return nil, err
		}
		return pyapi.NewTranslator(s.platform.Registry).Invocations(prog)
	case req.Phrase != "":
		t, err := s.platform.TranslatePhrase(sessionName, req.Phrase, req.Dataset)
		if err != nil {
			return nil, err
		}
		inv := t.Invocation
		if len(inv.Inputs) == 0 {
			inv.Inputs = []string{req.Dataset}
		}
		return []skills.Invocation{inv}, nil
	default:
		invs := make([]skills.Invocation, len(req.Program))
		for i, step := range req.Program {
			invs[i] = skills.Invocation{
				Skill:  step.Skill,
				Inputs: append([]string{}, step.Inputs...),
				Output: step.Output,
				Args:   step.Args,
			}
		}
		return invs, nil
	}
}

// applyStreamTuning maps the request's morsel-pipeline knobs onto the
// per-request tuning: worker asks are capped at MaxStreamWorkers, the memory
// budget falls back to the server default, and the spill directory is always
// the server's (never client-chosen).
func (s *Server) applyStreamTuning(tune *session.Tuning, req wire.RunRequest) error {
	if req.StreamWorkers < -1 || req.MaxBufferedRows < 0 {
		return fmt.Errorf("server: invalid stream_workers=%d / max_buffered_rows=%d",
			req.StreamWorkers, req.MaxBufferedRows)
	}
	workers := req.StreamWorkers
	if workers == 0 {
		workers = s.cfg.StreamWorkers
	}
	if workers > s.cfg.MaxStreamWorkers {
		workers = s.cfg.MaxStreamWorkers
	}
	tune.StreamParallelism = workers
	tune.StreamMaxBufferedRows = req.MaxBufferedRows
	if tune.StreamMaxBufferedRows == 0 {
		tune.StreamMaxBufferedRows = s.cfg.StreamMaxBufferedRows
	}
	tune.StreamSpillDir = s.cfg.StreamSpillDir
	if req.CostBudgetBytes < 0 {
		return fmt.Errorf("server: invalid cost_budget_bytes=%d", req.CostBudgetBytes)
	}
	tune.CostBudgetBytes = req.CostBudgetBytes
	if tune.CostBudgetBytes == 0 {
		tune.CostBudgetBytes = s.cfg.DefaultCostBudgetBytes
	}
	return nil
}

// costSummary converts the planner's estimate to the wire form.
func costSummary(pc *plan.PlanCost, budget int64) *wire.CostSummary {
	if pc == nil {
		return nil
	}
	return &wire.CostSummary{
		EstRows:      pc.Rows,
		EstBytes:     pc.Bytes,
		EstScanBytes: pc.ScanBytes,
		EstLatencyMS: pc.Latency.Milliseconds(),
		EstDollars:   pc.Dollars,
		Substituted:  pc.Substituted,
		BudgetBytes:  budget,
	}
}

func (s *Server) maxRows(asked int) int {
	if asked <= 0 {
		asked = s.cfg.DefaultMaxRows
	}
	if asked > s.cfg.MaxPageRows {
		asked = s.cfg.MaxPageRows
	}
	return asked
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req wire.RunRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	tune := s.tuning(req.DeadlineMs)
	if err := s.applyStreamTuning(tune, req); err != nil {
		s.writeErr(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, tune)
	defer cancel()
	class := classOf(req.Priority)
	if err := s.admit(ctx, class, req.User); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.release(class)
	s.requests.Add(1)
	invs, err := s.resolveProgram(r.PathValue("name"), req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	var planCost *plan.PlanCost
	tune.PlanCost = func(pc plan.PlanCost) { planCost = &pc }
	res, ids, err := s.platform.RunCtx(ctx, r.PathValue("name"), req.User, tune, invs...)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	nodes := make([]int, len(ids))
	for i, id := range ids {
		nodes[i] = int(id)
	}
	writeJSON(w, http.StatusOK, wire.RunResponse{
		Result: wire.EncodeResult(res, s.maxRows(req.MaxRows)),
		Nodes:  nodes,
		Cost:   costSummary(planCost, tune.CostBudgetBytes),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	ex, err := s.platform.Explain(r.PathValue("name"), r.URL.Query().Get("output"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.ExplainResponse{Explain: ex})
}

// queryInt parses an integer query parameter, def when absent.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("server: invalid %s=%q", key, v)
	}
	return n, nil
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	sess, err := s.platform.Session(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	t, err := sess.Context().Dataset(r.PathValue("dataset"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	limit, err := queryInt(r, "limit", s.cfg.DefaultMaxRows)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.EncodeTable(t, offset, s.maxRows(limit)))
}

// handleRowStream streams a dataset as newline-delimited JSON: the first
// line is the wire.Table header (schema + total count, no rows), each later
// line one wire.RowChunk, flushed as produced — large tables reach the
// client incrementally instead of via one giant document. A terminal
// sentinel chunk (Last set) closes every complete stream; its absence tells
// clients the stream was truncated. Streams hold an execution slot for their
// whole duration, so admission control and graceful drain govern them
// exactly like /run.
func (s *Server) handleRowStream(w http.ResponseWriter, r *http.Request) {
	chunk, err := queryInt(r, "chunk", 1000)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if chunk <= 0 {
		s.writeErr(w, fmt.Errorf("server: invalid chunk=%d (must be positive)", chunk))
		return
	}
	if chunk > s.cfg.MaxPageRows {
		chunk = s.cfg.MaxPageRows
	}
	if err := s.admit(r.Context(), classInteractive, r.URL.Query().Get("user")); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.release(classInteractive)
	s.requests.Add(1)
	sess, err := s.platform.Session(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	t, err := sess.Context().Dataset(r.PathValue("dataset"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	header := wire.EncodeTable(t, 0, 0)
	header.Rows = nil
	header.NextOffset = -1
	if err := enc.Encode(header); err != nil {
		return
	}
	n := t.NumRows()
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		// Check for a gone client before doing the encode work, not after:
		// a cancelled request must not pay for (or emit) one more chunk.
		if r.Context().Err() != nil {
			return
		}
		if err := enc.Encode(wire.RowChunk{Offset: off, Rows: wire.EncodeRows(t, off, end)}); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(wire.RowChunk{Offset: n, Last: true, TotalRows: n})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleRunStream executes a run request with its result streamed as NDJSON:
// the target step runs through the morsel pipeline and each chunk is encoded
// and flushed as the engine produces it, so remote clients see first rows
// while execution is still under way instead of after full materialization.
// Failures before the first chunk return a normal typed error response;
// failures after the stream began are reported in the terminal sentinel
// chunk (the HTTP status is already committed by then).
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	var req wire.RunRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	tune := s.tuning(req.DeadlineMs)
	if err := s.applyStreamTuning(tune, req); err != nil {
		s.writeErr(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, tune)
	defer cancel()
	class := classOf(req.Priority)
	if err := s.admit(ctx, class, req.User); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.release(class)
	s.requests.Add(1)
	invs, err := s.resolveProgram(r.PathValue("name"), req)
	if err != nil {
		s.writeErr(w, err)
		return
	}

	chunkRows := req.MaxRows
	if chunkRows <= 0 {
		chunkRows = sqlengine.DefaultChunkRows
	}
	if chunkRows > s.cfg.MaxPageRows {
		chunkRows = s.cfg.MaxPageRows
	}
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	headerSent := false
	offset := 0
	tune.StreamChunkRows = chunkRows
	// The stats callback fires inside the session lock before RunCtx returns,
	// so reading streamStats below is ordered after every write.
	var streamStats *wire.StreamStats
	tune.StreamStats = func(st dag.Stats) {
		streamStats = &wire.StreamStats{
			Workers:          st.StreamWorkers,
			PeakBufferedRows: st.PeakBufferedRows,
			SpillRuns:        st.SpillRuns,
			SpilledRows:      st.SpilledRows,
			SpilledBytes:     st.SpilledBytes,
		}
	}
	tune.Stream = func(t *dataset.Table) error {
		// The sink runs on an executor worker goroutine, but strictly
		// serially (one target task), so writing w here is race-free.
		if err := ctx.Err(); err != nil {
			return err
		}
		if !headerSent {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			header := wire.EncodeTable(t, 0, 0)
			header.Rows = nil
			header.NextOffset = -1
			// The full row count is unknown until the stream ends; the
			// sentinel chunk carries the final figure.
			header.TotalRows = 0
			if err := enc.Encode(header); err != nil {
				return err
			}
			headerSent = true
		}
		if t.NumRows() > 0 {
			if err := enc.Encode(wire.RowChunk{Offset: offset, Rows: wire.EncodeRows(t, 0, t.NumRows())}); err != nil {
				return err
			}
			offset += t.NumRows()
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// The plan-cost callback fires under the same session lock as StreamStats.
	var planCost *plan.PlanCost
	tune.PlanCost = func(pc plan.PlanCost) { planCost = &pc }
	res, _, err := s.platform.RunCtx(ctx, r.PathValue("name"), req.User, tune, invs...)
	if err != nil {
		if !headerSent {
			s.writeErr(w, err)
			return
		}
		status, code := errStatus(err)
		s.countRefusal(status)
		_ = enc.Encode(wire.RowChunk{Offset: offset, Last: true, TotalRows: offset,
			Error: &wire.Error{Code: code, Message: err.Error()}, Stats: streamStats})
		return
	}
	if cost := costSummary(planCost, tune.CostBudgetBytes); cost != nil {
		if streamStats == nil {
			streamStats = &wire.StreamStats{}
		}
		streamStats.Cost = cost
	}
	if res != nil && res.Degraded {
		// The degraded-scan annotation lives on the result, which the
		// stream never encodes — carry it on the sentinel stats instead.
		if streamStats == nil {
			streamStats = &wire.StreamStats{}
		}
		streamStats.Degraded = res.Degraded
		streamStats.DegradedNote = res.DegradedNote
	}
	if !headerSent {
		// No table flowed (chart/model/message-only result): emit a bare
		// header so the stream is still well-formed NDJSON.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = enc.Encode(&wire.Table{Name: "result", NextOffset: -1})
	}
	_ = enc.Encode(wire.RowChunk{Offset: offset, Last: true, TotalRows: offset, Stats: streamStats})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleSaveArtifact(w http.ResponseWriter, r *http.Request) {
	var req wire.SaveArtifactRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.admit(r.Context(), classInteractive, req.User); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.release(classInteractive)
	s.requests.Add(1)
	sess, err := s.platform.Session(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// The anchor step (req.Output, "" = latest) is resolved inside the
	// session under the §2.4 lock — reading the graph here would race a
	// concurrent /run appending nodes.
	a, err := sess.SaveArtifactOutput(s.platform.Artifacts, req.User, req.Name, req.Output, artifact.Type(req.Type))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.artifactInfo(a, s.cfg.DefaultMaxRows))
}

func (s *Server) artifactInfo(a *artifact.Artifact, maxRows int) wire.ArtifactInfo {
	info := wire.ArtifactInfo{
		Name:         a.Name,
		Type:         string(a.Type),
		Owner:        a.Owner,
		CreatedAt:    a.CreatedAt,
		RefreshedAt:  a.RefreshedAt,
		Degraded:     a.Degraded,
		DegradedNote: a.DegradedNote,
		Recipe:       a.Recipe,
		Chart:        a.Chart,
		ModelName:    a.ModelName,
		Explanation:  a.Explanation,
	}
	if a.Table != nil {
		info.Table = wire.EncodeTable(a.Table, 0, maxRows)
	}
	return info
}

func (s *Server) handleListArtifacts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.ArtifactsResponse{
		Artifacts: s.platform.Artifacts.List(r.URL.Query().Get("user")),
	})
}

func (s *Server) handleGetArtifact(w http.ResponseWriter, r *http.Request) {
	a, err := s.platform.Artifacts.Get(r.PathValue("name"), r.URL.Query().Get("user"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	maxRows, err := queryInt(r, "max_rows", s.cfg.DefaultMaxRows)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.artifactInfo(a, s.maxRows(maxRows)))
}

// handleRecipe serves an artifact's recipe in every dialect. Renderings are
// best-effort: a recipe with steps outside a dialect (e.g. no relational
// tail for SQL) simply omits that rendering.
func (s *Server) handleRecipe(w http.ResponseWriter, r *http.Request) {
	a, err := s.platform.Artifacts.Get(r.PathValue("name"), r.URL.Query().Get("user"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := wire.RecipeResponse{Recipe: a.Recipe}
	if gel, err := a.Recipe.GEL(s.platform.Registry); err == nil {
		resp.GEL = gel
	}
	if py, err := a.Recipe.Python(s.platform.Registry); err == nil {
		resp.Python = py
	}
	// SQL rendering needs an executor for consolidation; a scratch one
	// compiles without touching any session state.
	scratch := dag.NewExecutor(s.platform.Registry, skills.NewContext())
	if sql, err := a.Recipe.SQL(scratch); err == nil {
		resp.SQL = sql
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShareArtifact(w http.ResponseWriter, r *http.Request) {
	var req wire.ShareArtifactRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	access, err := parseAccess(req.Access)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.platform.Artifacts.Share(r.PathValue("name"), req.By, req.With, access); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": r.PathValue("name"), "with": req.With, "access": req.Access})
}

func (s *Server) handleMintLink(w http.ResponseWriter, r *http.Request) {
	var req wire.LinkRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	secret, err := s.platform.Artifacts.CreateSecretLink(r.PathValue("name"), req.By)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, wire.LinkResponse{Secret: secret})
}

func (s *Server) handleResolveLink(w http.ResponseWriter, r *http.Request) {
	a, err := s.platform.Artifacts.GetBySecret(r.PathValue("secret"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.artifactInfo(a, s.cfg.DefaultMaxRows))
}

// refreshRequest names the session whose executor replays the recipe.
type refreshRequest struct {
	User    string `json:"user"`
	Session string `json:"session"`
}

func (s *Server) handleRefreshArtifact(w http.ResponseWriter, r *http.Request) {
	var req refreshRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.admit(r.Context(), classInteractive, req.User); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.release(classInteractive)
	s.requests.Add(1)
	a, err := s.platform.RefreshArtifact(req.Session, req.User, r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.artifactInfo(a, s.cfg.DefaultMaxRows))
}
