package nl2code

import (
	"fmt"
	"sort"
	"strings"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/semantic"
	"datachat/internal/skills"
)

// System wires the Figure 6 pipeline: semantic layer → example retrieval →
// prompt composer → code generator → program checker. The human-iteration
// loop (§4.6) is the caller's: the returned GEL/Python views are editable
// and re-runnable through the usual recipe machinery.
type System struct {
	Registry  *skills.Registry
	Composer  *Composer
	Generator *Generator
	Checker   *Checker
	Library   *Library
	// DisableChecker skips program checking (ablation).
	DisableChecker bool
}

// NewSystem builds a system with default components.
func NewSystem(reg *skills.Registry, lib *Library) *System {
	return &System{
		Registry:  reg,
		Composer:  NewComposer(reg),
		Generator: NewGenerator(reg),
		Checker:   NewChecker(reg),
		Library:   lib,
	}
}

// Request is one NL2Code invocation.
type Request struct {
	// Question is the user's analytics intent in English.
	Question string
	// Tables are the candidate datasets.
	Tables map[string]*dataset.Table
	// Layer is the applicable semantic layer (may be nil).
	Layer *semantic.Layer
}

// Response carries every pipeline stage's output for transparency (§4's
// design consideration: never assume generated code is correct; show it).
type Response struct {
	// Prompt is the composed LLM input.
	Prompt *Prompt
	// Generation is the raw generator output.
	Generation *Generation
	// Program is the checked, cleaned program.
	Program []skills.Invocation
	// Check reports validations and repairs.
	Check *CheckReport
	// Python is the final program rendered as Python API code.
	Python string
	// GEL is the final program rendered as GEL sentences.
	GEL []string
}

// Generate runs the pipeline for one request.
func (s *System) Generate(req Request) (*Response, error) {
	if strings.TrimSpace(req.Question) == "" {
		return nil, fmt.Errorf("nl2code: empty question")
	}
	if len(req.Tables) == 0 {
		return nil, fmt.Errorf("nl2code: no candidate datasets")
	}
	// Pre-generation complexity estimate steers the §4.4 budget split: a
	// crude op count from intent keywords.
	estimate := estimateComplexity(req.Question)
	prompt := s.Composer.Compose(req.Question, req.Tables, req.Layer, s.Library, estimate)
	gen, err := s.Generator.Generate(prompt)
	if err != nil {
		return nil, err
	}
	resp := &Response{Prompt: prompt, Generation: gen}
	if s.DisableChecker {
		resp.Program = gen.Program
		resp.Check = &CheckReport{}
	} else {
		program, report, err := s.Checker.Check(gen.Code, req.Tables)
		resp.Check = report
		if err != nil {
			// The checker rejected the program; surface the raw code so
			// the user can iterate (§4.6), but report the failure.
			resp.Program = nil
			resp.Python = gen.Code
			return resp, fmt.Errorf("nl2code: program check failed: %w", err)
		}
		resp.Program = program
	}
	python, err := renderProgram(s.Registry, resp.Program)
	if err != nil {
		return nil, err
	}
	resp.Python = python
	for _, inv := range resp.Program {
		line, err := s.Registry.RenderGEL(inv)
		if err != nil {
			line = inv.Skill
		}
		resp.GEL = append(resp.GEL, line)
	}
	return resp, nil
}

// estimateComplexity guesses C before generation from surface markers.
func estimateComplexity(question string) float64 {
	q := strings.ToLower(question)
	est := 15.0
	for _, marker := range []string{"joined", "highest", "top ", "where ", "restricted", "for each", "per "} {
		if strings.Contains(q, marker) {
			est += 8
		}
	}
	return est
}

// Execute runs a program against tables and returns the result table.
func Execute(reg *skills.Registry, tables map[string]*dataset.Table, program []skills.Invocation) (*dataset.Table, error) {
	if len(program) == 0 {
		return nil, fmt.Errorf("nl2code: empty program")
	}
	ctx := skills.NewContext()
	for name, t := range tables {
		ctx.Datasets[name] = t
	}
	g := dag.NewGraph()
	var last dag.NodeID
	for _, inv := range program {
		last = g.Add(inv)
	}
	res, err := dag.NewExecutor(reg, ctx).Run(g, last)
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, fmt.Errorf("nl2code: program produced no table")
	}
	return res.Table, nil
}

// ResultsMatch compares two result tables the way execution accuracy does:
// same shape and the same multiset of rows, ignoring row order and column
// names (aliases legitimately differ between programs).
func ResultsMatch(a, b *dataset.Table) bool {
	if a == nil || b == nil {
		return false
	}
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	return strings.Join(canonicalRows(a), "\n") == strings.Join(canonicalRows(b), "\n")
}

func canonicalRows(t *dataset.Table) []string {
	rows := make([]string, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		cells := make([]string, t.NumCols())
		for i, v := range t.Row(r) {
			if f, ok := v.AsFloat(); ok && !v.IsNull() {
				cells[i] = fmt.Sprintf("%.6g", f)
			} else {
				cells[i] = v.String()
			}
		}
		rows[r] = strings.Join(cells, "\x00")
	}
	sort.Strings(rows)
	return rows
}

// ExecutionAccuracy executes the generated program and the ground truth,
// returning 1 when results match and 0 otherwise (the §4.7 metric). A
// generated program that fails to execute scores 0.
func ExecutionAccuracy(reg *skills.Registry, tables map[string]*dataset.Table,
	gold, generated []skills.Invocation) (int, error) {

	goldResult, err := Execute(reg, tables, gold)
	if err != nil {
		return 0, fmt.Errorf("nl2code: ground truth failed to execute: %w", err)
	}
	genResult, err := Execute(reg, tables, generated)
	if err != nil {
		return 0, nil // generated program is simply wrong
	}
	if ResultsMatch(goldResult, genResult) {
		return 1, nil
	}
	return 0, nil
}
