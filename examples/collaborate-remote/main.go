// Collaborate, remotely: the §2.4 scenario over the wire. A datachatd is
// booted on a loopback listener, and two users drive it through
// internal/client — sharing a session, racing the session lock (the loser
// gets a typed 409 instead of a corrupted DAG), saving an artifact, and
// handing it to an account-less guest via a secret link. The daemon then
// drains gracefully.
//
//	go run ./examples/collaborate-remote
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"datachat/internal/client"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/server"
	"datachat/internal/wire"
)

func main() {
	ctx := context.Background()

	// --- Boot a daemon on a loopback port, seeded like `datachatd -demo`.
	p := core.New()
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 4096)
	n := 50_000
	ids := make([]int64, n)
	readings := make([]float64, n)
	sites := make([]string, n)
	for i := range ids {
		ids[i] = int64(i)
		readings[i] = float64(i % 997)
		sites[i] = []string{"north", "south", "east", "west"}[i%4]
	}
	if err := db.CreateTable(dataset.MustNewTable("iot_events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("reading", readings, nil),
		dataset.StringColumn("site", sites, nil),
	)); err != nil {
		log.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err != nil {
		log.Fatal(err)
	}
	srv := server.New(p, server.Config{MaxInFlight: 4, MaxQueue: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("datachatd listening on %s\n", baseURL)

	// --- Two users, two clients, one wire.
	ann := client.New(baseURL)
	bob := client.New(baseURL)

	if _, err := ann.CreateSession(ctx, "iot-quality", "ann"); err != nil {
		log.Fatal(err)
	}
	// §3: assess quality on a cheap block sample, then snapshot so iteration
	// stops hitting the meter — all as remote GEL.
	res, err := ann.RunGEL(ctx, "iot-quality", "ann",
		"Sample 10% of the table iot_events from the database warehouse", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ann sampled %d of %d rows over the wire\n",
		len(res.Result.Table.Rows), res.Result.Table.TotalRows)
	if _, err := ann.RunGEL(ctx, "iot-quality", "ann",
		"Create a snapshot iot_snap of the table iot_events from the database warehouse", ""); err != nil {
		log.Fatal(err)
	}

	// Ann invites Bob to co-drive (§2.4), over the wire.
	if err := ann.ShareSession(ctx, "iot-quality", "ann", "bob", "edit"); err != nil {
		log.Fatal(err)
	}
	info, err := ann.SessionInfo(ctx, "iot-quality")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session members: %v\n", info.Members)

	// Both fire a request at once. The session lock serializes the shared
	// DAG; a loser sees a typed 409 busy payload with a Retry-After hint.
	var wg sync.WaitGroup
	outcomes := make([]error, 2)
	users := []string{"ann", "bob"}
	clients := []*client.Client{ann, bob}
	for i := range users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i] = clients[i].Run(ctx, "iot-quality", wire.RunRequest{
				User: users[i],
				GEL:  "Use the snapshot iot_snap",
			})
		}(i)
	}
	wg.Wait()
	for i, user := range users {
		switch {
		case outcomes[i] == nil:
			fmt.Printf("%s's request ran\n", user)
		case client.IsBusy(outcomes[i]):
			fmt.Printf("%s's request was refused busy (retry in %dms)\n",
				user, client.RetryAfter(outcomes[i]))
		default:
			log.Fatalf("%s: %v", user, outcomes[i])
		}
	}

	// Bob iterates on the snapshot and builds the quality summary remotely.
	use, err := bob.RunGEL(ctx, "iot-quality", "bob", "Use the snapshot iot_snap", "")
	if err != nil {
		log.Fatal(err)
	}
	work := fmt.Sprintf("node%d", use.Nodes[len(use.Nodes)-1])
	hot, err := bob.RunGEL(ctx, "iot-quality", "bob", "Keep the rows where reading > 500", work)
	if err != nil {
		log.Fatal(err)
	}
	hotOut := fmt.Sprintf("node%d", hot.Nodes[len(hot.Nodes)-1])
	summary, err := bob.RunGEL(ctx, "iot-quality", "bob",
		"Compute the count of records and avg of reading for each site", hotOut)
	if err != nil {
		log.Fatal(err)
	}
	sumOut := fmt.Sprintf("node%d", summary.Nodes[len(summary.Nodes)-1])

	// Save the artifact; the recipe is auto-sliced to the productive steps.
	a, err := bob.SaveArtifact(ctx, "iot-quality", wire.SaveArtifactRequest{
		User: "bob", Name: "hot-readings-by-site", Output: sumOut,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifact %q saved remotely with a %d-step recipe\n",
		a.Name, len(a.Recipe.Steps))

	// Hand it to a guest: mint a secret link over the wire, resolve it with
	// a client that has no account at all.
	secret, err := bob.MintLink(ctx, "hot-readings-by-site", "bob")
	if err != nil {
		log.Fatal(err)
	}
	guest := client.New(baseURL)
	shared, err := guest.ResolveLink(ctx, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secret link %s… resolves for the guest to %q (%d rows)\n",
		secret[:8], shared.Name, shared.Table.TotalRows)

	// Transparency for the guest's reviewers: every dialect of the recipe.
	rec, err := bob.Recipe(ctx, "hot-readings-by-site", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecipe behind the shared artifact:")
	for i, l := range rec.GEL {
		fmt.Printf("%2d. %s\n", i+1, l)
	}

	// Shut down like production would: drain in-flight work, then close.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatal(err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Fatal(err)
	}
	stats := srv.Stats()
	fmt.Printf("\ndaemon drained: %d requests served, %d busy refusals\n",
		stats.Requests, stats.Busy409)
}
