package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"

	"datachat/internal/dataset"
)

// benchTables builds the benchmark catalog: a wide fact table of n rows and
// a dims table with one row per distinct join key, so the equi join fans
// out roughly 1:1.
func benchTables(n int) map[string]*dataset.Table {
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	nkeys := n / 100
	if nkeys < 8 {
		nkeys = 8
	}
	ids := make([]int64, n)
	ks := make([]int64, n)
	vs := make([]float64, n)
	ss := make([]string, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		ks[i] = int64(rng.Intn(nkeys))
		vs[i] = float64(rng.Intn(1000)) / 10
		ss[i] = vocab[rng.Intn(len(vocab))]
		nulls[i] = rng.Intn(100) < 5
	}
	big := dataset.MustNewTable("big",
		dataset.IntColumn("id", ids, nil),
		dataset.IntColumn("k", ks, nil),
		dataset.FloatColumn("v", vs, nulls),
		dataset.StringColumn("s", ss, nil),
	)
	dk := make([]int64, nkeys)
	dw := make([]float64, nkeys)
	for i := range dk {
		dk[i] = int64(i)
		dw[i] = float64(i) / 7
	}
	dims := dataset.MustNewTable("dims",
		dataset.IntColumn("dk", dk, nil),
		dataset.FloatColumn("dw", dw, nil),
	)
	return map[string]*dataset.Table{"big": big, "dims": dims}
}

func benchBothPaths(b *testing.B, n int, query string) {
	catalog := NewMapCatalog(benchTables(n))
	stmt, err := Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"vectorized", Options{}},
		{"reference", Options{DisableVectorized: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ExecStmtOptions(catalog, stmt, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

func BenchmarkVectorizedFilter(b *testing.B) {
	benchBothPaths(b, 100_000,
		"SELECT id, v FROM big WHERE v > 25.0 AND v < 75.0 AND s != 'zeta' AND k % 3 = 1")
}

func BenchmarkVectorizedJoin(b *testing.B) {
	benchBothPaths(b, 100_000,
		"SELECT big.id, dims.dw FROM big JOIN dims ON big.k = dims.dk WHERE big.v > 50.0")
}

func BenchmarkVectorizedGroupBy(b *testing.B) {
	benchBothPaths(b, 100_000,
		"SELECT s, COUNT(*) AS c, SUM(v) AS sv, AVG(v) AS av, MIN(v) AS mn, MAX(v) AS mx FROM big GROUP BY s ORDER BY s")
}

func BenchmarkVectorizedLike(b *testing.B) {
	benchBothPaths(b, 100_000, "SELECT id FROM big WHERE s LIKE '%et%' OR s LIKE 'alp%'")
}

// BenchmarkVectorizedSizes tracks scaling across row counts for the filter
// shape; the experiment driver reports the full grid.
func BenchmarkVectorizedSizes(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchBothPaths(b, n, "SELECT id, v FROM big WHERE v > 25.0 AND s != 'zeta'")
		})
	}
}
