// Collisions: the Figure 1 scenario. A California-collisions-style dataset
// is explored in a spreadsheet-ish flow, then a single Visualize request
// ("Visualize at_fault by party_age, party_sex, cellphone_in_use") fans out
// into a set of charts, exactly as the paper's screenshot shows.
//
//	go run ./examples/collisions
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/gel"
	"datachat/internal/skills"
	"datachat/internal/viz"
)

// buildParties synthesizes a parties table with the Figure 1 schema shape.
func buildParties(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	atFault := make([]string, n)
	ages := make([]int64, n)
	ageNulls := make([]bool, n)
	sexes := make([]string, n)
	phone := make([]string, n)
	sobriety := make([]string, n)
	sobrietyChoices := []string{
		"had not been drinking", "had been drinking, impaired",
		"impairment unknown", "not applicable",
	}
	for i := 0; i < n; i++ {
		// Older drivers and phone users are more often at fault, so the
		// charts have something to show.
		age := int64(16 + rng.Intn(70))
		usesPhone := rng.Float64() < 0.15
		fault := rng.Float64() < 0.3
		if usesPhone && rng.Float64() < 0.5 {
			fault = true
		}
		if age < 25 && rng.Float64() < 0.2 {
			fault = true
		}
		if fault {
			atFault[i] = "at fault"
		} else {
			atFault[i] = "not at fault"
		}
		ages[i] = age
		if rng.Float64() < 0.05 {
			ageNulls[i] = true
		}
		if rng.Intn(2) == 0 {
			sexes[i] = "male"
		} else {
			sexes[i] = "female"
		}
		if usesPhone {
			phone[i] = "in use"
		} else {
			phone[i] = "not in use"
		}
		sobriety[i] = sobrietyChoices[rng.Intn(len(sobrietyChoices))]
	}
	return dataset.MustNewTable("parties",
		dataset.StringColumn("at_fault", atFault, nil),
		dataset.IntColumn("party_age", ages, ageNulls),
		dataset.StringColumn("party_sex", sexes, nil),
		dataset.StringColumn("cellphone_in_use", phone, nil),
		dataset.StringColumn("party_sobriety", sobriety, nil),
	)
}

// buildCollisions synthesizes the collisions table parties join to
// (Figure 1 shows collisions, parties, and victims side by side).
func buildCollisions(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	caseIDs := make([]int64, n)
	severity := make([]string, n)
	weather := make([]string, n)
	for i := 0; i < n; i++ {
		caseIDs[i] = int64(i + 1)
		severity[i] = []string{"property damage", "injury", "severe"}[rng.Intn(3)]
		weather[i] = []string{"clear", "rain", "fog"}[rng.Intn(3)]
	}
	return dataset.MustNewTable("collisions",
		dataset.IntColumn("case_id", caseIDs, nil),
		dataset.StringColumn("severity", severity, nil),
		dataset.StringColumn("weather", weather, nil),
	)
}

func main() {
	reg := skills.NewRegistry()
	ctx := skills.NewContext()
	parties := buildParties(2000, 7)
	// Give each party a case_id referencing the collisions table.
	caseCol := dataset.NewColumn("case_id", dataset.TypeInt)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < parties.NumRows(); i++ {
		caseCol.Append(dataset.Int(int64(1 + rng.Intn(900))))
	}
	withCase, err := parties.WithColumn(caseCol)
	if err != nil {
		log.Fatal(err)
	}
	ctx.Datasets["parties"] = withCase
	ctx.Datasets["collisions"] = buildCollisions(900, 8)
	executor := dag.NewExecutor(reg, ctx)
	parser := gel.MustNewParser(reg)

	lines := []string{
		"Use the dataset parties",
		"Describe the dataset",
		// The Figure 3 example: compute counts per sobriety level.
		"Compute the count of records for each party_sobriety and call the computed columns NumberOfCases",
		"Use the dataset parties, version 1",
		// The Figure 1 chat request.
		"Visualize at_fault by party_age, party_sex, cellphone_in_use",
	}
	runner := gel.NewRunner(parser, executor, lines)
	steps, err := runner.RunAll()
	if err != nil {
		log.Fatalf("recipe failed at line %d: %v", runner.PC(), err)
	}

	fmt.Println("== Dataset summary ==")
	fmt.Print(steps[1].Result.Table)

	fmt.Println("\n== Cases per sobriety level (Figure 3's Compute) ==")
	fmt.Print(steps[2].Result.Table)

	visualize := steps[4].Result
	fmt.Println("\n== Chat ==")
	fmt.Println("> Visualize at_fault by party_age, party_sex, cellphone_in_use")
	fmt.Println(visualize.Message)
	for _, chart := range visualize.Charts {
		fmt.Println()
		fmt.Print(viz.Render(chart))
	}
	fmt.Printf("\n%d charts produced from one request (Figure 1 shows 6)\n", len(visualize.Charts))

	// The Figure 1 left panel shows parties joined against collisions; a
	// join plus a pivot answers "who is at fault, by collision severity?".
	joinLines := []string{
		"Join the datasets parties and collisions on parties.case_id = collisions.case_id",
		"Pivot severity against at_fault computing count of records",
	}
	joinRunner := gel.NewRunner(parser, dag.NewExecutor(reg, ctx), joinLines)
	joinSteps, err := joinRunner.RunAll()
	if err != nil {
		log.Fatalf("join recipe failed: %v", err)
	}
	fmt.Println("\n== At fault by collision severity (join + pivot) ==")
	fmt.Print(joinSteps[1].Result.Table)
}
