package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"datachat/internal/client"
	"datachat/internal/core"
	"datachat/internal/server"
)

// The server experiment load-tests datachatd's network layer: N concurrent
// clients drive real HTTP requests through admission control and the §2.4
// session lock. Two modes per concurrency level: "isolated" gives every
// client its own session (measuring service throughput) and "shared" points
// every client at one session (measuring the lock's refusal behavior — the
// 409s are the contract working, not failures).

// ServerCase is one (clients, mode) cell of the load grid.
type ServerCase struct {
	Clients      int     `json:"clients"`
	Mode         string  `json:"mode"` // "isolated" or "shared"
	Requests     int     `json:"requests"`
	Succeeded    int     `json:"succeeded"`
	Busy409      int     `json:"busy_409"`
	Throttled429 int     `json:"throttled_429"`
	Errors       int     `json:"errors"`
	WallSeconds  float64 `json:"wall_seconds"`
	RequestsPerS float64 `json:"requests_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
}

// ServerResult is the full load grid plus the server's own view of the run.
type ServerResult struct {
	Cases []ServerCase `json:"cases"`
	// ExecTasksRun and CacheHits summarize the executor work behind the
	// HTTP surface, from the final /statsz.
	ExecTasksRun int64 `json:"exec_tasks_run"`
	CacheHits    int64 `json:"cache_hits"`
}

// serverLoadCSV builds a table big enough that the per-request execution
// window is measurable — shared-mode lock collisions depend on it.
func serverLoadCSV(rows int) string {
	var b strings.Builder
	b.WriteString("id,grp,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,g%d,%d\n", i, i%13, i%1000)
	}
	return b.String()
}

// ServerLoad boots a datachatd over a loopback listener and drives it with
// each concurrency level, perRequest GEL sentences per client.
func ServerLoad(clientCounts []int, perClient int) (*ServerResult, error) {
	srv := server.New(core.New(), server.Config{MaxInFlight: 8, MaxQueue: 32})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx := context.Background()
	c := client.New(hs.URL)
	if err := c.RegisterFile(ctx, "load.csv", serverLoadCSV(20_000)); err != nil {
		return nil, err
	}

	result := &ServerResult{}
	session := 0
	for _, n := range clientCounts {
		for _, mode := range []string{"isolated", "shared"} {
			cell, err := runServerCell(ctx, c, srv, mode, n, perClient, &session)
			if err != nil {
				return nil, err
			}
			result.Cases = append(result.Cases, *cell)
		}
	}
	stats, err := c.Statsz(ctx)
	if err != nil {
		return nil, err
	}
	result.ExecTasksRun = stats.Exec["tasks_run"]
	result.CacheHits = stats.Cache["hits"]
	return result, nil
}

func runServerCell(ctx context.Context, c *client.Client, srv *server.Server, mode string, clients, perClient int, session *int) (*ServerCase, error) {
	// Seed the sessions for this cell: one per client (isolated) or one for
	// everyone (shared), each preloaded with the file so the measured
	// requests are pure transform traffic.
	sessions := make([]string, clients)
	bases := make([]string, clients)
	newSession := func() (string, string, error) {
		*session++
		name := fmt.Sprintf("load-%d", *session)
		if _, err := c.CreateSession(ctx, name, "bench"); err != nil {
			return "", "", err
		}
		resp, err := c.RunGEL(ctx, name, "bench", "Load data from the file load.csv", "")
		if err != nil {
			return "", "", err
		}
		return name, fmt.Sprintf("node%d", resp.Nodes[len(resp.Nodes)-1]), nil
	}
	if mode == "shared" {
		name, base, err := newSession()
		if err != nil {
			return nil, err
		}
		for i := range sessions {
			sessions[i], bases[i] = name, base
		}
	} else {
		for i := range sessions {
			name, base, err := newSession()
			if err != nil {
				return nil, err
			}
			sessions[i], bases[i] = name, base
		}
	}

	before := srv.Stats()
	cell := &ServerCase{Clients: clients, Mode: mode, Requests: clients * perClient}
	latencies := make([]time.Duration, 0, cell.Requests)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				t0 := time.Now()
				_, err := c.RunGEL(ctx, sessions[i], "bench",
					"Compute the sum of v for each grp", bases[i])
				d := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, d)
				switch {
				case err == nil:
					cell.Succeeded++
				case client.IsBusy(err):
					cell.Busy409++
				case client.IsThrottled(err):
					cell.Throttled429++
				default:
					cell.Errors++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	cell.WallSeconds = wall.Seconds()
	if wall > 0 {
		cell.RequestsPerS = float64(cell.Requests) / wall.Seconds()
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	cell.P50Ms = float64(latencies[len(latencies)/2]) / float64(time.Millisecond)
	cell.P95Ms = float64(latencies[len(latencies)*95/100]) / float64(time.Millisecond)
	after := srv.Stats()
	if cell.Errors > 0 {
		return nil, fmt.Errorf("server load: %d unexpected errors (%s, %d clients)", cell.Errors, mode, clients)
	}
	// Cross-check the client's view against the server's counters.
	if got := int(after.Busy409 - before.Busy409); got != cell.Busy409 {
		return nil, fmt.Errorf("server load: client saw %d busy refusals, server counted %d", cell.Busy409, got)
	}
	return cell, nil
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *ServerResult) Report() string {
	var b strings.Builder
	b.WriteString("Server load: concurrent HTTP clients vs datachatd (shared-mode 409s are the §2.4 lock working)\n")
	b.WriteString("  clients  mode      requests  ok    busy409  throttled  req/s   p50(ms)  p95(ms)\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-8d %-9s %-9d %-5d %-8d %-10d %-7.0f %-8.2f %.2f\n",
			c.Clients, c.Mode, c.Requests, c.Succeeded, c.Busy409, c.Throttled429,
			c.RequestsPerS, c.P50Ms, c.P95Ms)
	}
	fmt.Fprintf(&b, "  executor tasks run: %d, sub-DAG cache hits: %d\n", r.ExecTasksRun, r.CacheHits)
	return b.String()
}

// JSON renders the result for BENCH_server.json.
func (r *ServerResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
