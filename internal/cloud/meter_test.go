package cloud

import (
	"testing"
	"time"

	"datachat/internal/dataset"
)

const maxDuration = time.Duration(1<<63 - 1)

// TestScanLatencyExactIntegerValues pins the integer latency formula on
// exact megabyte multiples and pro-rated remainders.
func TestScanLatencyExactIntegerValues(t *testing.T) {
	perMB := 2 * time.Millisecond
	cases := []struct {
		bytes int64
		want  time.Duration
	}{
		{0, 0},
		{-5, 0},
		{1 << 20, 2 * time.Millisecond},
		{5 << 20, 10 * time.Millisecond},
		{512 << 10, time.Millisecond},            // half a MB
		{5<<20 + 512<<10, 11 * time.Millisecond}, // mixed
		{1, time.Nanosecond},                     // pro-rated: 2ms/MB ≈ 1.9ns/byte, rounded down
		{(1 << 53) + 3<<20, time.Duration(1<<33+3) * perMB},    // exact past float64's 2^53
		{4 << 40, time.Duration(4<<20) * 2 * time.Millisecond}, // 4 TB ≈ 2h20m
	}
	for _, c := range cases {
		if got := scanLatency(c.bytes, perMB); got != c.want {
			t.Errorf("scanLatency(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
	if got := scanLatency(1<<20, 0); got != 0 {
		t.Errorf("zero rate should cost no latency, got %v", got)
	}
}

// TestMeterLatencyMultiTBSaturates is the regression test for the float
// latency path: a scan large enough to overflow time.Duration must saturate
// at the maximum, never wrap negative, and stay there under further charges.
func TestMeterLatencyMultiTBSaturates(t *testing.T) {
	var m Meter
	huge := Pricing{DollarsPerGB: 0.005, LatencyPerMB: time.Hour}
	m.charge(1<<62, huge) // 2^42 MB × 1h ≫ max Duration
	if got := m.SimulatedLatency(); got != maxDuration {
		t.Fatalf("latency = %v, want saturation at max", got)
	}
	m.charge(8<<40, huge)
	if got := m.SimulatedLatency(); got < 0 || got != maxDuration {
		t.Fatalf("latency wrapped after further charges: %v", got)
	}
	if m.BytesScanned() <= 0 || m.Queries() != 2 {
		t.Errorf("bytes/queries accounting broken: %d, %d", m.BytesScanned(), m.Queries())
	}
}

// TestMeterLatencyAccumulates: realistic multi-TB totals accumulate exactly,
// with no float rounding.
func TestMeterLatencyAccumulates(t *testing.T) {
	var m Meter
	p := Pricing{DollarsPerGB: 0.005, LatencyPerMB: 2 * time.Millisecond}
	for i := 0; i < 3; i++ {
		m.charge(2<<40, p) // 2 TB each
	}
	want := 3 * time.Duration(2<<20) * 2 * time.Millisecond
	if got := m.SimulatedLatency(); got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
	m.Reset()
	if m.SimulatedLatency() != 0 || m.BytesScanned() != 0 || m.Queries() != 0 {
		t.Error("reset did not zero the meter")
	}
}

// TestSampleBlocksEmptyTable: sampling an empty table succeeds with an empty
// result (its single empty block) instead of erroring or charging.
func TestSampleBlocksEmptyTable(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 0)
	if err := db.CreateTable(dataset.MustNewTable("empty", dataset.IntColumn("x", nil, nil))); err != nil {
		t.Fatal(err)
	}
	got, err := db.SampleBlocks("empty", 0.5, 1)
	if err != nil {
		t.Fatalf("sampling an empty table: %v", err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", got.NumRows())
	}
	if got.NumCols() != 1 {
		t.Errorf("cols = %d, want schema preserved", got.NumCols())
	}
	for _, rate := range []float64{0, -0.5, 1.0001} {
		if _, err := db.SampleBlocks("empty", rate, 1); err == nil {
			t.Errorf("rate %v on an empty table should still be rejected", rate)
		}
	}
}
