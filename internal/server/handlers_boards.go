package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"datachat/internal/board"
	"datachat/internal/scheduler"
	"datachat/internal/wire"
)

// --- Schedules ---

// errNoScheduler/errNoBoards gate the endpoints until AttachScheduler wires
// the subsystems in ("no scheduler"/"no board" map to 404 in errStatus).
func errNoScheduler() error { return fmt.Errorf("server: no scheduler attached") }
func errNoBoards() error    { return fmt.Errorf("server: no board hub attached") }

func scheduleRun(rec scheduler.RunRecord) wire.ScheduleRun {
	return wire.ScheduleRun{
		Seq:          rec.Seq,
		At:           rec.At,
		ElapsedMs:    rec.Elapsed.Milliseconds(),
		FPTotal:      rec.FPTotal,
		FPChanged:    rec.FPChanged,
		FPUnchanged:  rec.FPUnchanged,
		TasksRun:     rec.Stats.TasksRun,
		CacheHits:    rec.Stats.CacheHits,
		Degraded:     rec.Degraded,
		Skipped:      rec.Skipped,
		SkipReason:   rec.SkipReason,
		Error:        rec.Err,
		BoardVersion: rec.BoardVersion,
	}
}

func scheduleInfo(info scheduler.JobInfo) wire.ScheduleInfo {
	out := wire.ScheduleInfo{
		Name:    info.Name,
		Session: info.Session,
		User:    info.User,
		Board:   info.Board,
		Tile:    info.Tile,
		EveryMs: info.Every.Milliseconds(),
		MaxRuns: info.MaxRuns,
		NextRun: info.NextRun,
		Runs:    info.Runs,
		Done:    info.Done,
	}
	for _, rec := range info.History {
		out.History = append(out.History, scheduleRun(rec))
	}
	return out
}

func (s *Server) handleCreateSchedule(w http.ResponseWriter, r *http.Request) {
	if s.sched == nil {
		s.writeErr(w, errNoScheduler())
		return
	}
	var req wire.ScheduleRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	rec := req.Recipe
	switch {
	case rec != nil && req.Artifact != "":
		s.writeErr(w, fmt.Errorf("server: invalid schedule request: recipe and artifact are mutually exclusive"))
		return
	case rec == nil && req.Artifact == "":
		s.writeErr(w, fmt.Errorf("server: invalid schedule request: one of recipe or artifact required"))
		return
	case req.Artifact != "":
		a, err := s.platform.Artifacts.Get(req.Artifact, req.User)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		rec = a.Recipe
	}
	info, err := s.sched.Add(scheduler.Spec{
		Name:    req.Name,
		Session: req.Session,
		User:    req.User,
		Recipe:  rec,
		Every:   time.Duration(req.EveryMs) * time.Millisecond,
		Board:   req.Board,
		Tile:    req.Tile,
		MaxRuns: req.MaxRuns,
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, scheduleInfo(info))
}

func (s *Server) handleListSchedules(w http.ResponseWriter, r *http.Request) {
	if s.sched == nil {
		s.writeErr(w, errNoScheduler())
		return
	}
	resp := wire.SchedulesResponse{Schedules: []wire.ScheduleInfo{}}
	for _, info := range s.sched.List() {
		resp.Schedules = append(resp.Schedules, scheduleInfo(info))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetSchedule(w http.ResponseWriter, r *http.Request) {
	if s.sched == nil {
		s.writeErr(w, errNoScheduler())
		return
	}
	info, ok := s.sched.Get(r.PathValue("name"))
	if !ok {
		s.writeErr(w, fmt.Errorf("scheduler: no job %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, scheduleInfo(info))
}

func (s *Server) handleDeleteSchedule(w http.ResponseWriter, r *http.Request) {
	if s.sched == nil {
		s.writeErr(w, errNoScheduler())
		return
	}
	if !s.sched.Remove(r.PathValue("name")) {
		s.writeErr(w, fmt.Errorf("scheduler: no job %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": r.PathValue("name"), "status": "removed"})
}

// handleRunSchedule force-runs a job. Admission happens inside the run via
// the scheduler's gate (the server's background class), so a forced refresh
// still yields to interactive traffic.
func (s *Server) handleRunSchedule(w http.ResponseWriter, r *http.Request) {
	if s.sched == nil {
		s.writeErr(w, errNoScheduler())
		return
	}
	rec, err := s.sched.RunNow(r.Context(), r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.requests.Add(1)
	writeJSON(w, http.StatusOK, scheduleRun(rec))
}

// --- Boards ---

// boardEvent converts a published update to its wire form, inlining at most
// maxRows rows of the pinned table.
func boardEvent(u board.Update, maxRows int) *wire.BoardEvent {
	return &wire.BoardEvent{
		Board:        u.Board,
		Tile:         u.Tile,
		Version:      u.Version,
		At:           u.At,
		Job:          u.Job,
		Seq:          u.Seq,
		Table:        wire.EncodeTable(u.Table, 0, maxRows),
		Message:      u.Message,
		Degraded:     u.Degraded,
		DegradedNote: u.DegradedNote,
		RunError:     u.RunError,
		FPTotal:      u.FPTotal,
		FPChanged:    u.FPChanged,
		CacheHits:    u.CacheHits,
	}
}

func (s *Server) boardInfo(snap board.Snapshot, maxRows int) wire.BoardInfo {
	info := wire.BoardInfo{
		ID:      snap.ID,
		Name:    snap.Name,
		Owner:   snap.Owner,
		Version: snap.Version,
		Created: snap.Created,
	}
	for _, t := range snap.Tiles {
		info.Tiles = append(info.Tiles, wire.TileInfo{
			Tile:    t.Tile,
			Updates: t.Updates,
			Last:    boardEvent(t.Last, maxRows),
		})
	}
	return info
}

func (s *Server) handleCreateBoard(w http.ResponseWriter, r *http.Request) {
	if s.boards == nil {
		s.writeErr(w, errNoBoards())
		return
	}
	var req wire.CreateBoardRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	b, err := s.boards.Create(req.ID, req.Name, req.Owner)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.boardInfo(b.Snapshot(), s.cfg.DefaultMaxRows))
}

func (s *Server) handleListBoards(w http.ResponseWriter, r *http.Request) {
	if s.boards == nil {
		s.writeErr(w, errNoBoards())
		return
	}
	resp := wire.BoardsResponse{Boards: []wire.BoardInfo{}}
	for _, snap := range s.boards.List() {
		resp.Boards = append(resp.Boards, s.boardInfo(snap, s.cfg.DefaultMaxRows))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetBoard(w http.ResponseWriter, r *http.Request) {
	if s.boards == nil {
		s.writeErr(w, errNoBoards())
		return
	}
	b, ok := s.boards.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, fmt.Errorf("server: no board %q", r.PathValue("id")))
		return
	}
	maxRows, err := queryInt(r, "max_rows", s.cfg.DefaultMaxRows)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.boardInfo(b.Snapshot(), s.maxRows(maxRows)))
}

func (s *Server) handleDeleteBoard(w http.ResponseWriter, r *http.Request) {
	if s.boards == nil {
		s.writeErr(w, errNoBoards())
		return
	}
	if !s.boards.Delete(r.PathValue("id")) {
		s.writeErr(w, fmt.Errorf("server: no board %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "status": "deleted"})
}

// handleSubscribeBoard is the live fan-out stream: NDJSON in the same frame
// format as /run/stream — a header line, then one RowChunk per board update
// (the update riding in the chunk's Board field), then a terminal sentinel.
// Retained updates past from_version are backfilled first, so a client that
// reconnects with its last seen version misses nothing the history ring
// still holds. The stream holds no execution slot (it does no query work),
// but it registers with the drain machinery: shutdown ends it with a
// CodeDraining sentinel, and a subscriber that cannot keep up is evicted
// with a CodeEvicted sentinel rather than stalling publishers.
func (s *Server) handleSubscribeBoard(w http.ResponseWriter, r *http.Request) {
	if s.boards == nil {
		s.writeErr(w, errNoBoards())
		return
	}
	b, ok := s.boards.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, fmt.Errorf("server: no board %q", r.PathValue("id")))
		return
	}
	fromVersion, err := queryInt(r, "from_version", 0)
	if err != nil || fromVersion < 0 {
		s.writeErr(w, fmt.Errorf("server: invalid from_version"))
		return
	}
	// max_updates ends the stream cleanly after that many updates (0 =
	// until the client disconnects); it is what makes subscribe testable
	// without client-side timeouts.
	maxUpdates, err := queryInt(r, "max_updates", 0)
	if err != nil || maxUpdates < 0 {
		s.writeErr(w, fmt.Errorf("server: invalid max_updates"))
		return
	}
	maxRows, err := queryInt(r, "max_rows", s.cfg.DefaultMaxRows)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	maxRows = s.maxRows(maxRows)

	leave, drain, err := s.joinStream()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer leave()
	sub, backlog, err := b.Subscribe(uint64(fromVersion), 16)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer sub.Close()
	s.requests.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	if err := enc.Encode(&wire.Table{Name: "board:" + b.ID(), NextOffset: -1}); err != nil {
		return
	}

	sent := 0
	sentinel := func(e *wire.Error) {
		_ = enc.Encode(wire.RowChunk{Offset: sent, Last: true, TotalRows: sent, Error: e})
		if flusher != nil {
			flusher.Flush()
		}
	}
	send := func(u board.Update) bool {
		if err := enc.Encode(wire.RowChunk{Offset: sent, Board: boardEvent(u, maxRows)}); err != nil {
			return false
		}
		sent++
		if flusher != nil {
			flusher.Flush()
		}
		return maxUpdates == 0 || sent < maxUpdates
	}
	for _, u := range backlog {
		if !send(u) {
			sentinel(nil)
			return
		}
	}
	for {
		select {
		case u, open := <-sub.C:
			if !open {
				// The hub ended us: slow consumer or board deletion.
				switch sub.Err() {
				case board.ErrSlowConsumer:
					sentinel(&wire.Error{Code: wire.CodeEvicted, Message: board.ErrSlowConsumer.Error()})
				case board.ErrDeleted:
					sentinel(&wire.Error{Code: wire.CodeNotFound, Message: board.ErrDeleted.Error()})
				default:
					sentinel(nil)
				}
				return
			}
			if !send(u) {
				sentinel(nil)
				return
			}
		case <-drain:
			s.countRefusal(http.StatusServiceUnavailable)
			sentinel(&wire.Error{Code: wire.CodeDraining, Message: errDraining.Error()})
			return
		case <-r.Context().Done():
			// Client gone; nobody is reading, so no sentinel.
			return
		}
	}
}
