// Quickstart: load a CSV, wrangle it with skills, chart it, and print the
// auto-generated recipe in all three dialects (GEL, Python, SQL).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datachat/internal/dag"
	"datachat/internal/gel"
	"datachat/internal/recipe"
	"datachat/internal/skills"
	"datachat/internal/viz"
)

const salesCSV = `order_id,region,status,price,discount
1,east,Successful,120.5,0.1
2,west,Successful,80.0,0.0
3,east,Unsuccessful,45.0,0.2
4,north,Successful,210.0,0.15
5,west,Refunded,99.0,0.0
6,east,Successful,60.0,0.05
7,south,Successful,150.0,0.1
8,north,Unsuccessful,30.0,0.0
9,south,Successful,75.5,0.25
10,east,Successful,88.0,0.0
`

func main() {
	reg := skills.NewRegistry()
	ctx := skills.NewContext()
	ctx.Files["sales.csv"] = salesCSV
	executor := dag.NewExecutor(reg, ctx)
	parser := gel.MustNewParser(reg)

	// A working session is just GEL sentences executed in order.
	lines := []string{
		"Load data from the file sales.csv",
		"Keep the rows where status = 'Successful'",
		"Create a new column revenue as price * (1 - discount)",
		"Compute the sum of revenue for each region and call the computed columns TotalRevenue",
		"Sort the rows by TotalRevenue in descending order",
	}
	runner := gel.NewRunner(parser, executor, lines)
	steps, err := runner.RunAll()
	if err != nil {
		log.Fatalf("recipe failed: %v", err)
	}
	final := steps[len(steps)-1].Result
	fmt.Println("== Result ==")
	fmt.Print(final.Table)

	// Chart the result.
	chart, err := viz.Build(final.Table, viz.Spec{Type: viz.Bar, X: "region", Y: "TotalRevenue",
		Title: "Net revenue by region (successful orders)"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Chart ==")
	fmt.Print(viz.Render(chart))

	// Every analysis carries its recipe (§2.3) — in three dialects.
	rec, err := recipe.FromGraph("quickstart", runner.Graph())
	if err != nil {
		log.Fatal(err)
	}
	gelLines, err := rec.GEL(reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Recipe (GEL) ==")
	for i, l := range gelLines {
		fmt.Printf("%2d. %s\n", i+1, l)
	}
	python, err := rec.Python(reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Recipe (Python API) ==")
	fmt.Println(python)
	if sql, err := executor.CompileSQL(runner.Graph(), runner.Graph().Last()); err == nil {
		fmt.Println("\n== Recipe (consolidated SQL, §2.2) ==")
		fmt.Println(sql)
	}
	fmt.Printf("\nexecutor stats: %+v\n", executor.Stats())
}
