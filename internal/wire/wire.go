// Package wire defines datachatd's HTTP/JSON protocol: the request and
// response bodies exchanged between internal/server and internal/client,
// the typed error payload every non-2xx response carries, and a
// type-faithful encoding of tables so result pages and row streams
// round-trip through JSON without losing column types (int64s stay ints,
// times stay times, nulls stay null).
//
// The protocol maps the paper's §2.4 semantics onto status codes:
//
//	409 CodeBusy      — the session lock is held (session.ErrBusy)
//	429 CodeThrottled — admission control refused the request; retry later
//	499 CodeCanceled  — the client went away before a response was written
//	503 CodeDraining  — the daemon is shutting down gracefully
//	504 CodeDeadline  — the per-request deadline expired mid-execution
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/plan"
	"datachat/internal/recipe"
	"datachat/internal/skills"
	"datachat/internal/viz"
)

// Error codes carried in the typed error payload.
const (
	CodeBusy       = "busy"
	CodeThrottled  = "throttled"
	CodeDraining   = "draining"
	CodeDeadline   = "deadline"
	CodeCanceled   = "canceled"
	CodeNotFound   = "not_found"
	CodeDenied     = "denied"
	CodeBadRequest = "bad_request"
	CodeInternal   = "internal"
	// CodeEvicted ends a board subscribe stream whose client fell too far
	// behind the publish rate (slow-consumer eviction).
	CodeEvicted = "evicted"
)

// Priority classes for RunRequest.Priority and the admission layer.
const (
	PriorityInteractive = "interactive"
	PriorityBackground  = "background"
)

// Error is the JSON body of every non-2xx response.
type Error struct {
	// Code classifies the failure (Code* constants).
	Code string `json:"code"`
	// Message is the underlying error text.
	Message string `json:"message"`
	// RetryAfterMs hints when a busy/throttled request is worth retrying.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Status is the HTTP status the server sent (filled client-side).
	Status int `json:"-"`
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("datachatd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// ColumnMeta describes one column of a wire table.
type ColumnMeta struct {
	Name string `json:"name"`
	Type string `json:"type"` // "int", "float", "string", "bool", "time", "null"
}

// Table is one page of a table: the schema, the page's rows, and enough
// numbers to paginate. Cell encoding by column type: ints and floats as JSON
// numbers, strings and bools natively, times as RFC3339Nano strings, nulls
// as JSON null.
type Table struct {
	Name string       `json:"name"`
	Cols []ColumnMeta `json:"cols"`
	Rows [][]any      `json:"rows"`
	// TotalRows is the full table's row count (>= len(Rows)).
	TotalRows int `json:"total_rows"`
	// Offset is the index of the first row of this page.
	Offset int `json:"offset"`
	// NextOffset is the offset of the next page, or -1 when this page ends
	// the table.
	NextOffset int `json:"next_offset"`
}

// RowChunk is one frame of a streamed table: a slice of rows starting at
// Offset. The stream's first frame is the Table header with no rows; the
// final frame is a sentinel with Last set and no rows, so clients can
// distinguish a clean end-of-stream from a truncated connection.
type RowChunk struct {
	Offset int     `json:"offset"`
	Rows   [][]any `json:"rows,omitempty"`
	// Last marks the terminal sentinel frame: the stream is complete and
	// TotalRows is the stream's final row count. A stream that ends without
	// a Last frame was cut off mid-flight.
	Last      bool `json:"last,omitempty"`
	TotalRows int  `json:"total_rows,omitempty"`
	// Error reports a failure that happened after streaming began (the HTTP
	// status was already committed); nil on a clean end.
	Error *Error `json:"error,omitempty"`
	// Stats rides the terminal sentinel: how the morsel pipeline executed the
	// request (worker count, buffered-row peak, disk spill activity).
	Stats *StreamStats `json:"stats,omitempty"`
	// Board carries one insights-board update on a board subscribe stream
	// (GET /v1/boards/{id}/subscribe); Rows is empty on such frames. Reusing
	// the RowChunk framing means board streams share the header/sentinel
	// protocol — and its truncation detection — with every other stream.
	Board *BoardEvent `json:"board,omitempty"`
}

// BoardEvent is the wire form of one board update: which tile changed, the
// publishing job's run metadata, the refreshed table page, and the
// mandatory degradation/error annotations.
type BoardEvent struct {
	Board   string    `json:"board"`
	Tile    string    `json:"tile"`
	Version uint64    `json:"version"`
	At      time.Time `json:"at"`
	Job     string    `json:"job,omitempty"`
	Seq     int       `json:"seq,omitempty"`

	Table        *Table `json:"table,omitempty"`
	Message      string `json:"message,omitempty"`
	Degraded     bool   `json:"degraded,omitempty"`
	DegradedNote string `json:"degraded_note,omitempty"`
	RunError     string `json:"run_error,omitempty"`

	// FPTotal/FPChanged summarize the producing run's fingerprint diff;
	// CacheHits is how many sub-DAGs the refresh served from cache.
	FPTotal   int   `json:"fp_total,omitempty"`
	FPChanged int   `json:"fp_changed,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
}

// StreamStats summarizes one streamed execution for the terminal sentinel:
// the morsel worker count, the buffered-row high-water mark against the
// memory budget, and how much the pipeline breakers spilled to disk.
type StreamStats struct {
	Workers          int   `json:"workers,omitempty"`
	PeakBufferedRows int   `json:"peak_buffered_rows,omitempty"`
	SpillRuns        int   `json:"spill_runs,omitempty"`
	SpilledRows      int   `json:"spilled_rows,omitempty"`
	SpilledBytes     int64 `json:"spilled_bytes,omitempty"`
	// Degraded and DegradedNote mirror the result's degraded-scan
	// annotation, so a streaming client sees the same data-quality signal
	// a buffered Run response carries in its Result.
	Degraded     bool   `json:"degraded,omitempty"`
	DegradedNote string `json:"degraded_note,omitempty"`
	// Cost is the compiled plan's cost estimate (nil when the server's cost
	// model is off).
	Cost *CostSummary `json:"cost,omitempty"`
}

// CostSummary is the planner's cost estimate for one executed request:
// estimated output size, cloud bytes scanned with their priced latency and
// dollars, and how many scans the budget pass degraded to samples.
type CostSummary struct {
	EstRows      int64   `json:"est_rows"`
	EstBytes     int64   `json:"est_bytes"`
	EstScanBytes int64   `json:"est_scan_bytes"`
	EstLatencyMS int64   `json:"est_latency_ms"`
	EstDollars   float64 `json:"est_dollars"`
	Substituted  int     `json:"substituted,omitempty"`
	// BudgetBytes echoes the budget the request ran under (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
}

// EncodeTable converts rows [offset, offset+limit) of t to the wire form.
// limit <= 0 means every remaining row.
func EncodeTable(t *dataset.Table, offset, limit int) *Table {
	if t == nil {
		return nil
	}
	n := t.NumRows()
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	end := n
	if limit > 0 && offset+limit < n {
		end = offset + limit
	}
	w := &Table{Name: t.Name(), TotalRows: n, Offset: offset, NextOffset: -1}
	if end < n {
		w.NextOffset = end
	}
	for _, c := range t.Columns() {
		w.Cols = append(w.Cols, ColumnMeta{Name: c.Name(), Type: c.Type().String()})
	}
	w.Rows = EncodeRows(t, offset, end)
	return w
}

// EncodeRows converts rows [from, to) of t to wire cells.
func EncodeRows(t *dataset.Table, from, to int) [][]any {
	rows := make([][]any, 0, to-from)
	cols := t.Columns()
	for i := from; i < to; i++ {
		row := make([]any, len(cols))
		for j, c := range cols {
			row[j] = encodeCell(c, i)
		}
		rows = append(rows, row)
	}
	return rows
}

func encodeCell(c *dataset.Column, i int) any {
	if c.IsNull(i) {
		return nil
	}
	v := c.Value(i)
	switch v.Type {
	case dataset.TypeInt:
		return v.I
	case dataset.TypeFloat:
		return v.F
	case dataset.TypeString:
		return v.S
	case dataset.TypeBool:
		return v.B
	case dataset.TypeTime:
		return v.T.UTC().Format(time.RFC3339Nano)
	default:
		return nil
	}
}

// Decode rebuilds a typed dataset.Table from the wire form (one page's
// rows). Numeric cells may arrive as float64 or json.Number depending on
// how the enclosing document was decoded; both are accepted. Ints beyond
// 2^53 stay exact only on the json.Number path (DecodeJSON uses it).
func (w *Table) Decode() (*dataset.Table, error) {
	if w == nil {
		return nil, nil
	}
	n := len(w.Rows)
	cols := make([]*dataset.Column, len(w.Cols))
	for j, cm := range w.Cols {
		nulls := make([]bool, n)
		var col *dataset.Column
		switch cm.Type {
		case "int":
			vals := make([]int64, n)
			for i, row := range w.Rows {
				if cellNull(row, j) {
					nulls[i] = true
					continue
				}
				iv, err := cellInt(row[j])
				if err != nil {
					return nil, fmt.Errorf("wire: col %q row %d: %w", cm.Name, i, err)
				}
				vals[i] = iv
			}
			col = dataset.IntColumn(cm.Name, vals, nulls)
		case "float":
			vals := make([]float64, n)
			for i, row := range w.Rows {
				if cellNull(row, j) {
					nulls[i] = true
					continue
				}
				fv, err := cellFloat(row[j])
				if err != nil {
					return nil, fmt.Errorf("wire: col %q row %d: %w", cm.Name, i, err)
				}
				vals[i] = fv
			}
			col = dataset.FloatColumn(cm.Name, vals, nulls)
		case "string":
			vals := make([]string, n)
			for i, row := range w.Rows {
				if cellNull(row, j) {
					nulls[i] = true
					continue
				}
				s, ok := row[j].(string)
				if !ok {
					return nil, fmt.Errorf("wire: col %q row %d: want string, got %T", cm.Name, i, row[j])
				}
				vals[i] = s
			}
			col = dataset.StringColumn(cm.Name, vals, nulls)
		case "bool":
			vals := make([]bool, n)
			for i, row := range w.Rows {
				if cellNull(row, j) {
					nulls[i] = true
					continue
				}
				b, ok := row[j].(bool)
				if !ok {
					return nil, fmt.Errorf("wire: col %q row %d: want bool, got %T", cm.Name, i, row[j])
				}
				vals[i] = b
			}
			col = dataset.BoolColumn(cm.Name, vals, nulls)
		case "time":
			vals := make([]time.Time, n)
			for i, row := range w.Rows {
				if cellNull(row, j) {
					nulls[i] = true
					continue
				}
				s, ok := row[j].(string)
				if !ok {
					return nil, fmt.Errorf("wire: col %q row %d: want time string, got %T", cm.Name, i, row[j])
				}
				tv, err := time.Parse(time.RFC3339Nano, s)
				if err != nil {
					return nil, fmt.Errorf("wire: col %q row %d: %w", cm.Name, i, err)
				}
				vals[i] = tv
			}
			col = dataset.TimeColumn(cm.Name, vals, nulls)
		case "null":
			col = dataset.NewColumn(cm.Name, dataset.TypeNull)
			for i := 0; i < n; i++ {
				col.Append(dataset.Null)
			}
		default:
			return nil, fmt.Errorf("wire: unknown column type %q", cm.Type)
		}
		cols[j] = col
	}
	return dataset.NewTable(w.Name, cols...)
}

func cellNull(row []any, j int) bool { return j >= len(row) || row[j] == nil }

func cellInt(v any) (int64, error) {
	switch x := v.(type) {
	case json.Number:
		return x.Int64()
	case float64:
		// Plain-json decodes deliver every number as float64; a fractional
		// value in an int column is a type error, not something to truncate.
		if x != math.Trunc(x) {
			return 0, fmt.Errorf("want int, got non-integral %v", x)
		}
		return int64(x), nil
	case int64:
		return x, nil
	default:
		return 0, fmt.Errorf("want int, got %T", v)
	}
}

func cellFloat(v any) (float64, error) {
	switch x := v.(type) {
	case json.Number:
		return x.Float64()
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("want float, got %T", v)
	}
}

// DecodeJSON decodes a JSON document into v with number fidelity (cells
// arrive as json.Number, keeping large int64s exact). The client uses it for
// every table-bearing response body.
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	return dec.Decode(v)
}

// Model is the wire form of a trained model attached to a result.
type Model struct {
	Kind        string `json:"kind"`
	Explanation string `json:"explanation,omitempty"`
}

// Result is the wire form of skills.Result: the table page, built charts,
// any model, the message, and — per §2.3 transparency — the degradation
// marker, so remote clients see exactly what in-process callers see.
type Result struct {
	Table        *Table       `json:"table,omitempty"`
	Charts       []*viz.Chart `json:"charts,omitempty"`
	Model        *Model       `json:"model,omitempty"`
	Message      string       `json:"message,omitempty"`
	Degraded     bool         `json:"degraded,omitempty"`
	DegradedNote string       `json:"degraded_note,omitempty"`
}

// EncodeResult converts a skill result to the wire form, paginating the
// table to at most maxRows rows (<= 0 means all).
func EncodeResult(res *skills.Result, maxRows int) *Result {
	if res == nil {
		return nil
	}
	w := &Result{
		Message:      res.Message,
		Degraded:     res.Degraded,
		DegradedNote: res.DegradedNote,
	}
	if res.Table != nil {
		w.Table = EncodeTable(res.Table, 0, maxRows)
	}
	w.Charts = res.Charts
	if res.Model != nil {
		w.Model = &Model{Kind: res.Model.Kind(), Explanation: res.Model.Explain()}
	}
	return w
}

// --- Request/response bodies ---

// CreateSessionRequest opens a session.
type CreateSessionRequest struct {
	Name  string `json:"name"`
	Owner string `json:"owner"`
}

// SessionInfo describes one open session.
type SessionInfo struct {
	Name    string   `json:"name"`
	Owner   string   `json:"owner"`
	Members []string `json:"members"`
	// Steps is the session DAG's node count.
	Steps int `json:"steps"`
	// History is the number of executed requests.
	History int `json:"history"`
}

// SessionsResponse lists open sessions.
type SessionsResponse struct {
	Sessions []string `json:"sessions"`
}

// RunRequest executes work in a session. Exactly one of GEL, Python,
// Phrase, or Program must be set.
type RunRequest struct {
	// User is the requesting platform user (must hold edit access).
	User string `json:"user"`
	// GEL is one GEL sentence; Current names the dataset sentences without
	// explicit inputs act on.
	GEL     string `json:"gel,omitempty"`
	Current string `json:"current,omitempty"`
	// Python is a DataChat Python API script.
	Python string `json:"python,omitempty"`
	// Phrase is a §4.8 phrase-based request against Dataset.
	Phrase  string `json:"phrase,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	// Program is a list of explicit skill steps (the recipe dialect).
	Program []recipe.Step `json:"program,omitempty"`
	// DeadlineMs bounds this request's execution time (0 = server default).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// MaxRows caps the rows inlined in the response table (0 = server
	// default); fetch the rest via the dataset pages or the row stream.
	MaxRows int `json:"max_rows,omitempty"`
	// StreamWorkers sets the morsel pipeline workers for this request's
	// target fragment: 0 keeps the server default, 1 forces the serial
	// pipeline, -1 asks for one worker per core.
	StreamWorkers int `json:"stream_workers,omitempty"`
	// MaxBufferedRows caps the rows the engine's pipeline breakers (group-by,
	// sort, join, distinct) may hold in memory; overflow spills sorted runs
	// to disk. 0 keeps the server default.
	MaxBufferedRows int `json:"max_buffered_rows,omitempty"`
	// CostBudgetBytes caps this request's estimated cloud scan bytes: past
	// it the planner substitutes block samples for the most expensive scans
	// and the result comes back flagged degraded. 0 keeps the server
	// default budget (usually unlimited).
	CostBudgetBytes int64 `json:"cost_budget_bytes,omitempty"`
	// Priority selects the admission class: "" or "interactive" competes
	// normally; "background" queues behind every interactive request and is
	// additionally capped at the server's MaxBackground in-flight slots.
	Priority string `json:"priority,omitempty"`
}

// RunResponse is the outcome of one executed request.
type RunResponse struct {
	Result *Result `json:"result"`
	// Nodes are the DAG node ids the program appended (anchor for saves).
	Nodes []int `json:"nodes"`
	// Cost is the compiled plan's cost estimate (nil when the server's cost
	// model is off).
	Cost *CostSummary `json:"cost,omitempty"`
}

// ShareSessionRequest grants a user access to a session.
type ShareSessionRequest struct {
	By     string `json:"by"`
	With   string `json:"with"`
	Access string `json:"access"` // "view" or "edit"
}

// SaveArtifactRequest persists a session result as an artifact.
type SaveArtifactRequest struct {
	User string `json:"user"`
	// Name is the artifact name to save under.
	Name string `json:"name"`
	// Output names the session dataset whose producing step anchors the
	// recipe slice ("" = the session's latest step).
	Output string `json:"output,omitempty"`
	// Type forces the artifact type ("" = infer from the payload).
	Type string `json:"type,omitempty"`
}

// ArtifactInfo is the wire form of an artifact: metadata, provenance, and
// the payload (table page, chart, model explanation).
type ArtifactInfo struct {
	Name         string         `json:"name"`
	Type         string         `json:"type"`
	Owner        string         `json:"owner"`
	CreatedAt    time.Time      `json:"created_at"`
	RefreshedAt  time.Time      `json:"refreshed_at"`
	Degraded     bool           `json:"degraded,omitempty"`
	DegradedNote string         `json:"degraded_note,omitempty"`
	Recipe       *recipe.Recipe `json:"recipe,omitempty"`
	Table        *Table         `json:"table,omitempty"`
	Chart        *viz.Chart     `json:"chart,omitempty"`
	ModelName    string         `json:"model_name,omitempty"`
	Explanation  string         `json:"explanation,omitempty"`
}

// ArtifactsResponse lists artifact names visible to a user.
type ArtifactsResponse struct {
	Artifacts []string `json:"artifacts"`
}

// ShareArtifactRequest grants a user access to an artifact.
type ShareArtifactRequest struct {
	By     string `json:"by"`
	With   string `json:"with"`
	Access string `json:"access"` // "view" or "edit"
}

// LinkRequest mints a secret link for an artifact.
type LinkRequest struct {
	By string `json:"by"`
}

// LinkResponse carries the minted secret.
type LinkResponse struct {
	Secret string `json:"secret"`
}

// RecipeResponse carries an artifact's recipe in every dialect (§2.3): the
// canonical JSON steps plus the GEL, Python, and consolidated-SQL renderings.
type RecipeResponse struct {
	Recipe *recipe.Recipe `json:"recipe"`
	GEL    []string       `json:"gel,omitempty"`
	Python string         `json:"python,omitempty"`
	SQL    string         `json:"sql,omitempty"`
}

// ExplainResponse wraps the plan EXPLAIN report.
type ExplainResponse struct {
	Explain *plan.Explain `json:"explain"`
}

// FileRequest registers CSV content loadable by name in sessions created
// afterwards (the wire form of file upload).
type FileRequest struct {
	Name    string `json:"name"`
	Content string `json:"content"`
}

// ServerStats counts what the network layer itself did, complementing the
// executor stats below it.
type ServerStats struct {
	// Requests counts execution requests accepted for processing.
	Requests int64 `json:"requests"`
	// Busy409 counts requests refused because the session lock was held.
	Busy409 int64 `json:"busy_409"`
	// Throttled429 counts requests refused by admission control.
	Throttled429 int64 `json:"throttled_429"`
	// Draining503 counts requests refused during graceful drain.
	Draining503 int64 `json:"draining_503"`
	// Deadline504 counts requests that exceeded their deadline.
	Deadline504 int64 `json:"deadline_504"`
	// InFlight and Queued are point-in-time gauges.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// Draining reports whether the server is shutting down.
	Draining bool `json:"draining"`
}

// ClassStats counts one admission priority class.
type ClassStats struct {
	// Admitted counts requests that got an execution slot; Queued those
	// that had to wait for one first; Throttled those refused with 429.
	Admitted  int64 `json:"admitted"`
	Queued    int64 `json:"queued"`
	Throttled int64 `json:"throttled"`
	// Active and Waiting are point-in-time gauges.
	Active  int64 `json:"active"`
	Waiting int64 `json:"waiting"`
	// AvgWaitMs is the mean time admitted requests of this class spent
	// queued (0 when nothing queued).
	AvgWaitMs float64 `json:"avg_wait_ms"`
	// P50WaitMs is the median admission wait across ALL admitted requests
	// of this class (fast-path admissions count as zero wait), estimated
	// from a fixed bucket histogram and reported as the containing bucket's
	// upper bound in milliseconds.
	P50WaitMs float64 `json:"p50_wait_ms"`
}

// TenantStats counts one tenant's admission outcomes.
type TenantStats struct {
	Admitted  int64 `json:"admitted"`
	Throttled int64 `json:"throttled"`
}

// AdmissionStats is the priority-aware admission layer's /statsz section.
type AdmissionStats struct {
	Interactive ClassStats `json:"interactive"`
	Background  ClassStats `json:"background"`
	// MaxBackground echoes the background in-flight cap.
	MaxBackground int `json:"max_background"`
	// Tenants maps user -> outcome counts (bounded; overflow aggregates
	// under "~other").
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// SchedulerStats is the scheduler's /statsz section.
type SchedulerStats struct {
	Jobs     int   `json:"jobs"`
	Done     int   `json:"done"`
	Runs     int64 `json:"runs"`
	Failures int64 `json:"failures"`
	Skips    int64 `json:"skips"`
	Degraded int64 `json:"degraded"`
	// NodesUnchanged/NodesTotal is the fleet-wide fraction of plan nodes
	// incremental refresh never re-executed.
	NodesTotal     int64 `json:"nodes_total"`
	NodesChanged   int64 `json:"nodes_changed"`
	NodesUnchanged int64 `json:"nodes_unchanged"`
	Published      int64 `json:"published"`
}

// BoardHubStats is the insights-board hub's /statsz section.
type BoardHubStats struct {
	Boards      int   `json:"boards"`
	Tiles       int   `json:"tiles"`
	Subscribers int   `json:"subscribers"`
	Publishes   int64 `json:"publishes"`
	Evictions   int64 `json:"evictions"`
	Backfills   int64 `json:"backfills"`
}

// Statsz is the /statsz payload: the server's own counters, the summed
// executor stats of every session, the shared sub-DAG cache counters, and
// the vectorized-engine counters — plus, when the subsystems are wired,
// the admission classes, the scheduler, and the board hub.
type Statsz struct {
	Sessions  int              `json:"sessions"`
	Server    ServerStats      `json:"server"`
	Exec      map[string]int64 `json:"exec"`
	Cache     map[string]int64 `json:"cache"`
	Vec       map[string]int64 `json:"vec,omitempty"`
	Admission *AdmissionStats  `json:"admission,omitempty"`
	Scheduler *SchedulerStats  `json:"scheduler,omitempty"`
	Boards    *BoardHubStats   `json:"boards,omitempty"`
}

// --- Schedules ---

// ScheduleRequest creates a scheduled job. Exactly one of Recipe or
// Artifact (the name of a saved artifact whose recipe to re-run) must be
// set.
type ScheduleRequest struct {
	Name string `json:"name"`
	// User is the identity background runs execute as (needs edit access
	// on the target session).
	User string `json:"user"`
	// Session is the session replays run in ("" = a dedicated
	// "sched:<name>" session owned by User).
	Session  string         `json:"session,omitempty"`
	Recipe   *recipe.Recipe `json:"recipe,omitempty"`
	Artifact string         `json:"artifact,omitempty"`
	// EveryMs is the trigger period in milliseconds.
	EveryMs int64 `json:"every_ms"`
	// Board/Tile say where refreshes are published ("" board = nowhere).
	Board string `json:"board,omitempty"`
	Tile  string `json:"tile,omitempty"`
	// MaxRuns stops the job after that many completed runs (0 = unlimited).
	MaxRuns int `json:"max_runs,omitempty"`
}

// ScheduleRun is the wire form of one run-history record.
type ScheduleRun struct {
	Seq       int       `json:"seq"`
	At        time.Time `json:"at"`
	ElapsedMs int64     `json:"elapsed_ms"`

	FPTotal     int `json:"fp_total"`
	FPChanged   int `json:"fp_changed"`
	FPUnchanged int `json:"fp_unchanged"`

	TasksRun  int `json:"tasks_run,omitempty"`
	CacheHits int `json:"cache_hits,omitempty"`

	Degraded     bool   `json:"degraded,omitempty"`
	Skipped      bool   `json:"skipped,omitempty"`
	SkipReason   string `json:"skip_reason,omitempty"`
	Error        string `json:"error,omitempty"`
	BoardVersion uint64 `json:"board_version,omitempty"`
}

// ScheduleInfo describes one job and its recent runs.
type ScheduleInfo struct {
	Name    string        `json:"name"`
	Session string        `json:"session"`
	User    string        `json:"user"`
	Board   string        `json:"board,omitempty"`
	Tile    string        `json:"tile,omitempty"`
	EveryMs int64         `json:"every_ms"`
	MaxRuns int           `json:"max_runs,omitempty"`
	NextRun time.Time     `json:"next_run"`
	Runs    int           `json:"runs"`
	Done    bool          `json:"done,omitempty"`
	History []ScheduleRun `json:"history,omitempty"`
}

// SchedulesResponse lists jobs.
type SchedulesResponse struct {
	Schedules []ScheduleInfo `json:"schedules"`
}

// --- Boards ---

// CreateBoardRequest makes an insights board.
type CreateBoardRequest struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Owner string `json:"owner"`
}

// TileInfo is one tile's pinned artifact.
type TileInfo struct {
	Tile    string      `json:"tile"`
	Updates int         `json:"updates"`
	Last    *BoardEvent `json:"last,omitempty"`
}

// BoardInfo describes a board and its tiles as of Version.
type BoardInfo struct {
	ID      string     `json:"id"`
	Name    string     `json:"name"`
	Owner   string     `json:"owner"`
	Version uint64     `json:"version"`
	Created time.Time  `json:"created"`
	Tiles   []TileInfo `json:"tiles,omitempty"`
}

// BoardsResponse lists boards.
type BoardsResponse struct {
	Boards []BoardInfo `json:"boards"`
}
