package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrDeadline marks retry loops abandoned because the next backoff would
// cross the caller's deadline. Errors returned by Do on that path wrap both
// ErrDeadline and the last attempt's failure, so callers (e.g. the network
// layer mapping failures to status codes) can detect deadline exhaustion
// with errors.Is instead of string matching.
var ErrDeadline = errors.New("faults: deadline exceeded")

// Default backoff parameters, applied when a policy enables retries but
// leaves the corresponding field zero.
const (
	DefaultBaseDelay  = 10 * time.Millisecond
	DefaultMaxDelay   = 2 * time.Second
	DefaultMultiplier = 2.0
)

// RetryPolicy configures capped exponential backoff with jitter. The zero
// value performs exactly one attempt — fail-fast, the paper's §2.4 default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry
	// (DefaultBaseDelay when zero).
	BaseDelay time.Duration
	// MaxDelay caps every backoff, jitter included
	// (DefaultMaxDelay when zero).
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry (DefaultMultiplier when zero).
	Multiplier float64
	// JitterFrac spreads each backoff uniformly over
	// [delay*(1-J), delay*(1+J)]; 0 keeps the schedule exact. Values are
	// clamped to [0, 1).
	JitterFrac float64
	// Seed drives the jitter stream, so a retry schedule is reproducible.
	Seed int64
}

// Enabled reports whether the policy performs any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

func (p RetryPolicy) normalized() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.BaseDelay > p.MaxDelay {
		p.BaseDelay = p.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.JitterFrac >= 1 {
		p.JitterFrac = 0.999
	}
	return p
}

// Envelope returns the un-jittered backoff before the n-th retry (n >= 1):
// BaseDelay*Multiplier^(n-1), capped at MaxDelay. The envelope is
// monotonically non-decreasing in n.
func (p RetryPolicy) Envelope(n int) time.Duration {
	p = p.normalized()
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// delayAt draws the jittered backoff before the n-th retry from rng. The
// result stays within [Envelope(n)*(1-J), Envelope(n)*(1+J)] and never
// exceeds MaxDelay.
func (p RetryPolicy) delayAt(n int, rng *rand.Rand) time.Duration {
	p = p.normalized()
	env := p.Envelope(n)
	if p.JitterFrac == 0 {
		return env
	}
	spread := 1 + p.JitterFrac*(2*rng.Float64()-1)
	d := time.Duration(float64(env) * spread)
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Delays returns the deterministic jittered backoff schedule for the first
// n retries under this policy's seed — the exact delays Do will sleep.
func (p RetryPolicy) Delays(n int) []time.Duration {
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = p.delayAt(i+1, rng)
	}
	return out
}

// RetryStats reports what one Do call did.
type RetryStats struct {
	// Attempts is how many times fn ran (>= 1).
	Attempts int
	// Backoff is the total (virtual) time slept between attempts.
	Backoff time.Duration
}

// Do runs fn under the retry policy. Errors for which retryable returns
// false — permanent faults, plain execution errors — return immediately;
// retryable errors are retried after a backoff drawn from the policy, up to
// MaxAttempts. A non-zero deadline bounds the total schedule: a backoff that
// would cross it is not taken and the last error is returned wrapped in a
// deadline note. Cancelling ctx aborts a pending backoff.
//
// retryable nil defaults to IsTransient; clock nil defaults to Real().
func Do[T any](ctx context.Context, clock Clock, p RetryPolicy, deadline time.Time,
	retryable func(error) bool, fn func() (T, error)) (T, RetryStats, error) {
	var zero T
	if clock == nil {
		clock = Real()
	}
	if retryable == nil {
		retryable = IsTransient
	}
	stats := RetryStats{}
	rng := rand.New(rand.NewSource(p.Seed))
	for {
		if err := ctx.Err(); err != nil {
			return zero, stats, err
		}
		res, err := fn()
		stats.Attempts++
		if err == nil {
			return res, stats, nil
		}
		if !retryable(err) {
			return zero, stats, err
		}
		if stats.Attempts >= p.MaxAttempts {
			if p.Enabled() {
				err = fmt.Errorf("faults: giving up after %d attempts: %w", stats.Attempts, err)
			}
			return zero, stats, err
		}
		delay := p.delayAt(stats.Attempts, rng)
		if !deadline.IsZero() && clock.Now().Add(delay).After(deadline) {
			return zero, stats, fmt.Errorf("faults: retry deadline exceeded after %d attempts: %w: %w", stats.Attempts, ErrDeadline, err)
		}
		if serr := clock.Sleep(ctx, delay); serr != nil {
			return zero, stats, serr
		}
		stats.Backoff += delay
	}
}
