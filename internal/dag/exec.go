package dag

import (
	"context"
	"fmt"
	"sync/atomic"

	"datachat/internal/plan"
	"datachat/internal/skills"
)

// Stats counts what an execution did, for transparency and benchmarks. It is
// a point-in-time snapshot taken by Executor.Stats; the live counters are
// atomic so parallel branches update them without locking.
type Stats struct {
	// TasksRun is the number of execution tasks dispatched.
	TasksRun int
	// SQLTasks counts consolidated SQL tasks; DirectTasks counts direct
	// skill applications.
	SQLTasks, DirectTasks int
	// NodesConsolidated counts skill nodes folded into SQL tasks.
	NodesConsolidated int
	// QueryBlocks sums the SELECT-block counts of executed SQL tasks — the
	// §2.2 flatness measure.
	QueryBlocks int
	// RowsMaterialized sums the row counts of every result published into
	// the session context — the volume pushdown is meant to shrink.
	RowsMaterialized int
	// CacheHits counts tasks served from the sub-DAG cache (including
	// computations shared with a concurrent identical request).
	CacheHits int
	// CacheMisses counts cacheable tasks that had to execute.
	CacheMisses int
	// Retries counts task re-attempts after transient failures.
	Retries int
	// PermanentFailures counts tasks that failed with a permanent fault.
	PermanentFailures int
	// Degraded counts tasks whose result came from a fallback source.
	Degraded int
	// StreamedChunks and StreamedRows count what target streaming forwarded
	// to ExecOptions.Stream sinks (live morsel chunks plus re-chunked
	// cache-hit/direct results).
	StreamedChunks, StreamedRows int
	// SpillRuns, SpilledRows, and SpilledBytes sum the disk spill activity of
	// streamed fragments whose pipeline breakers overflowed
	// StreamMaxBufferedRows.
	SpillRuns, SpilledRows int
	SpilledBytes           int64
	// PeakBufferedRows is the highest per-stream buffered-row peak observed
	// across streamed fragments (a high-water mark, not a sum).
	PeakBufferedRows int
	// StreamWorkers is the resolved morsel worker count of the most recently
	// streamed fragment (a gauge, not a sum).
	StreamWorkers int
}

// counters is the executor's live, atomically updated form of Stats.
type counters struct {
	tasksRun, sqlTasks, directTasks      atomic.Int64
	nodesConsolidated, queryBlocks       atomic.Int64
	rowsMaterialized                     atomic.Int64
	cacheHits, cacheMisses               atomic.Int64
	retries, permanentFailures, degraded atomic.Int64
	streamedChunks, streamedRows         atomic.Int64
	spillRuns, spilledRows, spilledBytes atomic.Int64
	peakBuffered, streamWorkers          atomic.Int64
}

// notePeakBuffered raises the buffered-row high-water mark (CAS max, since
// parallel branches report concurrently).
func (c *counters) notePeakBuffered(v int64) {
	for {
		cur := c.peakBuffered.Load()
		if v <= cur || c.peakBuffered.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		TasksRun:          int(c.tasksRun.Load()),
		SQLTasks:          int(c.sqlTasks.Load()),
		DirectTasks:       int(c.directTasks.Load()),
		NodesConsolidated: int(c.nodesConsolidated.Load()),
		QueryBlocks:       int(c.queryBlocks.Load()),
		RowsMaterialized:  int(c.rowsMaterialized.Load()),
		CacheHits:         int(c.cacheHits.Load()),
		CacheMisses:       int(c.cacheMisses.Load()),
		Retries:           int(c.retries.Load()),
		PermanentFailures: int(c.permanentFailures.Load()),
		Degraded:          int(c.degraded.Load()),
		StreamedChunks:    int(c.streamedChunks.Load()),
		StreamedRows:      int(c.streamedRows.Load()),
		SpillRuns:         int(c.spillRuns.Load()),
		SpilledRows:       int(c.spilledRows.Load()),
		SpilledBytes:      c.spilledBytes.Load(),
		PeakBufferedRows:  int(c.peakBuffered.Load()),
		StreamWorkers:     int(c.streamWorkers.Load()),
	}
}

func (c *counters) reset() {
	c.tasksRun.Store(0)
	c.sqlTasks.Store(0)
	c.directTasks.Store(0)
	c.nodesConsolidated.Store(0)
	c.queryBlocks.Store(0)
	c.rowsMaterialized.Store(0)
	c.cacheHits.Store(0)
	c.cacheMisses.Store(0)
	c.retries.Store(0)
	c.permanentFailures.Store(0)
	c.degraded.Store(0)
	c.streamedChunks.Store(0)
	c.streamedRows.Store(0)
	c.spillRuns.Store(0)
	c.spilledRows.Store(0)
	c.spilledBytes.Store(0)
	c.peakBuffered.Store(0)
	c.streamWorkers.Store(0)
}

// Executor compiles and runs DAGs against a skill context. Compilation
// lowers the sub-DAG into the internal/plan IR and runs the optimizing pass
// pipeline (slice, fuse, fingerprint, cache probe, consolidate, pushdown);
// the executor then schedules one task per surviving node or fragment. It
// owns (or shares) the sub-DAG result cache, which persists across Run calls
// so shared prefixes of successive requests are reused (§2.2) — keyed by
// canonical plan fingerprints, so identical pipelines built via different
// front ends share entries.
//
// Concurrency: one Run schedules independent DAG branches onto a bounded
// worker pool (see ExecOptions). The cache may additionally be shared across
// the executors of many sessions (SetCache), in which case identical
// concurrent computations are deduplicated. The configuration fields
// (Registry, Ctx, Consolidate, Fuse, Pushdown, UseCache, Options) must not
// be mutated while a Run is in progress.
type Executor struct {
	// Registry resolves skill definitions.
	Registry *skills.Registry
	// Ctx is the session execution environment.
	Ctx *skills.Context
	// Consolidate enables merging relational chains into single SQL tasks
	// (on by default via NewExecutor; turn off for the naive baseline).
	Consolidate bool
	// Fuse enables adjacent-operator fusion on every execution (consecutive
	// KeepRows/LimitRows/KeepColumns collapse into one step).
	Fuse bool
	// Pushdown enables copying a scan's sole consumer's projection or filter
	// into the scan itself.
	Pushdown bool
	// UseCache enables the sub-DAG result cache.
	UseCache bool
	// CSE enables session-wide common-subexpression elimination over the
	// whole lowered graph before slicing.
	CSE bool
	// JoinReorder enables cost-based reordering of inner-join chains.
	JoinReorder bool
	// CostModel enables per-pass cost estimation (and, with a positive
	// Options.CostBudgetBytes, budgeted sample substitution).
	CostModel bool
	// Options tunes scheduling (worker-pool size).
	Options ExecOptions

	cache    *Cache
	statsReg *plan.StatsRegistry
	lastCost atomic.Pointer[plan.PlanCost]
	counters counters
}

// NewExecutor returns an executor with every optimizing pass and caching
// enabled, backed by a private bounded cache, executing with GOMAXPROCS
// workers.
func NewExecutor(reg *skills.Registry, ctx *skills.Context) *Executor {
	return &Executor{
		Registry:    reg,
		Ctx:         ctx,
		Consolidate: true,
		Fuse:        true,
		Pushdown:    true,
		UseCache:    true,
		CSE:         true,
		JoinReorder: true,
		CostModel:   true,
		cache:       NewCache(DefaultCacheCapacity),
		statsReg:    plan.NewStatsRegistry(plan.DefaultStatsCapacity),
	}
}

// SetCache replaces the executor's sub-DAG cache, typically with one shared
// across every session of a platform so sessions reuse (and deduplicate)
// each other's work. Call before the first Run.
func (e *Executor) SetCache(c *Cache) {
	if c != nil {
		e.cache = c
	}
}

// Cache returns the executor's sub-DAG cache.
func (e *Executor) Cache() *Cache { return e.cache }

// SetStatsRegistry replaces the executor's observed-stats registry,
// typically with one shared across every session of a platform so cost
// estimates learn from all traffic. Call before the first Run.
func (e *Executor) SetStatsRegistry(r *plan.StatsRegistry) {
	if r != nil {
		e.statsReg = r
	}
}

// StatsRegistry returns the executor's observed-stats registry (may be nil
// for zero-value executors).
func (e *Executor) StatsRegistry() *plan.StatsRegistry { return e.statsReg }

// LastPlanCost returns the cost estimate of the most recently executed
// plan, or nil when the cost model is off or nothing has run yet. Explain
// (read-only) never updates it.
func (e *Executor) LastPlanCost() *plan.PlanCost { return e.lastCost.Load() }

// Stats returns cumulative execution statistics.
func (e *Executor) Stats() Stats { return e.counters.snapshot() }

// ResetStats zeroes the statistics counters.
func (e *Executor) ResetStats() { e.counters.reset() }

// CacheStats returns the cache's own counters (shared figures when the cache
// is shared across sessions).
func (e *Executor) CacheStats() CacheStats { return e.cache.Stats() }

// InvalidateCache drops every cached sub-DAG result (used after data
// refreshes). In-flight computations from before the call cannot repopulate
// the cache with stale results.
func (e *Executor) InvalidateCache() { e.cache.Invalidate() }

// Run executes the DAG up to target and returns its result. Intermediate
// results are materialized into the context under their output names so
// later requests (and sibling branches) can reference them.
//
// Execution is a two-phase parallel topological schedule: a serial planning
// pass compiles the needed ancestors into tasks — consolidation chains stay
// atomic units — computes cache keys, and prunes sub-DAGs whose results are
// already cached; then a bounded worker pool executes independent tasks
// concurrently and joins at the target.
//
// Cache policy for consolidated chains: a chain task caches only its tail
// signature (interior results never exist — the chain runs as one flattened
// query), but chains stop extending at an already-cached prefix, so a prefix
// computed by an earlier, shorter request is reused as the base instead of
// being refolded and recomputed. TestChainPrefixCachePolicy pins this down.
func (e *Executor) Run(g *Graph, target NodeID) (*skills.Result, error) {
	return e.RunContext(context.Background(), g, target)
}

// RunContext is Run with an explicit context: cancelling it aborts pending
// retry backoffs and stops new tasks from being scheduled (attempts already
// executing finish — skill bodies are not interruptible).
func (e *Executor) RunContext(ctx context.Context, g *Graph, target NodeID) (*skills.Result, error) {
	p, err := e.plan(g, target)
	if err != nil {
		return nil, err
	}
	if err := e.runPlan(ctx, p, e.Options.Parallelism); err != nil {
		return nil, err
	}
	t := p.byNode[target]
	if t == nil || t.result == nil {
		return nil, fmt.Errorf("dag: internal: no result for target node %d", target)
	}
	return t.result, nil
}

// CompileSQL returns the consolidated SQL for the relational chain ending
// at target without executing it — the SQL view of a recipe step (§2.3).
func (e *Executor) CompileSQL(g *Graph, target NodeID) (string, error) {
	var chain []NodeID
	cur := target
	for cur >= 0 {
		node, err := g.Node(cur)
		if err != nil {
			return "", err
		}
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return "", err
		}
		if def.MergeSQL == nil || len(node.Parents) != 1 {
			break
		}
		chain = append(chain, cur)
		cur = node.Parents[0]
	}
	if len(chain) == 0 {
		return "", fmt.Errorf("dag: node %d is not a relational skill", target)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	head, err := g.Node(chain[0])
	if err != nil {
		return "", err
	}
	baseName := head.Inv.Inputs[0]
	if head.Parents[0] >= 0 {
		parent, err := g.Node(head.Parents[0])
		if err != nil {
			return "", err
		}
		baseName = parent.OutputName()
	}
	builder := skills.NewQueryBuilder(baseName)
	for _, nid := range chain {
		node, err := g.Node(nid)
		if err != nil {
			return "", err
		}
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return "", err
		}
		if err := def.MergeSQL(builder, node.Inv); err != nil {
			return "", err
		}
	}
	return builder.SQL(), nil
}
