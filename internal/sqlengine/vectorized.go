package sqlengine

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/expr"
)

// This file holds the vectorized side of the executor. Each entry point
// (vecFilter, vecProjection, vecGrouped, vecJoinPairs) tries to compile the
// statement fragment into typed kernels over whole columns; when a fragment
// uses something the kernel compiler does not support, it reports !ok and
// the caller runs the row-at-a-time path, which remains authoritative. The
// differential tests execute queries both ways and require identical
// tables, so everything here replicates the row path's semantics exactly:
// three-valued null logic, Compare's NaN-equals-everything floats, the
// rendered group-key equivalence, and the hash-prefilter-plus-full-residual
// join contract.

// vecStats counts, per executor feature, how often the vectorized path ran
// and how often it fell back. The differential harness asserts both sides
// are exercised; the experiment driver reports them.
var vecStats struct {
	Filters, FilterFallbacks         atomic.Int64
	Projections, ProjectionFallbacks atomic.Int64
	Groups, GroupFallbacks           atomic.Int64
	Joins, ResidualFallbacks         atomic.Int64
}

// VecCounters snapshots the vectorized-execution counters. Keys:
// filters, filter_fallbacks, projections, projection_fallbacks, groups,
// group_fallbacks, joins, residual_fallbacks.
func VecCounters() map[string]int64 {
	return map[string]int64{
		"filters":              vecStats.Filters.Load(),
		"filter_fallbacks":     vecStats.FilterFallbacks.Load(),
		"projections":          vecStats.Projections.Load(),
		"projection_fallbacks": vecStats.ProjectionFallbacks.Load(),
		"groups":               vecStats.Groups.Load(),
		"group_fallbacks":      vecStats.GroupFallbacks.Load(),
		"joins":                vecStats.Joins.Load(),
		"residual_fallbacks":   vecStats.ResidualFallbacks.Load(),
	}
}

// relBinder exposes a rel's columns to the kernel compiler using the same
// qualified-name resolution (and the same ambiguity errors) as rowEnv.
type relBinder struct{ r *rel }

// BindColumn implements expr.ColumnBinder.
func (b relBinder) BindColumn(name string) (*dataset.Column, error) {
	i, err := b.r.lookup(name)
	if err != nil {
		return nil, err
	}
	return b.r.cols[i], nil
}

// vecFilter evaluates WHERE as one kernel pass and returns the selection
// vector of surviving row indexes, truncated to rowBudget when the LIMIT
// push-down applies (rowBudget < 0 means unbounded).
func (e *executor) vecFilter(where expr.Expr, source *rel, rowBudget int) ([]int, bool, error) {
	if !e.vec {
		return nil, false, nil
	}
	k, ok := expr.Compile(where, relBinder{source}, source.numRows())
	if !ok {
		vecStats.FilterFallbacks.Add(1)
		return nil, false, nil
	}
	v, err := k()
	if err != nil {
		return nil, false, err
	}
	vecStats.Filters.Add(1)
	return v.SelectTrue(rowBudget), true, nil
}

// outputBinder resolves ORDER BY column references the way the row path's
// chainEnv{outRow, rowEnv} does: select-list output names first (exact
// match wins, last duplicate wins, then a unique case-insensitive match),
// then the source relation. An ambiguous fold match errors so the caller
// falls back.
type outputBinder struct {
	names []string
	cols  []*dataset.Column
	src   relBinder
}

// BindColumn implements expr.ColumnBinder.
func (b outputBinder) BindColumn(name string) (*dataset.Column, error) {
	for i := len(b.names) - 1; i >= 0; i-- {
		if b.names[i] == name {
			return b.cols[i], nil
		}
	}
	matchIdx := -1
	matchName := ""
	for i := len(b.names) - 1; i >= 0; i-- {
		if strings.EqualFold(b.names[i], name) {
			if matchIdx >= 0 && b.names[i] != matchName {
				return nil, fmt.Errorf("sql: ambiguous order key %q", name)
			}
			if matchIdx < 0 {
				matchIdx, matchName = i, b.names[i]
			}
		}
	}
	if matchIdx >= 0 {
		return b.cols[matchIdx], nil
	}
	return b.src.BindColumn(name)
}

// vecProjection evaluates the select list as kernels, one vector per output
// column, and sorts via typed key columns decoded once. It runs after
// columnarProjection (pure column lists never reach here) and reports
// ok=false when any item or order key fails to compile.
func (e *executor) vecProjection(stmt *SelectStmt, source *rel) (*dataset.Table, bool, error) {
	if !e.vec {
		return nil, false, nil
	}
	names, exprs := e.expandItems(stmt.Items, source)
	n := source.numRows()
	binder := relBinder{source}
	kernels := make([]expr.Kernel, len(exprs))
	for i, ex := range exprs {
		k, ok := expr.Compile(ex, binder, n)
		if !ok {
			vecStats.ProjectionFallbacks.Add(1)
			return nil, false, nil
		}
		kernels[i] = k
	}
	outCols := make([]*dataset.Column, len(kernels))
	for i, k := range kernels {
		v, err := k()
		if err != nil {
			return nil, false, err
		}
		outCols[i] = v.Column(names[i])
	}
	var sortIdx []int
	if len(stmt.OrderBy) > 0 {
		ob := outputBinder{names: names, cols: outCols, src: binder}
		keyCols := make([]*dataset.Column, len(stmt.OrderBy))
		desc := make([]bool, len(stmt.OrderBy))
		for ki, o := range stmt.OrderBy {
			k, ok := expr.Compile(o.Expr, ob, n)
			if !ok {
				vecStats.ProjectionFallbacks.Add(1)
				return nil, false, nil
			}
			v, err := k()
			if err != nil {
				return nil, false, err
			}
			keyCols[ki] = v.Column("")
			desc[ki] = o.Desc
		}
		sortIdx = dataset.SortIndex(keyCols, desc)
	}
	out, err := assembleTable("result", outCols)
	if err != nil {
		return nil, false, err
	}
	if sortIdx != nil {
		out = out.Take(sortIdx)
	}
	vecStats.Projections.Add(1)
	return out, true, nil
}

// vecGrouped computes group assignment and aggregates in vectorized form:
// byte-encoded composite keys into a hash table of dense group ids, then
// one streaming pass per aggregate over typed slices — no per-group row
// index slices and no boxed values until the per-group output phase.
func (e *executor) vecGrouped(stmt *SelectStmt, source *rel, aggs []*AggCall) ([]groupData, bool, error) {
	if !e.vec {
		return nil, false, nil
	}
	for _, a := range aggs {
		if a.Distinct {
			vecStats.GroupFallbacks.Add(1)
			return nil, false, nil
		}
		switch a.Name {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
		default: // MEDIAN, STDDEV need the full value set per group
			vecStats.GroupFallbacks.Add(1)
			return nil, false, nil
		}
	}
	n := source.numRows()
	binder := relBinder{source}

	var groupOf []int32
	var firstRows []int
	if len(stmt.GroupBy) == 0 {
		// Everything aggregates into one group, even over zero rows.
		groupOf = make([]int32, n)
		firstRows = []int{0}
	} else {
		keyVecs := make([]*expr.Vec, len(stmt.GroupBy))
		for i, ge := range stmt.GroupBy {
			k, ok := expr.Compile(ge, binder, n)
			if !ok {
				vecStats.GroupFallbacks.Add(1)
				return nil, false, nil
			}
			v, err := k()
			if err != nil {
				return nil, false, err
			}
			keyVecs[i] = v
		}
		groupOf, firstRows = hashGroups(keyVecs, n)
	}

	argVecs := make([]*expr.Vec, len(aggs))
	for ai, a := range aggs {
		if a.Star {
			continue
		}
		k, ok := expr.Compile(a.Arg, binder, n)
		if !ok {
			vecStats.GroupFallbacks.Add(1)
			return nil, false, nil
		}
		v, err := k()
		if err != nil {
			return nil, false, err
		}
		if (a.Name == "SUM" || a.Name == "AVG") && !numericAggVec(v.Type) {
			// The reference errors on SUM/AVG over non-numeric values;
			// reproduce it by running the row path.
			vecStats.GroupFallbacks.Add(1)
			return nil, false, nil
		}
		argVecs[ai] = v
	}

	ngroups := len(firstRows)
	groups := make([]groupData, ngroups)
	for gi := range groups {
		groups[gi] = groupData{firstRow: firstRows[gi], aggVals: make(expr.MapEnv, len(aggs))}
	}
	for ai, a := range aggs {
		vals := streamAgg(a, argVecs[ai], groupOf, ngroups)
		key := a.Key()
		for gi, v := range vals {
			groups[gi].aggVals[key] = v
		}
	}
	vecStats.Groups.Add(1)
	return groups, true, nil
}

func numericAggVec(t dataset.Type) bool {
	// Bool joins the numerics because AsFloat coerces it; TypeNull never
	// yields a value, so SUM/AVG stay null without erroring.
	switch t {
	case dataset.TypeInt, dataset.TypeFloat, dataset.TypeBool, dataset.TypeNull:
		return true
	}
	return false
}

var canonicalNaNBits = math.Float64bits(math.NaN())

// hashGroups assigns each row a dense group id by byte-encoding its
// composite key into a reused buffer. Group ids run in first-seen order,
// matching the reference path's output ordering; the map only allocates a
// key string on insert, once per distinct group.
func hashGroups(keys []*expr.Vec, n int) (groupOf []int32, firstRows []int) {
	groupOf = make([]int32, n)
	ids := make(map[string]int32, 64)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, kv := range keys {
			buf = appendGroupKey(buf, kv, i)
		}
		id, ok := ids[string(buf)]
		if !ok {
			id = int32(len(firstRows))
			ids[string(buf)] = id
			firstRows = append(firstRows, i)
		}
		groupOf[i] = id
	}
	return groupOf, firstRows
}

// appendGroupKey encodes one key cell. The encoding's equivalence classes
// match the reference's rendered keys per type: int64 and unix-nano times
// are bijective with their renders, float bits are bijective with the %g
// render apart from NaN (canonicalized, as all NaNs render "NaN") while -0
// stays distinct from +0 as the renders do, and a type tag separates types
// the way the "type:" prefix does. Strings are length-prefixed, which is
// strictly more precise than the reference's \x00-delimited concatenation.
func appendGroupKey(buf []byte, v *expr.Vec, i int) []byte {
	if v.NullAt(i) {
		return append(buf, 0)
	}
	switch v.Type {
	case dataset.TypeInt:
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I[i]))
	case dataset.TypeFloat:
		bits := math.Float64bits(v.F[i])
		if v.F[i] != v.F[i] {
			bits = canonicalNaNBits
		}
		buf = append(buf, 2)
		buf = binary.LittleEndian.AppendUint64(buf, bits)
	case dataset.TypeString:
		s := v.S[i]
		buf = append(buf, 3)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s)))
		buf = append(buf, s...)
	case dataset.TypeBool:
		if v.B[i] {
			buf = append(buf, 4, 1)
		} else {
			buf = append(buf, 4, 0)
		}
	case dataset.TypeTime:
		buf = append(buf, 5)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.T[i]))
	}
	return buf
}

// streamAgg computes one aggregate for every group in a single pass over
// the argument vector. Accumulation visits rows in ascending order, so each
// group sees the same float64 addition sequence as the reference's
// per-group loop and sums are bit-identical.
func streamAgg(a *AggCall, arg *expr.Vec, groupOf []int32, ngroups int) []dataset.Value {
	out := make([]dataset.Value, ngroups) // zero Value is null
	if a.Star {
		counts := make([]int64, ngroups)
		for _, g := range groupOf {
			counts[g]++
		}
		for gi, c := range counts {
			out[gi] = dataset.Int(c)
		}
		return out
	}
	switch a.Name {
	case "COUNT":
		counts := make([]int64, ngroups)
		for i, g := range groupOf {
			if !arg.NullAt(i) {
				counts[g]++
			}
		}
		for gi, c := range counts {
			out[gi] = dataset.Int(c)
		}
	case "SUM", "AVG":
		sums := make([]float64, ngroups)
		counts := make([]int64, ngroups)
		nulls := arg.Nulls
		switch arg.Type {
		case dataset.TypeInt:
			for i, g := range groupOf {
				if nulls != nil && nulls[i] {
					continue
				}
				sums[g] += float64(arg.I[i])
				counts[g]++
			}
		case dataset.TypeFloat:
			for i, g := range groupOf {
				if nulls != nil && nulls[i] {
					continue
				}
				sums[g] += arg.F[i]
				counts[g]++
			}
		case dataset.TypeBool:
			for i, g := range groupOf {
				if nulls != nil && nulls[i] {
					continue
				}
				if arg.B[i] {
					sums[g]++
				}
				counts[g]++
			}
		case dataset.TypeNull:
			// no values anywhere: every group stays null
		}
		for gi := range out {
			if counts[gi] == 0 {
				continue
			}
			switch {
			case a.Name == "AVG":
				out[gi] = dataset.Float(sums[gi] / float64(counts[gi]))
			case arg.Type == dataset.TypeInt:
				// The reference accumulates in float64 even for int
				// columns, then truncates; keep its precision behavior.
				out[gi] = dataset.Int(int64(sums[gi]))
			default:
				out[gi] = dataset.Float(sums[gi])
			}
		}
	case "MIN", "MAX":
		min := a.Name == "MIN"
		switch arg.Type {
		case dataset.TypeInt:
			return minMaxVals(arg.I, arg.Nulls, groupOf, ngroups, min, dataset.Int)
		case dataset.TypeFloat:
			return minMaxVals(arg.F, arg.Nulls, groupOf, ngroups, min, dataset.Float)
		case dataset.TypeString:
			return minMaxVals(arg.S, arg.Nulls, groupOf, ngroups, min, dataset.Str)
		case dataset.TypeTime:
			return minMaxVals(arg.T, arg.Nulls, groupOf, ngroups, min, func(nanos int64) dataset.Value {
				return dataset.Time(time.Unix(0, nanos).UTC())
			})
		case dataset.TypeBool:
			ints := make([]int64, len(arg.B))
			for i, bv := range arg.B {
				if bv {
					ints[i] = 1
				}
			}
			return minMaxVals(ints, arg.Nulls, groupOf, ngroups, min, func(x int64) dataset.Value {
				return dataset.Bool(x != 0)
			})
		case dataset.TypeNull:
			// every group stays null
		}
	}
	return out
}

// minMaxVals keeps the first non-null value per group and replaces it only
// on a strict compare — the same rule as the reference's Compare loop, so a
// NaN neither displaces a held value nor is displaced once held.
func minMaxVals[T int64 | float64 | string](vals []T, nulls []bool, groupOf []int32, ngroups int, min bool, box func(T) dataset.Value) []dataset.Value {
	best := make([]T, ngroups)
	has := make([]bool, ngroups)
	for i, g := range groupOf {
		if nulls != nil && nulls[i] {
			continue
		}
		v := vals[i]
		if !has[g] {
			best[g], has[g] = v, true
			continue
		}
		if min {
			if v < best[g] {
				best[g] = v
			}
		} else if v > best[g] {
			best[g] = v
		}
	}
	out := make([]dataset.Value, ngroups)
	for gi := range out {
		if has[gi] {
			out[gi] = box(best[gi])
		}
	}
	return out
}

// vecJoinPairs runs the equi hash join with byte-encoded composite keys.
// The hash key is a prefilter — the full ON expression is always re-checked
// per candidate pair, vectorized over gathered pair columns when it
// compiles — so the key encoding only needs to preserve the reference's
// candidate equivalence: numerics (ints, floats, bools) normalize to
// float64 bits the way joinKey's %g render normalizes them, NaNs
// canonicalize, -0 stays distinct from +0, and rows with a null key are
// skipped outright because the residual rejects null comparisons anyway.
func (e *executor) vecJoinPairs(on expr.Expr, combined, left, right *rel, leftKeys, rightKeys []int, matchedLeft []bool) (leftIdx, rightIdx []int, err error) {
	leftVecs := keyVecs(left, leftKeys)
	rightVecs := keyVecs(right, rightKeys)

	build := make(map[string][]int32, right.numRows())
	var buf []byte
	for ri := 0; ri < right.numRows(); ri++ {
		key, ok := appendJoinKey(buf[:0], rightVecs, ri)
		buf = key
		if !ok {
			continue
		}
		build[string(key)] = append(build[string(key)], int32(ri))
	}
	var candL, candR []int
	for li := 0; li < left.numRows(); li++ {
		key, ok := appendJoinKey(buf[:0], leftVecs, li)
		buf = key
		if !ok {
			continue
		}
		for _, ri := range build[string(key)] {
			candL = append(candL, li)
			candR = append(candR, int(ri))
		}
	}
	vecStats.Joins.Add(1)

	accept := func(p int) {
		leftIdx = append(leftIdx, candL[p])
		rightIdx = append(rightIdx, candR[p])
		if matchedLeft != nil {
			matchedLeft[candL[p]] = true
		}
	}
	pb := &pairBinder{combined: combined, left: left, right: right, leftIdx: candL, rightIdx: candR, cache: map[int]*dataset.Column{}}
	if k, ok := expr.Compile(on, pb, len(candL)); ok {
		v, kerr := k()
		if kerr != nil {
			return nil, nil, kerr
		}
		for _, p := range v.SelectTrue(-1) {
			accept(p)
		}
		return leftIdx, rightIdx, nil
	}
	vecStats.ResidualFallbacks.Add(1)
	for p := range candL {
		ok, rerr := e.joinResidual(on, combined, left, candL[p], right, candR[p])
		if rerr != nil {
			return nil, nil, rerr
		}
		if ok {
			accept(p)
		}
	}
	return leftIdx, rightIdx, nil
}

func keyVecs(r *rel, keys []int) []*expr.Vec {
	vecs := make([]*expr.Vec, len(keys))
	for i, k := range keys {
		v, _ := expr.ColumnVec(r.cols[k])
		vecs[i] = v
	}
	return vecs
}

// appendJoinKey encodes one side's composite join key for row i, or
// reports false when any key cell is null.
func appendJoinKey(buf []byte, vecs []*expr.Vec, i int) ([]byte, bool) {
	for _, v := range vecs {
		if v.NullAt(i) {
			return buf, false
		}
		switch v.Type {
		case dataset.TypeInt:
			buf = append(buf, 'n')
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(v.I[i])))
		case dataset.TypeFloat:
			bits := math.Float64bits(v.F[i])
			if v.F[i] != v.F[i] {
				bits = canonicalNaNBits
			}
			buf = append(buf, 'n')
			buf = binary.LittleEndian.AppendUint64(buf, bits)
		case dataset.TypeBool:
			var f float64
			if v.B[i] {
				f = 1
			}
			buf = append(buf, 'n')
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		case dataset.TypeString:
			s := v.S[i]
			buf = append(buf, 's')
			buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s)))
			buf = append(buf, s...)
		case dataset.TypeTime:
			buf = append(buf, 't')
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.T[i]))
		}
	}
	return buf, true
}

// pairBinder exposes candidate pairs as columns: a reference to a left or
// right column materializes as a gather over the candidate index vector,
// lazily and at most once per column. This lets the full ON residual run as
// one kernel over all candidate pairs.
type pairBinder struct {
	combined, left, right *rel
	leftIdx, rightIdx     []int
	cache                 map[int]*dataset.Column
}

// BindColumn implements expr.ColumnBinder.
func (b *pairBinder) BindColumn(name string) (*dataset.Column, error) {
	ci, err := b.combined.lookup(name)
	if err != nil {
		return nil, err
	}
	if c, ok := b.cache[ci]; ok {
		return c, nil
	}
	var col *dataset.Column
	if ci < len(b.left.cols) {
		col = b.left.cols[ci].Take(b.leftIdx)
	} else {
		col = b.right.cols[ci-len(b.left.cols)].Take(b.rightIdx)
	}
	b.cache[ci] = col
	return col, nil
}
