package ml

import (
	"fmt"
	"math"
)

// LinearModel is an ordinary-least-squares (optionally ridge-regularized)
// linear regression.
type LinearModel struct {
	Features []string
	Weights  []float64
	Bias     float64
	Lambda   float64
}

// TrainLinear fits y = w·x + b by solving the normal equations. lambda > 0
// adds ridge regularization, which also rescues collinear features.
func TrainLinear(m *Matrix, lambda float64) (*LinearModel, error) {
	if len(m.Target) != len(m.Rows) {
		return nil, fmt.Errorf("ml: linear regression requires a target column")
	}
	n := len(m.Rows)
	d := len(m.Names) + 1 // +1 for bias
	if n < d {
		return nil, fmt.Errorf("ml: %d rows is too few to fit %d parameters", n, d)
	}
	// Build X'X and X'y with the bias folded in as a trailing 1s column.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	for r := 0; r < n; r++ {
		row := m.Rows[r]
		for i := 0; i < d; i++ {
			xi := 1.0
			if i < d-1 {
				xi = row[i]
			}
			for j := 0; j < d; j++ {
				xj := 1.0
				if j < d-1 {
					xj = row[j]
				}
				xtx[i][j] += xi * xj
			}
			xty[i] += xi * m.Target[r]
		}
	}
	for i := 0; i < d-1; i++ { // do not regularize the bias
		xtx[i][i] += lambda
	}
	sol, ok := solveLinearSystem(xtx, xty)
	if !ok {
		return nil, fmt.Errorf("ml: singular system; features may be collinear (try ridge lambda > 0)")
	}
	return &LinearModel{
		Features: m.Names,
		Weights:  sol[:d-1],
		Bias:     sol[d-1],
		Lambda:   lambda,
	}, nil
}

// Predict implements Model.
func (lm *LinearModel) Predict(features [][]float64) []float64 {
	out := make([]float64, len(features))
	for i, row := range features {
		y := lm.Bias
		for j, w := range lm.Weights {
			if j < len(row) {
				y += w * row[j]
			}
		}
		out[i] = y
	}
	return out
}

// Kind implements Model.
func (lm *LinearModel) Kind() string {
	if lm.Lambda > 0 {
		return "ridge-regression"
	}
	return "linear-regression"
}

// Explain implements Model.
func (lm *LinearModel) Explain() string {
	return "Fitted a linear model: prediction = " + describeWeights(lm.Features, lm.Weights, lm.Bias)
}

// LogisticModel is a binary logistic-regression classifier trained with
// gradient descent. Predict returns probabilities of the positive class.
type LogisticModel struct {
	Features []string
	Weights  []float64
	Bias     float64
	Epochs   int
}

// TrainLogistic fits a binary classifier. Targets must be 0/1 (label-encoded
// two-level columns qualify).
func TrainLogistic(m *Matrix, learningRate float64, epochs int) (*LogisticModel, error) {
	if len(m.Target) != len(m.Rows) {
		return nil, fmt.Errorf("ml: logistic regression requires a target column")
	}
	for _, y := range m.Target {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("ml: logistic regression requires a binary 0/1 target, saw %v", y)
		}
	}
	if learningRate <= 0 {
		learningRate = 0.1
	}
	if epochs <= 0 {
		epochs = 200
	}
	d := len(m.Names)
	w := make([]float64, d)
	b := 0.0
	n := float64(len(m.Rows))
	// Standardize features for stable descent, folding the scaling back
	// into the published weights afterwards.
	mean := make([]float64, d)
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		for _, row := range m.Rows {
			mean[j] += row[j]
		}
		mean[j] /= n
		for _, row := range m.Rows {
			std[j] += (row[j] - mean[j]) * (row[j] - mean[j])
		}
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	for epoch := 0; epoch < epochs; epoch++ {
		gw := make([]float64, d)
		gb := 0.0
		for r, row := range m.Rows {
			z := b
			for j := 0; j < d; j++ {
				z += w[j] * (row[j] - mean[j]) / std[j]
			}
			p := sigmoid(z)
			err := p - m.Target[r]
			for j := 0; j < d; j++ {
				gw[j] += err * (row[j] - mean[j]) / std[j]
			}
			gb += err
		}
		for j := 0; j < d; j++ {
			w[j] -= learningRate * gw[j] / n
		}
		b -= learningRate * gb / n
	}
	// Fold standardization into the weights: w'·(x-μ)/σ + b = (w'/σ)·x + (b - Σ w'μ/σ).
	finalW := make([]float64, d)
	finalB := b
	for j := 0; j < d; j++ {
		finalW[j] = w[j] / std[j]
		finalB -= w[j] * mean[j] / std[j]
	}
	return &LogisticModel{Features: m.Names, Weights: finalW, Bias: finalB, Epochs: epochs}, nil
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Predict implements Model, returning P(class = 1) per row.
func (lm *LogisticModel) Predict(features [][]float64) []float64 {
	out := make([]float64, len(features))
	for i, row := range features {
		z := lm.Bias
		for j, w := range lm.Weights {
			if j < len(row) {
				z += w * row[j]
			}
		}
		out[i] = sigmoid(z)
	}
	return out
}

// Kind implements Model.
func (lm *LogisticModel) Kind() string { return "logistic-regression" }

// Explain implements Model.
func (lm *LogisticModel) Explain() string {
	return "Fitted a logistic classifier: log-odds = " + describeWeights(lm.Features, lm.Weights, lm.Bias)
}
