package spider

import (
	"fmt"
	"math/rand"
	"strings"

	"datachat/internal/skills"
)

// Zone is a Figure 7 difficulty zone: (misalignment, composition).
type Zone int

// The four zones, in the paper's order.
const (
	LowLow Zone = iota
	LowHigh
	HighLow
	HighHigh
)

// String names the zone as in Table 2.
func (z Zone) String() string {
	switch z {
	case LowLow:
		return "(low, low)"
	case LowHigh:
		return "(low, high)"
	case HighLow:
		return "(high, low)"
	case HighHigh:
		return "(high, high)"
	default:
		return fmt.Sprintf("zone(%d)", int(z))
	}
}

// Zones lists all zones in display order.
func Zones() []Zone { return []Zone{LowLow, LowHigh, HighLow, HighHigh} }

// Example is one NL-question / ground-truth pair.
type Example struct {
	// ID is unique within its corpus.
	ID string
	// Domain names the database the question targets.
	Domain string
	// Question is the natural-language request.
	Question string
	// Gold is the ground-truth program as skill invocations.
	Gold []skills.Invocation
	// Zone is the generator's intended difficulty zone.
	Zone Zone
}

// GoldPython renders the ground truth as DataChat Python API code.
func (e *Example) GoldPython(reg *skills.Registry) (string, error) {
	lines := make([]string, len(e.Gold))
	for i, inv := range e.Gold {
		code, err := reg.RenderPython(inv)
		if err != nil {
			return "", err
		}
		lines[i] = code
	}
	return strings.Join(lines, "\n"), nil
}

// Figure7Counts are the dev-split zone sizes from the paper's Figure 7.
var Figure7Counts = map[Zone]int{LowLow: 638, LowHigh: 246, HighLow: 127, HighHigh: 29}

// Table2CustomCounts are the T_custom zone sizes from Table 2.
var Table2CustomCounts = map[Zone]int{LowLow: 20, LowHigh: 22, HighLow: 26, HighHigh: 22}

// GenerateDev builds the Spider-like dev split over the non-custom domains
// with Figure 7's long-tailed zone distribution.
func GenerateDev(domains []*Domain, seed int64) []*Example {
	return generate(domains, seed, false, Figure7Counts, "dev")
}

// GenerateCustom builds the T_custom evaluation set over the custom
// domains with Table 2's zone sizes.
func GenerateCustom(domains []*Domain, seed int64) []*Example {
	return generate(domains, seed, true, Table2CustomCounts, "custom")
}

// GenerateLibrary builds training examples for the NL2Code example library:
// perZone examples per zone drawn from the NON-custom domains only, using a
// different seed stream than the dev split so questions differ.
func GenerateLibrary(domains []*Domain, seed int64, perZone int) []*Example {
	counts := map[Zone]int{LowLow: perZone, LowHigh: perZone, HighLow: perZone, HighHigh: perZone}
	return generate(domains, seed, false, counts, "lib")
}

func generate(domains []*Domain, seed int64, custom bool, counts map[Zone]int, prefix string) []*Example {
	var pool []*Domain
	for _, d := range domains {
		if d.Custom == custom {
			pool = append(pool, d)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []*Example
	for _, zone := range Zones() {
		for i := 0; i < counts[zone]; i++ {
			d := pool[rng.Intn(len(pool))]
			ex := synthesize(d, zone, rng)
			ex.ID = fmt.Sprintf("%s-%s-%04d", prefix, zoneSlug(zone), len(out))
			out = append(out, ex)
		}
	}
	return out
}

func zoneSlug(z Zone) string {
	switch z {
	case LowLow:
		return "ll"
	case LowHigh:
		return "lh"
	case HighLow:
		return "hl"
	default:
		return "hh"
	}
}

// aggWords maps aggregate functions to their NL wording.
var aggWords = map[string]string{
	"sum": "total", "avg": "average", "max": "maximum", "min": "minimum", "median": "median",
}

func pickAgg(rng *rand.Rand) (fn, word string) {
	fns := []string{"sum", "avg", "max", "min", "median"}
	fn = fns[rng.Intn(len(fns))]
	return fn, aggWords[fn]
}

// synthesize builds one example in the requested zone. High-M questions use
// out-of-schema paraphrases; high-C questions require multi-step programs
// (top-k chains and joins).
func synthesize(d *Domain, zone Zone, rng *rand.Rand) *Example {
	highM := zone == HighLow || zone == HighHigh
	highC := zone == LowHigh || zone == HighHigh
	if !highC {
		switch rng.Intn(3) {
		case 0:
			return countFilter(d, highM, rng)
		case 1:
			return distinctCount(d, highM, rng)
		default:
			return groupAgg(d, highM, rng)
		}
	}
	switch rng.Intn(3) {
	case 0:
		return topK(d, highM, rng)
	case 1:
		return joinAgg(d, highM, rng)
	default:
		return joinTopK(d, highM, rng)
	}
}

// wording returns the column's surface form at the given misalignment.
func wording(c ColumnRole, highM bool) string {
	if highM && c.Paraphrase != "" {
		return c.Paraphrase
	}
	return c.Name
}

// valueWording returns a value's surface form; high-M prefers the value
// paraphrase when one exists.
func valueWording(c ColumnRole, value string, highM bool) (phrase string, isPhrase bool) {
	if highM {
		if p, ok := c.ValueParaphrase[value]; ok {
			return p, true
		}
	}
	return value, false
}

func pickCat(d *Domain, rng *rand.Rand) ColumnRole {
	cats := d.categories()
	return cats[rng.Intn(len(cats))]
}

func pickMeasure(d *Domain, rng *rand.Rand) ColumnRole {
	ms := d.measures()
	return ms[rng.Intn(len(ms))]
}

// countFilter: low-C — filter on a category value, count rows.
func countFilter(d *Domain, highM bool, rng *rand.Rand) *Example {
	cat := pickCat(d, rng)
	value := cat.Values[rng.Intn(len(cat.Values))]
	valueText, isPhrase := valueWording(cat, value, highM)
	var question string
	if isPhrase {
		// "How many successful purchases were there?"
		question = fmt.Sprintf("How many %s were there?", valueText)
	} else {
		templates := []string{
			"How many %s have %s equal to %s?",
			"Count the %s where %s is %s.",
			"What is the number of %s with %s %s?",
		}
		question = fmt.Sprintf(templates[rng.Intn(len(templates))], d.RowNoun, wording(cat, highM), valueText)
	}
	gold := []skills.Invocation{
		{Skill: "KeepRows", Inputs: []string{d.Fact}, Output: "filtered",
			Args: skills.Args{"condition": fmt.Sprintf("%s = '%s'", cat.Name, value)}},
		{Skill: "Compute", Inputs: []string{"filtered"}, Output: "answer",
			Args: skills.Args{"aggregates": []string{"count of records as n"}}},
	}
	return &Example{Domain: d.Name, Question: question, Gold: gold, Zone: zoneOf(highM, false)}
}

// distinctCount: low-C — how many distinct values a category has.
func distinctCount(d *Domain, highM bool, rng *rand.Rand) *Example {
	cat := pickCat(d, rng)
	templates := []string{
		"How many distinct %s are there?",
		"How many different %s appear?",
		"Count the distinct %s.",
	}
	question := fmt.Sprintf(templates[rng.Intn(len(templates))], wording(cat, highM))
	gold := []skills.Invocation{
		{Skill: "Compute", Inputs: []string{d.Fact}, Output: "answer",
			Args: skills.Args{
				"aggregates": []string{fmt.Sprintf("count_distinct of %s as n", cat.Name)},
			}},
	}
	return &Example{Domain: d.Name, Question: question, Gold: gold, Zone: zoneOf(highM, false)}
}

// groupAgg: low-C — one aggregate per group.
func groupAgg(d *Domain, highM bool, rng *rand.Rand) *Example {
	cat := pickCat(d, rng)
	measure := pickMeasure(d, rng)
	fn, word := pickAgg(rng)
	templates := []string{
		"What is the %s %s for each %s?",
		"Show the %s %s per %s.",
		"Compute the %s %s grouped by %s.",
	}
	question := fmt.Sprintf(templates[rng.Intn(len(templates))],
		word, wording(measure, highM), wording(cat, highM))
	gold := []skills.Invocation{
		{Skill: "Compute", Inputs: []string{d.Fact}, Output: "answer",
			Args: skills.Args{
				"aggregates": []string{fmt.Sprintf("%s of %s as result", fn, measure.Name)},
				"for_each":   []string{cat.Name},
			}},
	}
	return &Example{Domain: d.Name, Question: question, Gold: gold, Zone: zoneOf(highM, false)}
}

// topK: high-C — filter, group, order, limit.
func topK(d *Domain, highM bool, rng *rand.Rand) *Example {
	cats := d.categories()
	if len(cats) < 2 {
		// Not enough categories for a filter+group pair; a join keeps the
		// example in the high-composition zone.
		return joinAgg(d, highM, rng)
	}
	groupCat := cats[rng.Intn(len(cats))]
	filterCat := cats[rng.Intn(len(cats))]
	for filterCat.Name == groupCat.Name {
		filterCat = cats[rng.Intn(len(cats))]
	}
	value := filterCat.Values[rng.Intn(len(filterCat.Values))]
	measure := pickMeasure(d, rng)
	fn, word := pickAgg(rng)
	k := 2 + rng.Intn(4)
	valueText, isPhrase := valueWording(filterCat, value, highM)
	filterClause := fmt.Sprintf("where %s is %s", wording(filterCat, highM), valueText)
	if isPhrase {
		filterClause = "among " + valueText
	}
	question := fmt.Sprintf("Which %d %s have the highest %s %s %s?",
		k, wording(groupCat, highM), word, wording(measure, highM), filterClause)
	gold := []skills.Invocation{
		{Skill: "KeepRows", Inputs: []string{d.Fact}, Output: "filtered",
			Args: skills.Args{"condition": fmt.Sprintf("%s = '%s'", filterCat.Name, value)}},
		{Skill: "Compute", Inputs: []string{"filtered"}, Output: "grouped",
			Args: skills.Args{
				"aggregates": []string{fmt.Sprintf("%s of %s as result", fn, measure.Name)},
				"for_each":   []string{groupCat.Name},
			}},
		{Skill: "SortRows", Inputs: []string{"grouped"}, Output: "sorted",
			Args: skills.Args{"columns": []string{"result"}, "descending": true}},
		{Skill: "LimitRows", Inputs: []string{"sorted"}, Output: "answer",
			Args: skills.Args{"count": k}},
	}
	return &Example{Domain: d.Name, Question: question, Gold: gold, Zone: zoneOf(highM, true)}
}

// joinAgg: high-C — join the fact table to its dimension, aggregate per
// dimension category.
func joinAgg(d *Domain, highM bool, rng *rand.Rand) *Example {
	measure := pickMeasure(d, rng)
	fn, word := pickAgg(rng)
	j := d.Join
	question := fmt.Sprintf("What is the %s %s for each %s of the joined %s?",
		word, wording(measure, highM), j.RightCategory, j.RightTable)
	gold := []skills.Invocation{
		{Skill: "JoinDatasets", Inputs: []string{j.LeftTable, j.RightTable}, Output: "joined",
			Args: skills.Args{"on": fmt.Sprintf("%s.%s = %s.%s", j.LeftTable, j.LeftKey, j.RightTable, j.RightKey)}},
		{Skill: "Compute", Inputs: []string{"joined"}, Output: "answer",
			Args: skills.Args{
				"aggregates": []string{fmt.Sprintf("%s of %s as result", fn, measure.Name)},
				"for_each":   []string{j.RightCategory},
			}},
	}
	return &Example{Domain: d.Name, Question: question, Gold: gold, Zone: zoneOf(highM, true)}
}

// joinTopK: the deepest composition — join, filter, group, order, limit.
func joinTopK(d *Domain, highM bool, rng *rand.Rand) *Example {
	cat := pickCat(d, rng)
	value := cat.Values[rng.Intn(len(cat.Values))]
	measure := pickMeasure(d, rng)
	fn, word := pickAgg(rng)
	k := 2 + rng.Intn(3)
	j := d.Join
	valueText, isPhrase := valueWording(cat, value, highM)
	filterClause := fmt.Sprintf("restricted to %s %s", wording(cat, highM), valueText)
	if isPhrase {
		filterClause = "restricted to " + valueText
	}
	question := fmt.Sprintf("Across the joined %s, which %d %s have the highest %s %s, %s?",
		j.RightTable, k, j.RightCategory, word, wording(measure, highM), filterClause)
	gold := []skills.Invocation{
		{Skill: "JoinDatasets", Inputs: []string{j.LeftTable, j.RightTable}, Output: "joined",
			Args: skills.Args{"on": fmt.Sprintf("%s.%s = %s.%s", j.LeftTable, j.LeftKey, j.RightTable, j.RightKey)}},
		{Skill: "KeepRows", Inputs: []string{"joined"}, Output: "filtered",
			Args: skills.Args{"condition": fmt.Sprintf("%s = '%s'", cat.Name, value)}},
		{Skill: "Compute", Inputs: []string{"filtered"}, Output: "grouped",
			Args: skills.Args{
				"aggregates": []string{fmt.Sprintf("%s of %s as result", fn, measure.Name)},
				"for_each":   []string{j.RightCategory},
			}},
		{Skill: "SortRows", Inputs: []string{"grouped"}, Output: "sorted",
			Args: skills.Args{"columns": []string{"result"}, "descending": true}},
		{Skill: "LimitRows", Inputs: []string{"sorted"}, Output: "answer",
			Args: skills.Args{"count": k}},
	}
	return &Example{Domain: d.Name, Question: question, Gold: gold, Zone: zoneOf(highM, true)}
}

func zoneOf(highM, highC bool) Zone {
	switch {
	case highM && highC:
		return HighHigh
	case highM:
		return HighLow
	case highC:
		return LowHigh
	default:
		return LowLow
	}
}
