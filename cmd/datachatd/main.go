// datachatd serves a DataChat platform over HTTP/JSON: sessions, GEL and
// Python execution, EXPLAIN, artifacts, recipes, secret links, and chunked
// row streaming, with admission control and graceful drain.
//
//	go run ./cmd/datachatd -addr :8080 -demo
//
// Then, from another terminal:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"name":"s1","owner":"ann"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/run \
//	  -d '{"user":"ann","gel":"Load data from the file sales.csv"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datachat/internal/board"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/scheduler"
	"datachat/internal/server"
)

const demoCSV = `order_id,region,status,price,discount
1,east,Successful,120.5,0.1
2,west,Successful,80.0,0.0
3,east,Unsuccessful,45.0,0.2
4,north,Successful,210.0,0.15
5,west,Refunded,99.0,0.0
6,east,Successful,60.0,0.05
7,south,Successful,150.0,0.1
8,north,Unsuccessful,30.0,0.0
9,south,Successful,75.5,0.25
10,east,Successful,88.0,0.0
`

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrent executions (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", -1, "max queued executions (-1 = 2x max-inflight, 0 = refuse when busy)")
		maxBg       = flag.Int("max-background", 0, "max background-priority executions in flight (0 = half of max-inflight)")
		schedPoll   = flag.Duration("sched-poll", time.Second, "scheduler poll interval for due jobs")
		deadline    = flag.Duration("default-deadline", 0, "deadline applied to requests that do not ask for one (0 = none)")
		maxDeadline = flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = uncapped)")
		retries     = flag.Int("retries", 3, "transient-failure retry attempts per execution (1 = fail fast)")
		retryAfter  = flag.Duration("retry-after", 500*time.Millisecond, "backoff hint on 409/429 responses")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
		demo        = flag.Bool("demo", false, "seed sales.csv and a warehouse database with demo data")
	)
	flag.Parse()

	p := core.New()
	if *demo {
		if err := seedDemo(p); err != nil {
			log.Fatalf("datachatd: seeding demo data: %v", err)
		}
		log.Printf("demo data seeded: file sales.csv, database warehouse (table iot_events)")
	}

	cfg := server.Config{
		MaxInFlight:     *maxInFlight,
		MaxBackground:   *maxBg,
		MaxQueue:        *maxQueue,
		RetryAfter:      *retryAfter,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
	}
	if *retries > 1 {
		cfg.Retry = faults.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Multiplier:  2,
		}
	}
	srv := server.New(p, cfg)

	// Scheduler + boards: saved recipes as long-lived jobs whose refreshes
	// run under the background admission class and fan out to subscribed
	// clients via /v1/boards/{id}/subscribe.
	hub := board.NewHub()
	sched := scheduler.New(p, hub)
	srv.AttachScheduler(sched, hub)
	schedCtx, stopSched := context.WithCancel(context.Background())
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		sched.Loop(schedCtx, *schedPoll)
	}()

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		log.Printf("datachatd listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("datachatd: %v", err)
	case sig := <-sigc:
		log.Printf("datachatd: %v received, draining (budget %s)", sig, *drain)
	}

	// Drain: stop accepting, let in-flight executions finish, then close
	// the listener.
	stopSched()
	<-schedDone
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("datachatd: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("datachatd: closing listener: %v", err)
	}
	log.Printf("datachatd: stopped")
}

// seedDemo registers the quickstart CSV and a small cloud warehouse so the
// daemon is immediately usable.
func seedDemo(p *core.Platform) error {
	p.RegisterFile("sales.csv", demoCSV)

	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 4)
	n := 64
	ids := make([]int64, n)
	temps := make([]float64, n)
	sites := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i + 1)
		temps[i] = 15 + float64(i%20)
		sites[i] = []string{"plant-a", "plant-b", "plant-c"}[i%3]
	}
	events, err := dataset.NewTable("iot_events",
		dataset.IntColumn("event_id", ids, nil),
		dataset.FloatColumn("temperature", temps, nil),
		dataset.StringColumn("site", sites, nil),
	)
	if err != nil {
		return err
	}
	if err := db.CreateTable(events); err != nil {
		return err
	}
	return p.ConnectDatabase(db)
}
