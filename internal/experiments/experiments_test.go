package experiments

import (
	"fmt"
	"strings"
	"testing"

	"datachat/internal/spider"
)

// The suite is expensive to build; share it across tests.
var suite = NewSuite(1)

func TestFigure7Shape(t *testing.T) {
	r := suite.Figure7(42)
	if r.Total != 1040 {
		t.Fatalf("total = %d", r.Total)
	}
	// The paper's long tail: (low,low) dominates, (high,high) is rare.
	ll, lh := r.Counts[spider.LowLow], r.Counts[spider.LowHigh]
	hl, hh := r.Counts[spider.HighLow], r.Counts[spider.HighHigh]
	if ll < lh || ll < hl || ll < hh {
		t.Errorf("(low,low) should dominate: %v", r.Counts)
	}
	if hh > 80 {
		t.Errorf("(high,high) should be rare: %d", hh)
	}
	// Approximate Figure 7 counts (638/246/127/29) within a tolerance that
	// allows metric/intent disagreement on edge cases.
	within := func(got, want, tol int) bool { return got >= want-tol && got <= want+tol }
	if !within(ll, 638, 80) || !within(lh, 246, 80) || !within(hl, 127, 60) || !within(hh, 29, 30) {
		t.Errorf("counts diverge from Figure 7: %v", r.Counts)
	}
	if !strings.Contains(r.Report(), "Figure 7") {
		t.Error("report malformed")
	}
	// Points carry the raw metrics for plotting.
	if len(r.Points) != 1040 {
		t.Errorf("points = %d", len(r.Points))
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := suite.Table2(Table2Options{PerZone: 25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	get := func(cells []AccuracyCell, z spider.Zone) float64 {
		for _, c := range cells {
			if c.Zone == z {
				return c.MeanEA
			}
		}
		return -1
	}
	// Shape assertions from the paper (§4.7), with tolerances sized to 25
	// samples per cell (the paper's own cell size — σ ≈ 0.09):
	// 1. On the easy set, (low, low) leads every other zone.
	sLL := get(r.Spider, spider.LowLow)
	for _, z := range []spider.Zone{spider.LowHigh, spider.HighLow, spider.HighHigh} {
		if got := get(r.Spider, z); got > sLL+0.05 {
			t.Errorf("spider %v (%.2f) above (low,low) (%.2f)", z, got, sLL)
		}
	}
	// 2. Higher complexity hurts at least as much as higher misalignment.
	if get(r.Spider, spider.LowHigh) > get(r.Spider, spider.HighLow)+0.1 {
		t.Errorf("complexity should hurt at least as much as misalignment: LH=%.2f HL=%.2f",
			get(r.Spider, spider.LowHigh), get(r.Spider, spider.HighLow))
	}
	// 3. Spider beats custom overall.
	if r.SpiderMean <= r.CustomMean {
		t.Errorf("spider mean %.2f should exceed custom mean %.2f", r.SpiderMean, r.CustomMean)
	}
	// 4. Custom (high, high) collapses: the worst custom cell, well below
	// every spider cell (the paper's headline 0.25).
	cHH := get(r.Custom, spider.HighHigh)
	if cHH > 0.5 {
		t.Errorf("custom (high,high) = %.2f; expected a collapse (paper: 0.25)", cHH)
	}
	for _, z := range []spider.Zone{spider.LowLow, spider.LowHigh, spider.HighLow} {
		if got := get(r.Custom, z); got < cHH-0.05 {
			t.Errorf("custom %v (%.2f) below custom (high,high) (%.2f)", z, got, cHH)
		}
	}
	// 5. Sane absolute ranges.
	if sLL < 0.6 || sLL > 1.0 {
		t.Errorf("spider (low,low) = %.2f out of plausible range", sLL)
	}
	if !strings.Contains(r.Report(), "Table 2") {
		t.Error("report malformed")
	}
}

func TestSamplingCosts(t *testing.T) {
	r, err := Sampling(200_000, []float64{0.1, 0.01}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ten := r.Rows[1]
	if ten.RelativeCost < 0.05 || ten.RelativeCost > 0.15 {
		t.Errorf("10%% sample relative cost = %.3f, want ≈ 0.1 (the paper's 10× saving)", ten.RelativeCost)
	}
	one := r.Rows[2]
	if one.RelativeCost > 0.03 {
		t.Errorf("1%% sample relative cost = %.3f", one.RelativeCost)
	}
	if r.SnapshotIterationFee != 0 {
		t.Errorf("snapshot iterations billed %d bytes; should be free", r.SnapshotIterationFee)
	}
	if r.CloudIterationBytes <= r.SnapshotPullBytes {
		t.Errorf("iterating on cloud (%d) should out-cost one snapshot pull (%d)",
			r.CloudIterationBytes, r.SnapshotPullBytes)
	}
	if !strings.Contains(r.Report(), "block sampling") {
		t.Error("report malformed")
	}
}

func TestConsolidation(t *testing.T) {
	r, err := Consolidation(20_000, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Figure4Blocks != 1 {
		t.Errorf("Figure 4 consolidated blocks = %d, want 1", r.Figure4Blocks)
	}
	if r.Figure4NaiveBlocks < 2 {
		t.Errorf("naive blocks = %d", r.Figure4NaiveBlocks)
	}
	if !r.SameResult {
		t.Error("consolidated and naive chains disagree")
	}
	if r.ConsolidatedDuration <= 0 || r.NaiveDuration <= 0 {
		t.Error("durations not measured")
	}
	if !strings.Contains(r.Report(), "consolidation") {
		t.Error("report malformed")
	}
}

func TestSlicing(t *testing.T) {
	r, err := Slicing(12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Before != 15 || r.Pruned != 12 {
		t.Errorf("before=%d pruned=%d", r.Before, r.Pruned)
	}
	if r.After != 2 || r.Merged != 1 {
		t.Errorf("after=%d merged=%d", r.After, r.Merged)
	}
	if !r.Linear || !r.SameResult {
		t.Errorf("linear=%v same=%v", r.Linear, r.SameResult)
	}
}

func TestAblations(t *testing.T) {
	sem, err := suite.AblateSemanticLayer(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	// §4.2: without the semantic layer, high-M accuracy drops.
	if sem.AblatedAccuracy > sem.DefaultAccuracy {
		t.Errorf("semantic ablation improved accuracy: %.2f -> %.2f",
			sem.DefaultAccuracy, sem.AblatedAccuracy)
	}
	if sem.DefaultAccuracy-sem.AblatedAccuracy < 0.05 {
		t.Errorf("semantic layer shows no effect: %.2f vs %.2f",
			sem.DefaultAccuracy, sem.AblatedAccuracy)
	}
	chk, err := suite.AblateChecker(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if chk.AblatedAccuracy > chk.DefaultAccuracy {
		t.Errorf("checker ablation improved accuracy: %.2f -> %.2f",
			chk.DefaultAccuracy, chk.AblatedAccuracy)
	}
	ret, err := suite.AblateRetrieval(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ret.Samples == 0 {
		t.Error("retrieval ablation ran on no samples")
	}
	for _, r := range []*AblationResult{sem, chk, ret} {
		if !strings.Contains(r.Report(), "ablation") {
			t.Error("report malformed")
		}
	}
}

func TestAblatePromptBudget(t *testing.T) {
	r, err := suite.AblatePromptBudget(8, 42, 120)
	if err != nil {
		t.Fatal(err)
	}
	if r.AblatedAccuracy > r.DefaultAccuracy {
		t.Errorf("tiny budget improved accuracy: %.2f -> %.2f", r.DefaultAccuracy, r.AblatedAccuracy)
	}
	if r.DefaultAccuracy-r.AblatedAccuracy < 0.05 {
		t.Errorf("budget shows no effect: %.2f vs %.2f", r.DefaultAccuracy, r.AblatedAccuracy)
	}
}

func TestFaultsGrid(t *testing.T) {
	r, err := Faults(25, []float64{0, 0.3}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(r.Cases))
	}
	base, faulty := r.Cases[0], r.Cases[1]
	if base.TransientFaults != 0 || base.Recovered != 0 {
		t.Errorf("rate-0 baseline saw faults: %+v", base)
	}
	if faulty.TransientFaults == 0 || faulty.Recovered == 0 {
		t.Errorf("30%% rate exercised nothing: %+v", faulty)
	}
	for _, c := range r.Cases {
		if c.Divergent != 0 {
			t.Errorf("rate %v: %d divergent answers", c.Rate, c.Divergent)
		}
		if c.Exact != base.Exact || c.Errored != base.Errored {
			t.Errorf("rate %v changed outcomes: %+v vs baseline %+v", c.Rate, c, base)
		}
	}
	if !strings.Contains(r.Report(), "exact") {
		t.Error("report malformed")
	}
	if data, err := r.JSON(); err != nil || len(data) == 0 {
		t.Errorf("JSON: %v", err)
	}
}

func TestStreamGrid(t *testing.T) {
	r, err := Stream(2000, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2 queries × 3 scales × 2 worker settings.
	if len(r.Cases) != 12 {
		t.Fatalf("cases = %d, want 12", len(r.Cases))
	}
	peaks := map[string]int{}
	for _, c := range r.Cases {
		if c.RowsOut == 0 {
			t.Errorf("%s at %dx w=%d produced no rows", c.Query, c.Scale, c.Workers)
		}
		key := fmt.Sprintf("%s/w%d", c.Query, c.Workers)
		if prev, ok := peaks[key]; ok && c.PeakBufferedRows != prev {
			t.Errorf("%s peak buffered rows varies with scale: %d vs %d — the memory budget claim fails",
				key, c.PeakBufferedRows, prev)
		}
		peaks[key] = c.PeakBufferedRows
	}
	if peaks["filter/w1"] != 0 || peaks["filter/w2"] != 0 {
		t.Errorf("filter buffered %d/%d rows, want 0 (pure pipeline)", peaks["filter/w1"], peaks["filter/w2"])
	}
	// One forced-spill cell per worker setting, each spilling for real after
	// the strict run proved the budget does not fit.
	if len(r.Spill) != 2 {
		t.Fatalf("spill cases = %d, want 2", len(r.Spill))
	}
	for _, c := range r.Spill {
		if c.SpilledRows == 0 || c.SpillRuns == 0 || c.SpilledBytes == 0 {
			t.Errorf("spill w=%d: stats %+v, want non-zero runs/rows/bytes", c.Workers, c)
		}
		if c.SerialBudgetError == "" {
			t.Errorf("spill w=%d: missing the strict run's BudgetError", c.Workers)
		}
		if c.RowsOut != c.Rows {
			t.Errorf("spill w=%d: %d groups out of %d rows, want one group per row", c.Workers, c.RowsOut, c.Rows)
		}
	}
	if !strings.Contains(r.Report(), "first_chunk") || !strings.Contains(r.Report(), "spilled_rows") {
		t.Error("report malformed")
	}
	if data, err := r.JSON(); err != nil || len(data) == 0 {
		t.Errorf("JSON: %v", err)
	}
}

func TestSchedGrid(t *testing.T) {
	r, err := Sched(4, 2000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// cold + 0% + 25% + 100%.
	if len(r.Refresh) != 4 {
		t.Fatalf("refresh cases = %d, want 4", len(r.Refresh))
	}
	cold, unchanged, quarter, full := r.Refresh[0], r.Refresh[1], r.Refresh[2], r.Refresh[3]
	if cold.CloudScans != 4 {
		t.Errorf("cold refresh scanned %d tables, want 4", cold.CloudScans)
	}
	// The headline claim: a refresh over unchanged sources never touches
	// the warehouse, and the fingerprint diff says so.
	if unchanged.CloudScans != 0 || unchanged.CacheHits == 0 || unchanged.FPChanged != 0 {
		t.Errorf("unchanged refresh: %+v, want zero scans and a cache hit", unchanged)
	}
	if quarter.CloudScans != 1 {
		t.Errorf("25%% refresh scanned %d tables, want exactly the changed one", quarter.CloudScans)
	}
	if full.CloudScans != 4 || full.FPChanged != full.FPTotal {
		t.Errorf("100%% refresh: %+v, want all tables rescanned", full)
	}
	if r.Publishes != 4 {
		t.Errorf("publishes = %d, want one per refresh", r.Publishes)
	}
	if len(r.Interference) != 2 {
		t.Fatalf("interference cases = %d, want 2", len(r.Interference))
	}
	for _, c := range r.Interference {
		if c.Requests != 2*5 {
			t.Errorf("%s: %d requests, want 10", c.Mode, c.Requests)
		}
		if (c.Mode == "with-background") != (c.BackgroundRuns > 0) {
			t.Errorf("%s: %d background runs", c.Mode, c.BackgroundRuns)
		}
	}
	if !strings.Contains(r.Report(), "cloud_scans") || !strings.Contains(r.Report(), "with-background") {
		t.Error("report malformed")
	}
	if data, err := r.JSON(); err != nil || len(data) == 0 {
		t.Errorf("JSON: %v", err)
	}
}
