package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ReadCSV parses CSV data with a header row into a table, inferring column
// types from the data: a column is int if every non-null cell parses as int,
// widening to float, time, bool, then string. An all-null column is typed
// string so it stays usable.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	records, err := reader.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv %q has no header row", name)
	}
	header := records[0]
	rows := records[1:]
	cols := make([]*Column, len(header))
	for j, colName := range header {
		colName = strings.TrimSpace(colName)
		typ := inferColumnType(rows, j)
		c := NewColumn(colName, typ)
		for _, rec := range rows {
			if j >= len(rec) {
				c.Append(Null)
				continue
			}
			c.Append(parseAs(rec[j], typ))
		}
		cols[j] = c
	}
	return NewTable(name, cols...)
}

// ReadCSVString parses CSV from a string; a convenience for examples and tests.
func ReadCSVString(name, data string) (*Table, error) {
	return ReadCSV(name, strings.NewReader(data))
}

func inferColumnType(rows [][]string, col int) Type {
	typ := TypeNull
	for _, rec := range rows {
		if col >= len(rec) {
			continue
		}
		v := ParseValue(rec[col])
		if v.IsNull() {
			continue
		}
		typ = mergeInferred(typ, v.Type)
		if typ == TypeString {
			break
		}
	}
	if typ == TypeNull {
		return TypeString
	}
	return typ
}

func mergeInferred(a, b Type) Type {
	if a == TypeNull {
		return b
	}
	if a == b {
		return a
	}
	if a.Numeric() && b.Numeric() {
		return TypeFloat
	}
	return TypeString
}

func parseAs(cell string, typ Type) Value {
	v := ParseValue(cell)
	if v.IsNull() {
		return Null
	}
	coerced, ok := Coerce(v, typ)
	if !ok {
		return Str(cell)
	}
	return coerced
}

// WriteCSV writes the table as CSV with a header row. Nulls become empty
// cells so a round trip re-infers them as null.
func WriteCSV(t *Table, w io.Writer) error {
	writer := csv.NewWriter(w)
	if err := writer.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	record := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for j, c := range t.Columns() {
			v := c.Value(r)
			if v.IsNull() {
				record[j] = ""
			} else {
				record[j] = v.String()
			}
		}
		if err := writer.Write(record); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", r, err)
		}
	}
	writer.Flush()
	return writer.Error()
}
