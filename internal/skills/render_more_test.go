package skills

import (
	"strings"
	"testing"

	"datachat/internal/dataset"
)

func TestGELValueFormats(t *testing.T) {
	// Exercise the template filler over every value shape.
	inv := Invocation{Skill: "KeepColumns", Args: Args{"columns": []any{"a", "b"}}}
	got, err := reg.RenderGEL(inv)
	if err != nil {
		t.Fatal(err)
	}
	if got != "Keep the columns a, b" {
		t.Errorf("[]any columns = %q", got)
	}
	inv2 := Invocation{Skill: "SampleRows", Args: Args{"fraction": 0.25}}
	got, err = reg.RenderGEL(inv2)
	if err != nil {
		t.Fatal(err)
	}
	if got != "Sample 0.25 of the rows" {
		t.Errorf("float value = %q", got)
	}
	inv3 := Invocation{Skill: "LimitRows", Args: Args{"count": 7}}
	if got, _ = reg.RenderGEL(inv3); got != "Limit the data to 7 rows" {
		t.Errorf("int value = %q", got)
	}
	// Missing args render an ellipsis, never panic.
	inv4 := Invocation{Skill: "RenameColumn", Args: Args{}}
	if got, _ = reg.RenderGEL(inv4); !strings.Contains(got, "…") {
		t.Errorf("missing args = %q", got)
	}
}

func TestRenderPythonValueShapes(t *testing.T) {
	cases := []struct {
		inv  Invocation
		want string
	}{
		{
			Invocation{Skill: "SampleRows", Inputs: []string{"d"}, Args: Args{"fraction": 0.5}},
			`d.sample_rows(fraction = 0.5)`,
		},
		{
			Invocation{Skill: "SortRows", Inputs: []string{"d"},
				Args: Args{"columns": []any{"a"}, "descending": true}},
			`d.sort_rows(columns = ["a"], descending = True)`,
		},
		{
			Invocation{Skill: "LimitRows", Inputs: []string{"9weird name!"}, Args: Args{"count": 3}},
			`_9weird_name_.limit_rows(count = 3)`,
		},
		{
			Invocation{Skill: "Concatenate", Inputs: []string{"a", "b", "c"}, Args: Args{"dedupe": false}},
			`a.concatenate(with_datasets = [b, c], dedupe = False)`,
		},
		{
			Invocation{Skill: "ListDatasets"},
			`dc.list_datasets()`,
		},
		{
			Invocation{Skill: "Compute", Inputs: []string{"d"},
				Args: Args{"aggregates": []string{"count_distinct of x as u"}}},
			`d.compute(aggregates = [CountDistinct("x", as_name="u")])`,
		},
	}
	for _, c := range cases {
		got, err := reg.RenderPython(c.inv)
		if err != nil {
			t.Fatalf("RenderPython(%s): %v", c.inv.Skill, err)
		}
		if got != c.want {
			t.Errorf("RenderPython = %q, want %q", got, c.want)
		}
	}
}

func TestChartTypeByNameAll(t *testing.T) {
	for _, name := range []string{"bar", "line", "scatter", "histogram", "donut", "pie", "violin", "bubble", "heatmap"} {
		if _, err := chartTypeByName(name); err != nil {
			t.Errorf("chartTypeByName(%s): %v", name, err)
		}
	}
	if _, err := chartTypeByName("treemap"); err == nil {
		t.Error("unknown chart type should error")
	}
}

func TestComputeStddevDirectPath(t *testing.T) {
	ctx := newTestContext(t)
	res := run(t, ctx, Invocation{Skill: "Compute", Inputs: []string{"people"},
		Args: Args{"aggregates": []string{"stddev of age as sd"}, "for_each": []string{"dept"}}})
	c, _ := res.Table.Column("sd")
	for i := 0; i < c.Len(); i++ {
		if c.Value(i).IsNull() || c.Value(i).F < 0 {
			t.Errorf("stddev[%d] = %v", i, c.Value(i))
		}
	}
	// Cross-check one group against the SQL engine's STDDEV: eng ages 30, 25.
	depts, _ := res.Table.Column("dept")
	for i := 0; i < depts.Len(); i++ {
		if depts.Value(i).S == "eng" && c.Value(i).F != 2.5 {
			t.Errorf("eng stddev = %v, want 2.5", c.Value(i))
		}
	}
}

func TestPredictTimeSeriesNumericIndex(t *testing.T) {
	ctx := newTestContext(t)
	n := 30
	steps := make([]int64, n)
	vals := make([]float64, n)
	for i := range steps {
		steps[i] = int64(i * 10)
		vals[i] = float64(i) * 3
	}
	ctx.Datasets["series"] = mustCSVTable(t, steps, vals)
	res := run(t, ctx, Invocation{Skill: "PredictTimeSeries", Inputs: []string{"series"},
		Args: Args{"measure": "v", "time": "t", "steps": 4}})
	tc, _ := res.Table.Column("t")
	if f, ok := tc.Value(0).AsFloat(); !ok || f != float64((n-1)*10+10) {
		t.Errorf("first extrapolated t = %v", tc.Value(0))
	}
	// Too-short series errors.
	ctx.Datasets["tiny"] = mustCSVTable(t, []int64{1}, []float64{2})
	if _, err := reg.Execute(ctx, Invocation{Skill: "PredictTimeSeries", Inputs: []string{"tiny"},
		Args: Args{"measure": "v", "time": "t", "steps": 2}}); err == nil {
		t.Error("short series should error")
	}
	if _, err := reg.Execute(ctx, Invocation{Skill: "PredictTimeSeries", Inputs: []string{"series"},
		Args: Args{"measure": "v", "time": "t", "steps": 0}}); err == nil {
		t.Error("zero steps should error")
	}
}

func mustCSVTable(t *testing.T, steps []int64, vals []float64) *dataset.Table {
	t.Helper()
	return dataset.MustNewTable("series",
		dataset.IntColumn("t", steps, nil),
		dataset.FloatColumn("v", vals, nil))
}
