package nl2code

import (
	"math/rand"
	"sort"
	"strings"

	"datachat/internal/semantic"
)

// columnPreference biases resolution toward grouping or measuring columns.
type columnPreference int

const (
	preferAny columnPreference = iota
	preferCategory
	preferMeasure
)

// resolver grounds surface phrases in the prompt's schema and hints. Like
// the generator, it knows nothing beyond the prompt.
type resolver struct {
	prompt *Prompt
	// tables indexes schema tables by lowercase name.
	tables map[string]*SchemaTable
	// active is the working column universe (fact table, or fact+join).
	active []string
	// values maps active category columns to their sampled values.
	values map[string][]string
	// synonyms maps hint phrases to column expansions.
	synonyms map[string]string
	// hintHits counts references grounded through prompt hints rather than
	// direct schema matches — indirect grounding is less reliable.
	hintHits int
}

func newResolver(p *Prompt) *resolver {
	r := &resolver{
		prompt:   p,
		tables:   map[string]*SchemaTable{},
		values:   map[string][]string{},
		synonyms: map[string]string{},
	}
	for i := range p.Schema {
		t := &p.Schema[i]
		r.tables[strings.ToLower(t.Name)] = t
	}
	for _, h := range p.Hints {
		if h.Kind == semantic.Synonym || h.Kind == semantic.Dimension {
			r.synonyms[strings.ToLower(h.Phrase)] = h.Expansion
		}
	}
	return r
}

// pickFactTable chooses the base table: the one whose columns and values
// overlap the question most; ties go to the wider table.
func (r *resolver) pickFactTable(question string, it intent) *SchemaTable {
	qTokens := map[string]bool{}
	for _, tok := range semantic.Tokens(question) {
		qTokens[tok] = true
	}
	var best *SchemaTable
	bestScore := -1
	for i := range r.prompt.Schema {
		t := &r.prompt.Schema[i]
		score := 0
		for _, col := range t.Columns {
			for _, tok := range semantic.Tokens(col) {
				if qTokens[tok] {
					score += 2
				}
			}
		}
		for _, vals := range t.Values {
			for _, v := range vals {
				for _, tok := range semantic.Tokens(v) {
					if qTokens[tok] {
						score++
					}
				}
			}
		}
		for _, tok := range semantic.Tokens(t.Name) {
			if qTokens[tok] {
				score += 2
			}
		}
		// A joinTable mention is usually the dimension, not the base.
		if it.joinTable != "" && t.Name == it.joinTable && len(r.prompt.Schema) > 1 {
			score--
		}
		if score > bestScore || (score == bestScore && best != nil && len(t.Columns) > len(best.Columns)) {
			best, bestScore = t, score
		}
	}
	r.setActive(best)
	return best
}

func (r *resolver) setActive(t *SchemaTable) {
	r.active = append([]string{}, t.Columns...)
	r.values = map[string][]string{}
	for col, vals := range t.Values {
		r.values[col] = vals
	}
}

// pickJoinTable selects the second relation for a join.
func (r *resolver) pickJoinTable(fact *SchemaTable, it intent) *SchemaTable {
	if it.joinTable != "" && !strings.EqualFold(it.joinTable, fact.Name) {
		if t, ok := r.tables[strings.ToLower(it.joinTable)]; ok {
			return t
		}
	}
	for i := range r.prompt.Schema {
		t := &r.prompt.Schema[i]
		if !strings.EqualFold(t.Name, fact.Name) {
			return t
		}
	}
	return nil
}

// commonColumn finds a shared key column between two tables.
func (r *resolver) commonColumn(a, b *SchemaTable) (string, bool) {
	bCols := map[string]bool{}
	for _, c := range b.Columns {
		bCols[strings.ToLower(c)] = true
	}
	// Prefer *_id columns (foreign keys), as a schema-aware model would.
	for _, c := range a.Columns {
		if bCols[strings.ToLower(c)] && strings.HasSuffix(strings.ToLower(c), "id") {
			return c, true
		}
	}
	for _, c := range a.Columns {
		if bCols[strings.ToLower(c)] {
			return c, true
		}
	}
	return "", false
}

// merge widens the active universe after a join.
func (r *resolver) merge(a, b *SchemaTable) {
	seen := map[string]bool{}
	for _, c := range r.active {
		seen[strings.ToLower(c)] = true
	}
	for _, c := range b.Columns {
		if !seen[strings.ToLower(c)] {
			r.active = append(r.active, c)
		}
	}
	for col, vals := range b.Values {
		if _, dup := r.values[col]; !dup {
			r.values[col] = vals
		}
	}
}

// resolveColumn grounds a surface phrase: direct token overlap with a
// column name first, then a synonym hint from the prompt. Returns false
// when nothing matches — the misalignment failure mode.
func (r *resolver) resolveColumn(phrase string, pref columnPreference) (string, bool) {
	phrase = strings.TrimSpace(phrase)
	if phrase == "" {
		return "", false
	}
	phraseTokens := semantic.Tokens(phrase)
	bestScore := 0
	best := ""
	for _, col := range r.candidates(pref) {
		colTokens := semantic.Tokens(col)
		score := 0
		for _, pt := range phraseTokens {
			for _, ct := range colTokens {
				if pt == ct {
					score += 2
				} else if strings.HasPrefix(pt, ct) || strings.HasPrefix(ct, pt) {
					score++
				}
			}
		}
		if score > bestScore {
			bestScore, best = score, col
		}
	}
	if best != "" {
		return best, true
	}
	// Synonym hints: exact phrase, then token-wise.
	if col, ok := r.synonyms[strings.ToLower(phrase)]; ok && r.hasActive(col) {
		r.hintHits++
		return col, true
	}
	for hintPhrase, col := range r.synonyms {
		if !r.hasActive(col) {
			continue
		}
		hintTokens := semantic.Tokens(hintPhrase)
		hits := 0
		for _, pt := range phraseTokens {
			for _, ht := range hintTokens {
				if pt == ht {
					hits++
				}
			}
		}
		if hits > 0 && hits >= len(hintTokens)/2 {
			r.hintHits++
			return col, true
		}
	}
	return "", false
}

func (r *resolver) hasActive(col string) bool {
	for _, c := range r.active {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// candidates lists active columns matching the preference: categories are
// the sampled-value columns, measures the numeric-looking rest (ids
// excluded from both).
func (r *resolver) candidates(pref columnPreference) []string {
	var out []string
	for _, col := range r.active {
		lower := strings.ToLower(col)
		isID := strings.HasSuffix(lower, "_id") || lower == "id"
		_, isCat := r.values[col]
		switch pref {
		case preferCategory:
			if isCat || (!isID && !isCat && looksCategorical(lower)) {
				out = append(out, col)
			}
		case preferMeasure:
			if !isCat && !isID {
				out = append(out, col)
			}
		default:
			if !isID {
				out = append(out, col)
			}
		}
	}
	if len(out) == 0 {
		out = append(out, r.active...)
	}
	return out
}

func looksCategorical(lower string) bool {
	switch lower {
	case "month", "year", "period", "quarter", "floor", "tier", "level":
		return true
	default:
		return false
	}
}

// guessColumn is the fallback when resolution fails: a deterministic
// pseudo-random pick among plausible columns — occasionally lucky, usually
// wrong, exactly like a hallucinating model.
func (r *resolver) guessColumn(pref columnPreference, rng *rand.Rand) string {
	cands := r.candidates(pref)
	sort.Strings(cands)
	return cands[rng.Intn(len(cands))]
}

// resolveValue finds the canonical casing of a value under a column.
func (r *resolver) resolveValue(col, value string) (string, bool) {
	value = strings.TrimSpace(strings.Trim(value, `'"?.`))
	for _, v := range r.values[col] {
		if strings.EqualFold(v, value) {
			return v, true
		}
	}
	// Look across all category columns (the model may have mis-grounded
	// the column but the literal still pins the value).
	for _, vals := range r.values {
		for _, v := range vals {
			if strings.EqualFold(v, value) {
				return v, true
			}
		}
	}
	return value, false
}

// categories returns active category column names.
func (r *resolver) categories() []string {
	var out []string
	for col := range r.values {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// siblingValue rewrites an equality condition to use a different value of
// the same column (the corruption used for filter slips).
func (r *resolver) siblingValue(cond string, rng *rand.Rand) (string, bool) {
	eq := strings.Index(cond, "=")
	if eq < 0 {
		return "", false
	}
	col := strings.TrimSpace(cond[:eq])
	vals := r.values[col]
	if len(vals) < 2 {
		return "", false
	}
	cur := strings.Trim(strings.TrimSpace(cond[eq+1:]), "'")
	for attempts := 0; attempts < 4; attempts++ {
		alt := vals[rng.Intn(len(vals))]
		if !strings.EqualFold(alt, cur) {
			return col + " = '" + alt + "'", true
		}
	}
	return "", false
}
