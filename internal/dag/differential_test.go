package dag

import (
	"fmt"
	"math/rand"
	"testing"

	"datachat/internal/skills"
	"datachat/internal/sqlengine"
)

// The differential suite replays randomized wrangling pipelines over the
// sqlengine corpus through two executors: a fully planned one (slice, fuse,
// consolidate, pushdown, cache) and a reference one with every optimizing
// pass disabled, which applies each skill sequentially. The two must agree
// exactly — same table or same failure — on every pipeline, which pins the
// semantic-preservation contract of the whole pass pipeline at once.

// corpusCtx seeds a fresh context with the corpus tables.
func corpusCtx(rng *rand.Rand) *skills.Context {
	ctx := skills.NewContext()
	for name, t := range sqlengine.CorpusTables(rng, 160, 60) {
		ctx.Datasets[name] = t
	}
	return ctx
}

// corpusPipeline generates a random pipeline over t1 (sometimes joining t2):
// condition and sort steps run over the full schema first, then an optional
// projection narrows it, then limit/distinct steps follow — so most pipelines
// are valid while still exercising fusion, consolidation and pushdown.
func corpusPipeline(rng *rand.Rand) *Graph {
	g := NewGraph()
	in := "t1"
	step := 0
	add := func(skill string, args skills.Args, inputs ...string) {
		if len(inputs) == 0 {
			inputs = []string{in}
		}
		out := fmt.Sprintf("s%d", step)
		step++
		g.Add(skills.Invocation{Skill: skill, Inputs: inputs, Args: args, Output: out})
		in = out
	}

	// Phase 1: full-schema steps.
	for i := rng.Intn(4); i > 0; i-- {
		switch rng.Intn(4) {
		case 0, 1:
			add("KeepRows", skills.Args{"condition": sqlengine.CorpusPredicate(rng, "", rng.Intn(3))})
		case 2:
			add("DropRows", skills.Args{"condition": sqlengine.CorpusPredicate(rng, "", rng.Intn(2))})
		default:
			add("SortRows", skills.Args{"columns": []string{"i", "f", "s", "b", "ts"}})
		}
	}
	// Occasionally join in t2 (direct task: JoinDatasets has no MergeSQL).
	if rng.Intn(4) == 0 {
		add("JoinDatasets", skills.Args{"on": fmt.Sprintf("%s.i = t2.k", in)}, in, "t2")
		add("SortRows", skills.Args{"columns": []string{"i", "f", "s", "b", "ts", "k", "s2", "v"}})
		if rng.Intn(2) == 0 {
			add("KeepColumns", skills.Args{"columns": []string{"i", "s", "v"}})
		}
	} else if rng.Intn(3) == 0 {
		// Optional projection, sometimes twice so fusion's subset rule fires.
		add("KeepColumns", skills.Args{"columns": []string{"i", "f", "s"}})
		if rng.Intn(2) == 0 {
			add("KeepColumns", skills.Args{"columns": []string{"i", "s"}})
		}
	}
	// Phase 2: order-insensitive tail steps.
	for i := rng.Intn(3); i > 0; i-- {
		switch rng.Intn(3) {
		case 0:
			add("LimitRows", skills.Args{"count": rng.Intn(120)})
		case 1:
			add("LimitRows", skills.Args{"count": rng.Intn(60)})
		default:
			add("DistinctRows", skills.Args{})
		}
	}
	if step == 0 {
		add("KeepRows", skills.Args{"condition": sqlengine.CorpusPredicate(rng, "", 1)})
	}
	return g
}

// runDifferential executes count random pipelines under both executors and
// reports mismatches. Each pipeline gets fresh contexts (materialized
// intermediates must not leak across runs) but the planned executor keeps its
// cache warm across pipelines, so plan-time hits are exercised too.
func runDifferential(t *testing.T, seed int64, count int, opts ExecOptions) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cache := NewCache(256)
	for i := 0; i < count; i++ {
		pipeRng := rand.New(rand.NewSource(rng.Int63()))
		tableRng := rand.New(rand.NewSource(seed)) // same tables every pipeline
		g := corpusPipeline(pipeRng)

		planned := NewExecutor(reg, corpusCtx(tableRng))
		planned.SetCache(cache)
		planned.Options = opts
		ref := NewExecutor(reg, corpusCtx(rand.New(rand.NewSource(seed))))
		ref.Consolidate, ref.Fuse, ref.Pushdown, ref.UseCache = false, false, false, false
		ref.Options = opts

		want, wantErr := ref.Run(g, g.Last())
		got, gotErr := planned.Run(g, g.Last())
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("pipeline %d: planned err = %v, reference err = %v\n%s",
				i, gotErr, wantErr, RenderASCII(g, reg))
		}
		if wantErr != nil {
			continue
		}
		if !got.Table.Equal(want.Table) {
			t.Fatalf("pipeline %d: planned and reference tables differ\n%s\nplanned:\n%s\nreference:\n%s",
				i, RenderASCII(g, reg), got.Table, want.Table)
		}
	}
}

func TestDifferentialPlannedVsReference(t *testing.T) {
	runDifferential(t, 1701, 60, ExecOptions{})
}

// The planned executor must agree with the reference under parallel
// scheduling too; run with -race this doubles as the scheduler's data-race
// probe over realistic pipelines.
func TestDifferentialParallel(t *testing.T) {
	runDifferential(t, 42, 40, ExecOptions{Parallelism: 4})
}

// Forcing the row-at-a-time sqlengine fallback must not change any result:
// consolidated fragments go through a different execution path but the same
// semantics.
func TestDifferentialVectorizedFallback(t *testing.T) {
	runDifferential(t, 7, 40, ExecOptions{SQL: sqlengine.Options{DisableVectorized: true}})
}
