package session

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"datachat/internal/artifact"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

var reg = skills.NewRegistry()

func newSession(t *testing.T) *Session {
	t.Helper()
	ctx := skills.NewContext()
	ids := make([]int64, 1000)
	for i := range ids {
		ids[i] = int64(i)
	}
	ctx.Datasets["base"] = dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil))
	return New("analysis", "ann", reg, ctx)
}

func TestRequestAndHistory(t *testing.T) {
	s := newSession(t)
	res, id, err := s.Request("ann", skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "id < 10"}, Output: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 10 || id != 0 {
		t.Errorf("res = %d rows, id %d", res.Table.NumRows(), id)
	}
	hist := s.History()
	if len(hist) != 1 || hist[0].User != "ann" || !strings.Contains(hist[0].GEL, "Keep the rows") {
		t.Errorf("history = %+v", hist)
	}
	// Failures are also recorded, synchronized across members.
	_, _, err = s.Request("ann", skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "nope > 1"}})
	if err == nil {
		t.Fatal("expected failure")
	}
	hist = s.History()
	if len(hist) != 2 || hist[1].Error == "" {
		t.Errorf("failure not recorded: %+v", hist)
	}
}

func TestMembershipEnforced(t *testing.T) {
	s := newSession(t)
	inv := skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}}
	if _, _, err := s.Request("stranger", inv); err == nil {
		t.Error("stranger should be rejected")
	}
	if err := s.Share("ann", "bob", artifact.ViewAccess); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("bob", inv); err == nil {
		t.Error("viewer should not execute requests")
	}
	if err := s.Share("ann", "bob", artifact.EditAccess); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("bob", inv); err != nil {
		t.Errorf("editor should execute: %v", err)
	}
	if err := s.Share("bob", "carl", artifact.ViewAccess); err == nil {
		t.Error("only the owner shares the session")
	}
	if err := s.Revoke("ann", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("bob", inv); err == nil {
		t.Error("revoked member should be rejected")
	}
	if err := s.Revoke("ann", "ann"); err == nil {
		t.Error("owner cannot be revoked")
	}
	members := s.Members()
	if len(members) != 1 || members[0] != "ann" {
		t.Errorf("members = %v", members)
	}
}

// TestConcurrentRequestsFail pins the §2.4 lock semantics: when two
// requests race, exactly one wins and the other fails with ErrBusy.
func TestConcurrentRequestsFail(t *testing.T) {
	s := newSession(t)
	if err := s.Share("ann", "bob", artifact.EditAccess); err != nil {
		t.Fatal(err)
	}
	const attempts = 8
	var wg sync.WaitGroup
	errs := make([]error, attempts)
	start := make(chan struct{})
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// A moderately slow request so overlaps happen.
			_, _, errs[i] = s.Request("bob", skills.Invocation{
				Skill: "Compute", Inputs: []string{"base"},
				Args: skills.Args{"aggregates": []string{"sum of id as total"}},
			})
		}(i)
	}
	close(start)
	wg.Wait()
	succeeded, busy := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, ErrBusy):
			busy++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if succeeded == 0 {
		t.Error("no request succeeded")
	}
	if succeeded+busy != attempts {
		t.Errorf("succeeded=%d busy=%d", succeeded, busy)
	}
}

func TestSaveArtifactSlicesRecipe(t *testing.T) {
	s := newSession(t)
	store := artifact.NewStore()
	// An exploratory session: productive chain plus dead ends.
	if _, _, err := s.Request("ann", skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "id < 100"}, Output: "f1"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("ann", skills.Invocation{Skill: "DescribeDataset", Inputs: []string{"f1"}, Output: "dead1"}); err != nil {
		t.Fatal(err)
	}
	_, target, err := s.Request("ann", skills.Invocation{Skill: "KeepRows", Inputs: []string{"f1"},
		Args: skills.Args{"condition": "id >= 50"}, Output: "f2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("ann", skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}, Output: "dead2"}); err != nil {
		t.Fatal(err)
	}

	a, err := s.SaveArtifact(store, "ann", "halfband", target, artifact.TypeTable)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.NumRows() != 50 {
		t.Errorf("artifact rows = %d", a.Table.NumRows())
	}
	// Sliced: the two KeepRows merge into one step; dead ends pruned.
	if len(a.Recipe.Steps) != 1 {
		t.Errorf("recipe steps = %d (%+v)", len(a.Recipe.Steps), a.Recipe.Steps)
	}
	// Strangers can't save.
	if _, err := s.SaveArtifact(store, "zed", "x", target, artifact.TypeTable); err == nil {
		t.Error("stranger should not save artifacts")
	}
}

func TestHomeScreen(t *testing.T) {
	h := NewHomeScreen()
	if err := h.MkDir("reports/q2"); err != nil {
		t.Fatal(err)
	}
	if err := h.Place("reports/q2", "chart1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Place("reports/q2", "chart1"); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := h.Place("reports/q2", "chart2"); err != nil {
		t.Fatal(err)
	}
	items, children, err := h.ListFolder("reports/q2")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0] != "chart1" {
		t.Errorf("items = %v", items)
	}
	if len(children) != 0 {
		t.Errorf("children = %v", children)
	}
	_, children, err = h.ListFolder("reports")
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 1 || children[0] != "q2" {
		t.Errorf("children = %v", children)
	}
	if err := h.Remove("reports/q2", "chart1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Remove("reports/q2", "chart1"); err == nil {
		t.Error("double remove should fail")
	}
	if _, _, err := h.ListFolder("nope"); err != nil {
		// expected
	} else {
		t.Error("missing folder should error")
	}
}

func TestInsightsBoard(t *testing.T) {
	b := NewInsightsBoard("launch-review")
	if err := b.Pin(BoardItem{Artifact: "gdp-chart", X: 0, Y: 0, W: 6, H: 4, Caption: "GDP vs forecast"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Pin(BoardItem{Artifact: "collision-table", X: 6, Y: 0, W: 6, H: 4}); err != nil {
		t.Fatal(err)
	}
	b.AddText(TextBox{Text: "Q2 findings", X: 0, Y: 5})
	if err := b.Pin(BoardItem{}); err == nil {
		t.Error("empty pin should fail")
	}
	if got := len(b.Items()); got != 2 {
		t.Errorf("items = %d", got)
	}
	if got := len(b.Texts()); got != 1 {
		t.Errorf("texts = %d", got)
	}
	if err := b.Unpin("gdp-chart"); err != nil {
		t.Fatal(err)
	}
	if err := b.Unpin("gdp-chart"); err == nil {
		t.Error("double unpin should fail")
	}
	if got := len(b.Items()); got != 1 {
		t.Errorf("items after unpin = %d", got)
	}
}
