package datachat_test

import (
	"strings"
	"testing"

	"datachat"
)

// TestPublicAPIEndToEnd exercises the root package the way a downstream
// user would: platform, session, GEL, charts, recipes, cloud, snapshots,
// and the DAG executor — all through the re-exported API.
func TestPublicAPIEndToEnd(t *testing.T) {
	p := datachat.New()
	p.RegisterFile("sales.csv", "region,price\neast,10\nwest,20\neast,30\n")
	if _, err := p.CreateSession("s", "ann"); err != nil {
		t.Fatal(err)
	}
	res, err := p.RequestGEL("s", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}

	// Direct skill execution over a standalone context.
	reg := datachat.NewRegistry()
	ctx := datachat.NewContext()
	tbl, err := datachat.ReadCSV("sales", "region,price\neast,10\nwest,20\neast,30\n")
	if err != nil {
		t.Fatal(err)
	}
	ctx.Datasets["sales"] = tbl
	g := datachat.NewGraph()
	g.Add(datachat.Invocation{Skill: "KeepRows", Inputs: []string{"sales"},
		Args: datachat.Args{"condition": "price > 15"}, Output: "big"})
	last := g.Add(datachat.Invocation{Skill: "Compute", Inputs: []string{"big"},
		Args: datachat.Args{"aggregates": []string{"count of records as n"}}})
	ex := datachat.NewExecutor(reg, ctx)
	out, err := ex.Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := out.Table.Column("n")
	if c.Value(0).I != 2 {
		t.Errorf("count = %v", c.Value(0))
	}

	// Slicing through the public API.
	sliced, report, err := datachat.Slice(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Len() != 2 || report.NodesBefore != 2 {
		t.Errorf("slice = %d nodes (report %+v)", sliced.Len(), report)
	}

	// Charts through the public API.
	chart, err := datachat.BuildChart(tbl, datachat.ChartSpec{Type: 0 /* Bar */, X: "region", Y: "price"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(datachat.RenderChart(chart), "east") {
		t.Error("chart render missing category")
	}

	// Cloud + snapshots through the public API.
	db := datachat.NewCloudDatabase("wh", datachat.DefaultCloudPricing, 0)
	if err := db.CreateTable(tbl.WithName("sales")); err != nil {
		t.Fatal(err)
	}
	store := datachat.NewSnapshotStore(10)
	if _, err := store.Create("snap", db, "sales", 1, 1); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get("snap"); err != nil || got.NumRows() != 3 {
		t.Errorf("snapshot = %v, %v", got, err)
	}

	// GEL runner through the public API.
	parser := datachat.NewGELParser(reg)
	runner := datachat.NewGELRunner(parser, datachat.NewExecutor(reg, ctx), []string{
		"Use the dataset sales",
		"Count the rows",
	})
	steps, err := runner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	cnt, _ := steps[1].Result.Table.Column("rows")
	if cnt.Value(0).I != 3 {
		t.Errorf("GEL count = %v", cnt.Value(0))
	}

	// NL2Code through the public API.
	sys := datachat.NewNL2CodeSystem(reg, datachat.NewExampleLibrary(nil))
	p.UseNL2Code(sys)
	layer := datachat.NewSemanticLayer()
	if err := layer.Define(datachat.Concept{Name: "spend", Kind: "synonym", Expansion: "price"}); err != nil {
		t.Fatal(err)
	}
}
