// Package cloud simulates the consumption-priced cloud database the paper's
// §3 targets: tables are stored as row-group blocks, every scan is metered
// by bytes touched, and cost/latency are proportional to the data scanned.
// Block-level sampling reads only a fraction of the blocks, which is exactly
// why a 10% sample cuts the bill ~10× in the paper's IoT anecdote.
package cloud

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"datachat/internal/dataset"
)

// DefaultBlockRows is the number of rows per storage block.
const DefaultBlockRows = 8192

// DB is the read interface of a cloud database: the surface skills and
// sessions consume. Database implements it directly; fault-injection
// wrappers implement it around a Database.
type DB interface {
	// Name returns the database name.
	Name() string
	// Pricing returns the pricing plan.
	Pricing() Pricing
	// Meter returns the database's consumption meter.
	Meter() *Meter
	// Stats returns metadata for a stored table (free, never injected).
	Stats(name string) (TableStats, error)
	// Scan reads the full table, charging for every block.
	Scan(name string) (*dataset.Table, error)
	// SampleBlocks reads approximately rate (0, 1] of the table's blocks.
	SampleBlocks(name string, rate float64, seed int64) (*dataset.Table, error)
	// Table implements sqlengine.Catalog with Scan semantics.
	Table(name string) (*dataset.Table, error)
}

var _ DB = (*Database)(nil)

// Pricing models a consumption-based pricing plan.
type Pricing struct {
	// DollarsPerGB is the charge per gigabyte scanned.
	DollarsPerGB float64
	// LatencyPerMB is the simulated scan latency per megabyte (virtual time;
	// the simulator accounts for it without sleeping).
	LatencyPerMB time.Duration
}

// DefaultPricing matches common on-demand warehouse pricing (~$5/TB scanned).
var DefaultPricing = Pricing{DollarsPerGB: 0.005, LatencyPerMB: 2 * time.Millisecond}

// Meter accumulates consumption across queries.
type Meter struct {
	mu           sync.Mutex
	bytesScanned int64
	queries      int
	latency      time.Duration
}

func (m *Meter) charge(bytes int64, p Pricing) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytesScanned += bytes
	m.queries++
	m.latency = satAdd(m.latency, scanLatency(bytes, p.LatencyPerMB))
}

// scanLatency converts bytes scanned to simulated latency in integer math:
// whole megabytes times the per-MB rate plus the pro-rated remainder. The
// float path it replaces lost precision past 2^53 bytes and could overflow
// the Duration range silently on multi-TB scans; here the whole-MB product
// saturates at the Duration maximum instead of wrapping negative.
func scanLatency(bytes int64, perMB time.Duration) time.Duration {
	if bytes <= 0 || perMB <= 0 {
		return 0
	}
	const maxDuration = time.Duration(1<<63 - 1)
	whole := bytes >> 20
	frac := bytes & (1<<20 - 1)
	if whole > 0 && perMB > maxDuration/time.Duration(whole) {
		return maxDuration
	}
	d := time.Duration(whole) * perMB
	var fracLat time.Duration
	if frac > 0 {
		if perMB <= maxDuration/time.Duration(frac) {
			fracLat = time.Duration(frac) * perMB / (1 << 20)
		} else {
			fracLat = perMB / (1 << 20) * time.Duration(frac)
		}
	}
	return satAdd(d, fracLat)
}

// satAdd adds two non-negative durations, saturating instead of wrapping.
func satAdd(a, b time.Duration) time.Duration {
	const maxDuration = time.Duration(1<<63 - 1)
	if a > maxDuration-b {
		return maxDuration
	}
	return a + b
}

// BytesScanned returns the total bytes scanned so far.
func (m *Meter) BytesScanned() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesScanned
}

// Queries returns the number of metered scans.
func (m *Meter) Queries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queries
}

// SimulatedLatency returns the accumulated virtual scan latency.
func (m *Meter) SimulatedLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latency
}

// Cost returns the accumulated dollar cost under the given pricing.
func (m *Meter) Cost(p Pricing) float64 {
	return float64(m.BytesScanned()) / (1 << 30) * p.DollarsPerGB
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytesScanned, m.queries, m.latency = 0, 0, 0
}

// block is one row group with its estimated on-disk size.
type block struct {
	rows  *dataset.Table
	bytes int64
}

// storedTable is a table partitioned into blocks.
type storedTable struct {
	name       string
	blocks     []*block
	totalRows  int
	totalBytes int64
	// fingerprint is a content hash of every cell, computed once at ingest
	// (free, like the rest of the metadata) so Stats can report whether the
	// table changed without anyone scanning it.
	fingerprint uint64
}

// Database is a simulated cloud database instance.
type Database struct {
	name      string
	pricing   Pricing
	blockRows int
	mu        sync.RWMutex
	tables    map[string]*storedTable
	meter     Meter
}

// NewDatabase creates a database with the given pricing; blockRows <= 0
// selects DefaultBlockRows.
func NewDatabase(name string, pricing Pricing, blockRows int) *Database {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	return &Database{
		name:      name,
		pricing:   pricing,
		blockRows: blockRows,
		tables:    make(map[string]*storedTable),
	}
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// Pricing returns the pricing plan.
func (d *Database) Pricing() Pricing { return d.pricing }

// Meter returns the database's consumption meter.
func (d *Database) Meter() *Meter { return &d.meter }

// CreateTable stores a table, partitioning it into blocks. Loading data in
// is free, matching cloud warehouses that charge for scans, not ingest.
func (d *Database) CreateTable(t *dataset.Table) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.tables[strings.ToLower(t.Name())]; exists {
		return fmt.Errorf("cloud: table %q already exists in %s", t.Name(), d.name)
	}
	d.tables[strings.ToLower(t.Name())] = d.store(t)
	return nil
}

// ReplaceTable swaps a stored table's content in place — the simulator's
// model of an out-of-band data refresh (a nightly ETL load, a stream sink).
// The table keeps its name but its content fingerprint moves, so schedulers
// diffing Stats see the change without scanning anything.
func (d *Database) ReplaceTable(t *dataset.Table) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[strings.ToLower(t.Name())]; !ok {
		return fmt.Errorf("cloud: unknown table %q", t.Name())
	}
	d.tables[strings.ToLower(t.Name())] = d.store(t)
	return nil
}

// store partitions t into blocks and fingerprints its content; callers hold
// the write lock.
func (d *Database) store(t *dataset.Table) *storedTable {
	st := &storedTable{name: t.Name(), totalRows: t.NumRows()}
	for from := 0; from < t.NumRows() || from == 0; from += d.blockRows {
		to := from + d.blockRows
		if to > t.NumRows() {
			to = t.NumRows()
		}
		b := &block{rows: t.Slice(from, to)}
		b.bytes = estimateBytes(b.rows)
		st.blocks = append(st.blocks, b)
		st.totalBytes += b.bytes
		if t.NumRows() == 0 {
			break
		}
	}
	st.fingerprint = contentFingerprint(t)
	return st
}

// contentFingerprint hashes every cell of t (schema included), so two tables
// with the same rows hash equal and any cell change moves the hash.
func contentFingerprint(t *dataset.Table) uint64 {
	h := fnv.New64a()
	io.WriteString(h, t.Name())
	var buf [8]byte
	for _, c := range t.Columns() {
		io.WriteString(h, c.Name())
		io.WriteString(h, c.Type().String())
		for i := 0; i < c.Len(); i++ {
			if c.IsNull(i) {
				h.Write([]byte{0xff})
				continue
			}
			v := c.Value(i)
			switch v.Type {
			case dataset.TypeInt:
				binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
				h.Write(buf[:])
			case dataset.TypeFloat:
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
				h.Write(buf[:])
			case dataset.TypeString:
				io.WriteString(h, v.S)
				h.Write([]byte{0})
			case dataset.TypeBool:
				if v.B {
					h.Write([]byte{1})
				} else {
					h.Write([]byte{2})
				}
			case dataset.TypeTime:
				binary.LittleEndian.PutUint64(buf[:], uint64(v.T.UnixNano()))
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

// DropTable removes a table.
func (d *Database) DropTable(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := d.tables[key]; !ok {
		return fmt.Errorf("cloud: unknown table %q", name)
	}
	delete(d.tables, key)
	return nil
}

// TableNames lists stored tables in sorted order.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for _, st := range d.tables {
		names = append(names, st.name)
	}
	sort.Strings(names)
	return names
}

// TableStats describes a stored table without scanning it (metadata reads
// are free, as in real warehouses).
type TableStats struct {
	Name   string
	Rows   int
	Blocks int
	Bytes  int64
	// Fingerprint is a content hash of the stored rows, computed at ingest.
	// It changes exactly when the data does, so cache layers and refresh
	// schedulers can detect staleness from free metadata alone.
	Fingerprint uint64
}

// Stats returns metadata for a stored table.
func (d *Database) Stats(name string) (TableStats, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st, ok := d.tables[strings.ToLower(name)]
	if !ok {
		return TableStats{}, fmt.Errorf("cloud: unknown table %q", name)
	}
	return TableStats{Name: st.name, Rows: st.totalRows, Blocks: len(st.blocks), Bytes: st.totalBytes, Fingerprint: st.fingerprint}, nil
}

// Table implements sqlengine.Catalog: a full scan of the named table,
// charged to the meter. SQL execution over the database therefore costs in
// proportion to the tables it reads.
func (d *Database) Table(name string) (*dataset.Table, error) {
	return d.Scan(name)
}

// Scan reads the full table, charging for every block.
func (d *Database) Scan(name string) (*dataset.Table, error) {
	d.mu.RLock()
	st, ok := d.tables[strings.ToLower(name)]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cloud: unknown table %q", name)
	}
	d.meter.charge(st.totalBytes, d.pricing)
	return assemble(st.name, st.blocks)
}

// SampleBlocks reads approximately rate (0, 1] of the table's blocks chosen
// pseudo-randomly from seed, charging only for the blocks actually read.
// This is the paper's block-level sampling skill: cost scales with the
// sample rate, not the table size.
func (d *Database) SampleBlocks(name string, rate float64, seed int64) (*dataset.Table, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("cloud: sample rate %v out of range (0, 1]", rate)
	}
	d.mu.RLock()
	st, ok := d.tables[strings.ToLower(name)]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cloud: unknown table %q", name)
	}
	n := len(st.blocks)
	want := int(float64(n)*rate + 0.5)
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:want]
	sort.Ints(perm)
	chosen := make([]*block, want)
	var charged int64
	for i, bi := range perm {
		chosen[i] = st.blocks[bi]
		charged += st.blocks[bi].bytes
	}
	d.meter.charge(charged, d.pricing)
	t, err := assemble(st.name, chosen)
	if err != nil {
		return nil, err
	}
	return t.WithName(st.name + "_sample"), nil
}

func assemble(name string, blocks []*block) (*dataset.Table, error) {
	if len(blocks) == 0 {
		return dataset.NewTable(name)
	}
	first := blocks[0].rows
	cols := make([]*dataset.Column, first.NumCols())
	for ci, proto := range first.Columns() {
		col := dataset.NewColumn(proto.Name(), proto.Type())
		for _, b := range blocks {
			src, err := b.rows.Column(proto.Name())
			if err != nil {
				return nil, err
			}
			for r := 0; r < src.Len(); r++ {
				col.Append(src.Value(r))
			}
		}
		cols[ci] = col
	}
	return dataset.NewTable(name, cols...)
}

// estimateBytes approximates the stored size of a table from its schema:
// 8 bytes per numeric/time cell, 1 per bool, string length per string cell,
// plus one bit (rounded up to a byte here) per nullable cell.
func estimateBytes(t *dataset.Table) int64 {
	var total int64
	for _, c := range t.Columns() {
		switch c.Type() {
		case dataset.TypeInt, dataset.TypeFloat, dataset.TypeTime:
			total += int64(8 * c.Len())
		case dataset.TypeBool:
			total += int64(c.Len())
		case dataset.TypeString:
			for i := 0; i < c.Len(); i++ {
				if !c.IsNull(i) {
					total += int64(len(c.Value(i).S))
				}
			}
			total += int64(4 * c.Len()) // offsets
		}
		if c.NullCount() > 0 {
			total += int64(c.Len() / 8)
		}
	}
	return total
}

// ScanLatency estimates the simulated latency of scanning the given byte
// count under a pricing model. It is the planner-facing view of the same
// integer-math model the meter charges with, so cost estimates and observed
// meter latency agree exactly for full scans.
func ScanLatency(bytes int64, p Pricing) time.Duration {
	return scanLatency(bytes, p.LatencyPerMB)
}

// ScanCost estimates the dollar cost of scanning the given byte count under
// a pricing model, mirroring Meter.Cost for a single hypothetical scan.
func ScanCost(bytes int64, p Pricing) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 30) * p.DollarsPerGB
}
