// Package semantic implements the semantic layer of §4.2: a programmatic
// representation of domain concepts (metrics, dimensions, filters, synonyms,
// hierarchies) plus a weighted retrieval mechanism that surfaces the
// concepts relevant to a natural-language query. Retrieved concepts enrich
// NL2Code prompts ("successful purchases" → PurchaseStatus = 'Successful')
// and drive the phrase-based Visualize translation of §4.8.
package semantic

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a concept.
type Kind string

// Concept kinds.
const (
	// Metric is a computed measure ("revenue is the sum of price*(1-discount)").
	Metric Kind = "metric"
	// Dimension is a grouping attribute or column annotation.
	Dimension Kind = "dimension"
	// Filter maps a phrase to a predicate ("successful purchases").
	Filter Kind = "filter"
	// Synonym maps a word to a column or value name.
	Synonym Kind = "synonym"
	// Hierarchy orders dimensions for drill-down ("country > state > city").
	Hierarchy Kind = "hierarchy"
)

// Concept is one semantic-layer entry.
type Concept struct {
	// Name is the phrase users say.
	Name string
	// Kind classifies the concept.
	Kind Kind
	// Expansion is what the concept means to the engine: an expression,
	// predicate, column name, or ordered column list (hierarchies).
	Expansion string
	// Table scopes the concept to a dataset ("" = global).
	Table string
	// Keywords are extra trigger words beyond the name's own tokens.
	Keywords []string
	// Doc is a one-line human description included in prompts.
	Doc string
}

// Scored is a retrieval result.
type Scored struct {
	Concept *Concept
	Score   float64
}

// Layer is a set of concepts with weighted retrieval.
type Layer struct {
	concepts []*Concept
	byName   map[string]*Concept
}

// NewLayer returns an empty semantic layer.
func NewLayer() *Layer {
	return &Layer{byName: map[string]*Concept{}}
}

// Define adds or replaces a concept (the Define skill's backend).
func (l *Layer) Define(c Concept) error {
	if c.Name == "" {
		return fmt.Errorf("semantic: concept name must not be empty")
	}
	if c.Expansion == "" {
		return fmt.Errorf("semantic: concept %q needs an expansion", c.Name)
	}
	if c.Kind == "" {
		c.Kind = Filter
	}
	key := strings.ToLower(c.Name)
	if existing, ok := l.byName[key]; ok {
		*existing = c
		return nil
	}
	copied := c
	l.concepts = append(l.concepts, &copied)
	l.byName[key] = &copied
	return nil
}

// Lookup returns a concept by exact name.
func (l *Layer) Lookup(name string) (*Concept, bool) {
	c, ok := l.byName[strings.ToLower(name)]
	return c, ok
}

// Len returns the number of concepts.
func (l *Layer) Len() int { return len(l.concepts) }

// Concepts returns all concepts (callers must not mutate).
func (l *Layer) Concepts() []*Concept { return l.concepts }

// stopwords excluded from token matching.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "in": true, "on": true,
	"for": true, "to": true, "and": true, "or": true, "by": true, "with": true,
	"is": true, "are": true, "was": true, "were": true, "what": true,
	"which": true, "how": true, "many": true, "much": true, "show": true,
	"me": true, "all": true, "each": true, "per": true, "list": true,
	"find": true, "give": true, "that": true, "have": true, "has": true,
	"do": true, "does": true, "their": true, "there": true,
}

// Tokens extracts lowercase content tokens from text, splitting camelCase
// and snake_case identifiers and dropping stopwords.
func Tokens(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		tok := strings.ToLower(cur.String())
		cur.Reset()
		if tok != "" && !stopwords[tok] {
			tokens = append(tokens, tok)
		}
	}
	prevLower := false
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			cur.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z'
		case r >= 'A' && r <= 'Z':
			if prevLower {
				flush()
			}
			cur.WriteRune(r + ('a' - 'A'))
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return tokens
}

// Retrieve returns the top concepts relevant to a query, scored by phrase
// containment (strongest), token overlap, and keyword hits. Ties break by
// definition order so prompts are stable.
func (l *Layer) Retrieve(query string, limit int) []Scored {
	queryLower := strings.ToLower(query)
	queryTokens := Tokens(query)
	querySet := map[string]bool{}
	for _, t := range queryTokens {
		querySet[t] = true
	}
	var out []Scored
	for _, c := range l.concepts {
		score := 0.0
		if strings.Contains(queryLower, strings.ToLower(c.Name)) {
			score += 3 // whole-phrase hit
		}
		for _, t := range Tokens(c.Name) {
			if querySet[t] {
				score++
			}
		}
		for _, kw := range c.Keywords {
			if querySet[strings.ToLower(kw)] {
				score += 1.5
			}
		}
		if score > 0 {
			out = append(out, Scored{Concept: c, Score: score})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// PromptSnippets renders the top concepts for a query as concise prompt
// lines, respecting a token budget (≈ whitespace words). The §4.2
// requirement: SL outputs must be as concise as possible.
func (l *Layer) PromptSnippets(query string, tokenBudget int) []string {
	var lines []string
	used := 0
	for _, s := range l.Retrieve(query, 0) {
		line := s.Concept.render()
		cost := len(strings.Fields(line))
		if used+cost > tokenBudget {
			break
		}
		lines = append(lines, line)
		used += cost
	}
	return lines
}

func (c *Concept) render() string {
	scope := ""
	if c.Table != "" {
		scope = " [" + c.Table + "]"
	}
	doc := ""
	if c.Doc != "" {
		doc = " — " + c.Doc
	}
	return fmt.Sprintf("%s%s (%s): %s%s", c.Name, scope, c.Kind, c.Expansion, doc)
}

// ResolveToken maps a single word to a column or value via synonym and
// filter concepts, returning the expansion and true on a hit.
func (l *Layer) ResolveToken(token string) (string, bool) {
	token = strings.ToLower(token)
	for _, c := range l.concepts {
		if c.Kind != Synonym && c.Kind != Dimension {
			continue
		}
		if strings.EqualFold(c.Name, token) {
			return c.Expansion, true
		}
		for _, kw := range c.Keywords {
			if strings.EqualFold(kw, token) {
				return c.Expansion, true
			}
		}
	}
	return "", false
}
