// Package core is the DataChat platform façade: it wires the skill
// registry, sessions with their locks and DAG executors, the artifact store
// with sharing and secret links, the Home Screen and Insights Boards, cloud
// database connections, the snapshot store, the semantic layer, the GEL
// parser, the phrase-based translator, and the NL2Code system into one
// object — the paper's system as a single API.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"datachat/internal/artifact"
	"datachat/internal/cloud"
	"datachat/internal/dag"
	"datachat/internal/gel"
	"datachat/internal/nl2code"
	"datachat/internal/phrase"
	"datachat/internal/plan"
	"datachat/internal/pyapi"
	"datachat/internal/semantic"
	"datachat/internal/session"
	"datachat/internal/skills"
	"datachat/internal/snapshot"
	"datachat/internal/viz"
)

// Platform is one DataChat deployment.
type Platform struct {
	// Registry is the installed skill set.
	Registry *skills.Registry
	// Artifacts stores saved artifacts with permissions and links.
	Artifacts *artifact.Store
	// Home is the Home Screen folder tree.
	Home *session.HomeScreen
	// Snapshots is the fixed-cost local snapshot store.
	Snapshots *snapshot.Store
	// Semantic is the deployment-wide semantic layer.
	Semantic *semantic.Layer
	// Parser is the GEL parser.
	Parser *gel.Parser

	mu       sync.Mutex
	sessions map[string]*session.Session
	boards   map[string]*session.InsightsBoard
	clouds   map[string]cloud.DB
	files    map[string]string
	nl2      *nl2code.System
	// cache is the deployment-wide sub-DAG result cache. Every session's
	// executor shares it, so concurrent sessions reuse — and deduplicate —
	// each other's work (§2.2): cache keys combine the structural DAG
	// signature with content fingerprints of the external inputs, so two
	// sessions holding different data under the same name never collide.
	cache *dag.Cache
	// stats is the deployment-wide observed-stats registry backing the cost
	// model: canonical fingerprints are shared across sessions, so every
	// session's measurements refine every other session's estimates.
	stats *plan.StatsRegistry
}

// New creates an empty platform.
func New() *Platform {
	reg := skills.NewRegistry()
	return &Platform{
		Registry:  reg,
		Artifacts: artifact.NewStore(),
		Home:      session.NewHomeScreen(),
		Snapshots: snapshot.NewStore(50),
		Semantic:  semantic.NewLayer(),
		Parser:    gel.MustNewParser(reg),
		sessions:  map[string]*session.Session{},
		boards:    map[string]*session.InsightsBoard{},
		clouds:    map[string]cloud.DB{},
		files:     map[string]string{},
		cache:     dag.NewCache(dag.DefaultCacheCapacity),
		stats:     plan.NewStatsRegistry(plan.DefaultStatsCapacity),
	}
}

// CacheStats reports the shared sub-DAG cache's hit/miss/eviction counters
// across all sessions.
func (p *Platform) CacheStats() dag.CacheStats { return p.cache.Stats() }

// ExecStats sums execution statistics across every open session's executor —
// the deployment-wide view /statsz serves.
func (p *Platform) ExecStats() dag.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total dag.Stats
	for _, s := range p.sessions {
		st := s.Executor().Stats()
		total.TasksRun += st.TasksRun
		total.SQLTasks += st.SQLTasks
		total.DirectTasks += st.DirectTasks
		total.NodesConsolidated += st.NodesConsolidated
		total.QueryBlocks += st.QueryBlocks
		total.RowsMaterialized += st.RowsMaterialized
		total.CacheHits += st.CacheHits
		total.CacheMisses += st.CacheMisses
		total.Retries += st.Retries
		total.PermanentFailures += st.PermanentFailures
		total.Degraded += st.Degraded
		total.StreamedChunks += st.StreamedChunks
		total.StreamedRows += st.StreamedRows
		total.SpillRuns += st.SpillRuns
		total.SpilledRows += st.SpilledRows
		total.SpilledBytes += st.SpilledBytes
		// High-water marks and gauges aggregate by max, not sum.
		if st.PeakBufferedRows > total.PeakBufferedRows {
			total.PeakBufferedRows = st.PeakBufferedRows
		}
		if st.StreamWorkers > total.StreamWorkers {
			total.StreamWorkers = st.StreamWorkers
		}
	}
	return total
}

// InvalidateCache drops every cached sub-DAG result platform-wide, e.g.
// after source data known to the deployment changes out of band.
func (p *Platform) InvalidateCache() { p.cache.Invalidate() }

// ConnectDatabase attaches a cloud database to the platform. Accepting the
// read interface lets deployments (and chaos tests) connect fault-injected
// wrappers in place of a bare Database.
func (p *Platform) ConnectDatabase(db cloud.DB) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToLower(db.Name())
	if _, dup := p.clouds[key]; dup {
		return fmt.Errorf("core: database %q is already connected", db.Name())
	}
	p.clouds[key] = db
	return nil
}

// Database returns a connected database.
func (p *Platform) Database(name string) (cloud.DB, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	db, ok := p.clouds[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: no connected database %q", name)
	}
	return db, nil
}

// RegisterFile makes CSV content loadable by name or URL in every session
// created afterwards (the offline stand-in for file upload / URL fetch).
func (p *Platform) RegisterFile(name, csvContent string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.files[name] = csvContent
}

// CreateSession opens a session for owner, seeded with the platform's
// files, databases, and snapshot store.
func (p *Platform) CreateSession(name, owner string) (*session.Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := p.sessions[key]; dup {
		return nil, fmt.Errorf("core: session %q already exists", name)
	}
	ctx := skills.NewContext()
	for fileName, content := range p.files {
		ctx.Files[fileName] = content
	}
	for _, db := range p.clouds {
		ctx.Cloud[db.Name()] = db
	}
	ctx.Snapshots = p.Snapshots
	s := session.New(name, owner, p.Registry, ctx)
	s.Executor().SetCache(p.cache)
	s.Executor().SetStatsRegistry(p.stats)
	p.sessions[key] = s
	return s, nil
}

// EnsureSession returns the named session, creating it (owned by owner)
// when it does not exist yet — the scheduler's idempotent way to target a
// dedicated background session per job without racing other creators.
func (p *Platform) EnsureSession(name, owner string) (*session.Session, error) {
	p.mu.Lock()
	if s, ok := p.sessions[strings.ToLower(name)]; ok {
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	s, err := p.CreateSession(name, owner)
	if err != nil {
		// Lost a creation race: someone else made it between the unlock and
		// CreateSession's relock. Use theirs.
		if existing, serr := p.Session(name); serr == nil {
			return existing, nil
		}
		return nil, err
	}
	return s, nil
}

// Session returns an open session.
func (p *Platform) Session(name string) (*session.Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: no session %q", name)
	}
	return s, nil
}

// Sessions lists open session names, sorted.
func (p *Platform) Sessions() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.sessions))
	for _, s := range p.sessions {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Board returns (creating on first use) an Insights Board.
func (p *Platform) Board(name string) *session.InsightsBoard {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToLower(name)
	b, ok := p.boards[key]
	if !ok {
		b = session.NewInsightsBoard(name)
		p.boards[key] = b
	}
	return b
}

// Run executes a program of skill invocations in a session on behalf of a
// user — the platform's single plan-then-execute entry point. Every front
// end (GEL, the Python API, phrase translation, recipe replay) reduces its
// input to invocations and funnels through here, so identical pipelines
// lower into identical logical plans and share sub-DAG cache entries no
// matter which surface built them.
func (p *Platform) Run(sessionName, user string, invs ...skills.Invocation) (*skills.Result, error) {
	res, _, err := p.RunCtx(context.Background(), sessionName, user, nil, invs...)
	return res, err
}

// RunCtx is Run with an explicit context and optional per-request execution
// tuning (deadline, retry policy, clock), and it additionally returns the DAG
// node ids the program appended — the network layer needs them to anchor
// artifact saves. This is the entry point datachatd funnels every remote
// execution through.
func (p *Platform) RunCtx(ctx context.Context, sessionName, user string, tune *session.Tuning, invs ...skills.Invocation) (*skills.Result, []dag.NodeID, error) {
	s, err := p.Session(sessionName)
	if err != nil {
		return nil, nil, err
	}
	return s.RequestProgramCtx(ctx, user, tune, invs...)
}

// RunPython parses a DataChat Python API script and executes it via Run.
func (p *Platform) RunPython(sessionName, user, src string) (*skills.Result, error) {
	prog, err := pyapi.Parse(src)
	if err != nil {
		return nil, err
	}
	invs, err := pyapi.NewTranslator(p.Registry).Invocations(prog)
	if err != nil {
		return nil, err
	}
	return p.Run(sessionName, user, invs...)
}

// RunPhrase translates a §4.8 phrase-based request against a dataset and
// executes the resulting invocation via Run.
func (p *Platform) RunPhrase(sessionName, user, input, datasetName string) (*skills.Result, error) {
	t, err := p.TranslatePhrase(sessionName, input, datasetName)
	if err != nil {
		return nil, err
	}
	inv := t.Invocation
	if len(inv.Inputs) == 0 {
		inv.Inputs = []string{datasetName}
	}
	return p.Run(sessionName, user, inv)
}

// Explain returns the EXPLAIN report — optimized plan, SQL fragments, pass
// trace — for the session step producing the named dataset, without
// executing anything. Pass "" for the session's latest step.
func (p *Platform) Explain(sessionName, output string) (*plan.Explain, error) {
	s, err := p.Session(sessionName)
	if err != nil {
		return nil, err
	}
	return s.Explain(output)
}

// RequestGEL parses a GEL sentence and executes it in a session on behalf
// of a user — the console's one-line entry point. Sentences that do not
// name datasets act on `current` (pass "" to require explicit names).
func (p *Platform) RequestGEL(sessionName, user, line, current string) (*skills.Result, error) {
	inv, err := p.ParseGEL(line, current)
	if err != nil {
		return nil, err
	}
	res, _, err := p.RunCtx(context.Background(), sessionName, user, nil, inv)
	return res, err
}

// ParseGEL parses one GEL sentence into an invocation, defaulting the input
// of dataset-consuming skills to current (pass "" to require explicit names)
// — the shared front half of RequestGEL, exposed so the network layer can
// parse, then execute through its own tuned entry point.
func (p *Platform) ParseGEL(line, current string) (skills.Invocation, error) {
	inv, err := p.Parser.Parse(line)
	if err != nil {
		return skills.Invocation{}, err
	}
	if len(inv.Inputs) == 0 && needsInput(inv.Skill) {
		if current == "" {
			return skills.Invocation{}, fmt.Errorf("core: %s needs a dataset; load or use one first", inv.Skill)
		}
		inv.Inputs = []string{current}
	}
	return inv, nil
}

func needsInput(skill string) bool {
	switch skill {
	case "LoadData", "LoadTable", "SampleTable", "CreateSnapshot", "UseSnapshot",
		"RefreshSnapshot", "ListDatasets", "UseDataset", "Define", "ShareSession",
		"ShareArtifact", "PublishToInsightsBoard", "AddComment", "ExplainModel", "RunSQL":
		return false
	default:
		return true
	}
}

// TranslatePhrase runs the §4.8 phrase-based translator against a dataset
// in a session.
func (p *Platform) TranslatePhrase(sessionName, input, datasetName string) (*phrase.Translation, error) {
	s, err := p.Session(sessionName)
	if err != nil {
		return nil, err
	}
	t, err := s.Context().Dataset(datasetName)
	if err != nil {
		return nil, err
	}
	tr := &phrase.Translator{Layer: p.Semantic}
	return tr.Translate(input, t)
}

// UseNL2Code installs an NL2Code system (with its example library).
func (p *Platform) UseNL2Code(sys *nl2code.System) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nl2 = sys
}

// NL2Code translates an English request into a checked program against a
// session's datasets (Figure 6's pipeline, end to end).
func (p *Platform) NL2Code(sessionName, question string) (*nl2code.Response, error) {
	p.mu.Lock()
	sys := p.nl2
	p.mu.Unlock()
	if sys == nil {
		sys = nl2code.NewSystem(p.Registry, nl2code.NewLibrary(nil))
	}
	s, err := p.Session(sessionName)
	if err != nil {
		return nil, err
	}
	return sys.Generate(nl2code.Request{
		Question: question,
		Tables:   s.Context().Datasets,
		Layer:    p.Semantic,
	})
}

// RefreshArtifact replays an artifact's recipe against a session (with the
// sub-DAG cache invalidated so changed source data is re-read), updates the
// stored payload, and stamps the refresh time — the §2.3 "refresh"
// interaction surfaced on every artifact.
func (p *Platform) RefreshArtifact(sessionName, user, artifactName string) (*artifact.Artifact, error) {
	a, err := p.Artifacts.Get(artifactName, user)
	if err != nil {
		return nil, err
	}
	if p.Artifacts.AccessOf(artifactName, user) < artifact.EditAccess {
		return nil, fmt.Errorf("core: %s cannot refresh %q", user, artifactName)
	}
	s, err := p.Session(sessionName)
	if err != nil {
		return nil, err
	}
	res, err := s.ReplayRecipe(context.Background(), user, a.Recipe, true)
	if err != nil {
		return nil, fmt.Errorf("core: refreshing %q: %w", artifactName, err)
	}
	a.Table = res.Table
	if len(res.Charts) > 0 {
		a.Chart = res.Charts[0]
	}
	if err := p.Artifacts.MarkRefreshed(artifactName); err != nil {
		return nil, err
	}
	return a, nil
}

// RenderBoard lays out an Insights Board as text: each pinned artifact in
// placement order with its caption and payload (chart or table preview),
// plus the board's text boxes — the console's stand-in for presenting an
// IB (§2.4).
func (p *Platform) RenderBoard(boardName, user string) (string, error) {
	board := p.Board(boardName)
	var b strings.Builder
	fmt.Fprintf(&b, "═══ Insights Board: %s ═══\n", board.Name)
	for _, t := range board.Texts() {
		fmt.Fprintf(&b, "  %s\n", t.Text)
	}
	for _, item := range board.Items() {
		a, err := p.Artifacts.Get(item.Artifact, user)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n─── %s (%s, at %d,%d %d×%d) ───\n",
			a.Name, a.Type, item.X, item.Y, item.W, item.H)
		if item.Caption != "" {
			fmt.Fprintf(&b, "%s\n", item.Caption)
		}
		switch {
		case a.Chart != nil:
			b.WriteString(viz.Render(a.Chart))
		case a.Table != nil:
			b.WriteString(a.Table.Head(5).String())
		case a.Explanation != "":
			b.WriteString(a.Explanation + "\n")
		}
	}
	return b.String(), nil
}
