package gel_test

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datachat/internal/gel"
	"datachat/internal/skills"
)

// corpusGELSeeds pulls every GEL sentence out of the conformance corpus so
// the fuzzer starts from the full grammar surface the product actually
// exercises, not a hand-picked subset.
func corpusGELSeeds(f *testing.F) []string {
	f.Helper()
	dir := filepath.Join("..", "..", "testdata", "conformance")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading corpus dir: %v", err)
	}
	var seeds []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".case") {
			continue
		}
		fh, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		sc := bufio.NewScanner(fh)
		inGEL := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "gel:":
				inGEL = true
			case inGEL && strings.HasPrefix(line, "  "):
				seeds = append(seeds, strings.TrimPrefix(line, "  "))
			case !strings.HasPrefix(line, "  "):
				inGEL = false
			}
		}
		fh.Close()
		if err := sc.Err(); err != nil {
			f.Fatal(err)
		}
	}
	if len(seeds) == 0 {
		f.Fatal("no GEL sentences found in the conformance corpus")
	}
	return seeds
}

// FuzzGELParse throws arbitrary console input at the GEL front end. The
// parser, the autocomplete suggester, and the condition translator all face
// raw user keystrokes, so none of them may panic — an invocation or an
// error are the only acceptable outcomes.
func FuzzGELParse(f *testing.F) {
	for _, s := range corpusGELSeeds(f) {
		f.Add(s)
	}
	for _, s := range []string{
		"",
		"Keep the rows where",
		"Compute the of for each and call the computed columns",
		"Load data from the file 'unterminated",
		"Join the datasets a and b on = ",
		"Visualize price by ,,,",
		"Keep the rows where x = 'a ' ' b'",
		"Sort the rows by \x00\xff",
		"Use the dataset ünïcode",
		"Compute the sum of ( for each )",
		"Predict the next -3 values of {measure}",
	} {
		f.Add(s)
	}
	reg := skills.NewRegistry()
	p := gel.MustNewParser(reg)
	f.Fuzz(func(t *testing.T, line string) {
		_, _ = p.Parse(line)
		_ = p.TranslateCondition(line)
		_ = p.Suggest(line, []string{"price", "region"})
	})
}
