package skills

import (
	"strings"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/expr"
	"datachat/internal/sqlengine"
)

func builderCatalog() sqlengine.MapCatalog {
	return sqlengine.NewMapCatalog(map[string]*dataset.Table{"t": dataset.MustNewTable("t",
		dataset.IntColumn("a", []int64{1, 2, 3, 4}, nil),
		dataset.IntColumn("b", []int64{10, 20, 30, 40}, nil),
		dataset.StringColumn("g", []string{"x", "x", "y", "y"}, nil),
	)})
}

func execBuilder(t *testing.T, b *QueryBuilder) *dataset.Table {
	t.Helper()
	out, err := sqlengine.ExecStmt(builderCatalog(), b.Stmt())
	if err != nil {
		t.Fatalf("exec %s: %v", b.SQL(), err)
	}
	return out
}

func TestProjectNarrowsExplicitProjection(t *testing.T) {
	b := NewQueryBuilder("t")
	b.Project([]string{"a", "b", "g"})
	b.Project([]string{"b"})
	if got := b.Blocks(); got != 1 {
		t.Errorf("narrowing should stay one block, got %d: %s", got, b.SQL())
	}
	out := execBuilder(t, b)
	if out.NumCols() != 1 || !out.HasColumn("b") {
		t.Errorf("columns = %v", out.ColumnNames())
	}
}

func TestProjectKeepsComputedAlias(t *testing.T) {
	b := NewQueryBuilder("t")
	b.AddColumn("double_a", mustParse(t, "a * 2"))
	b.Project([]string{"double_a"})
	if got := b.Blocks(); got != 1 {
		t.Errorf("alias narrowing should stay one block, got %d: %s", got, b.SQL())
	}
	out := execBuilder(t, b)
	c, err := out.Column("double_a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Value(0).I != 2 {
		t.Errorf("double_a[0] = %v", c.Value(0))
	}
}

func TestProjectUnknownColumnNests(t *testing.T) {
	b := NewQueryBuilder("t")
	b.Project([]string{"a"})
	b.Project([]string{"b"}) // not in the narrowed projection: must nest
	if got := b.Blocks(); got < 2 {
		t.Errorf("projecting a dropped column should nest: %d blocks (%s)", got, b.SQL())
	}
	// Executing it fails (b was projected away) — matching direct-path
	// semantics where selecting a dropped column errors.
	if _, err := sqlengine.ExecStmt(builderCatalog(), b.Stmt()); err == nil {
		t.Error("selecting a dropped column should fail")
	}
}

func TestProjectAfterGroupByNests(t *testing.T) {
	b := NewQueryBuilder("t")
	if err := b.GroupBy([]AggSpec{{Func: "sum", Column: "a", As: "total"}}, []string{"g"}); err != nil {
		t.Fatal(err)
	}
	b.Project([]string{"total"})
	if got := b.Blocks(); got != 2 {
		t.Errorf("project after group should nest: %d blocks (%s)", got, b.SQL())
	}
	out := execBuilder(t, b)
	if out.NumCols() != 1 {
		t.Errorf("columns = %v", out.ColumnNames())
	}
}

func TestAddColumnAfterDistinctNests(t *testing.T) {
	b := NewQueryBuilder("t")
	b.Distinct()
	b.AddColumn("c", mustParse(t, "a + 1"))
	if got := b.Blocks(); got != 2 {
		t.Errorf("add column after distinct should nest: %d (%s)", got, b.SQL())
	}
}

func TestGroupByAfterGroupByNests(t *testing.T) {
	b := NewQueryBuilder("t")
	if err := b.GroupBy([]AggSpec{{Func: "count", Column: "*"}}, []string{"g"}); err != nil {
		t.Fatal(err)
	}
	if err := b.GroupBy([]AggSpec{{Func: "count", Column: "*"}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.Blocks(); got != 2 {
		t.Errorf("double group should nest: %d (%s)", got, b.SQL())
	}
	out := execBuilder(t, b)
	c, _ := out.Column("count_records")
	if c.Value(0).I != 2 { // two groups
		t.Errorf("count of groups = %v", c.Value(0))
	}
}

func TestGroupByBadAggregates(t *testing.T) {
	b := NewQueryBuilder("t")
	if err := b.GroupBy([]AggSpec{{Func: "frobnicate", Column: "a"}}, nil); err == nil {
		t.Error("unknown aggregate should error")
	}
	if err := b.GroupBy([]AggSpec{{Func: "sum", Column: "*"}}, nil); err == nil {
		t.Error("SUM(*) should error")
	}
}

func TestSQLRendering(t *testing.T) {
	b := NewQueryBuilder("t")
	b.Where(mustParse(t, "a > 1"))
	b.Limit(2)
	sql := b.SQL()
	if !strings.Contains(sql, "WHERE (a > 1)") || !strings.Contains(sql, "LIMIT 2") {
		t.Errorf("SQL = %s", sql)
	}
	if strings.Count(sql, "SELECT") != 1 {
		t.Errorf("should be one block: %s", sql)
	}
}

func TestDistinctAfterLimitNests(t *testing.T) {
	b := NewQueryBuilder("t")
	b.Limit(3)
	b.Distinct()
	if got := b.Blocks(); got != 2 {
		t.Errorf("distinct after limit should nest: %d (%s)", got, b.SQL())
	}
}

func mustParse(t *testing.T, src string) expr.Expr {
	t.Helper()
	e, err := sqlengine.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
