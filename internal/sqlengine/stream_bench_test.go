package sqlengine

import (
	"testing"

	"datachat/internal/dataset"
)

// The streaming benchmarks ride the same catalog as the vectorized ones so
// rows/s figures are comparable across execution models.

const benchStreamQuery = "SELECT id, v FROM big WHERE v > 25.0 AND s != 'zeta'"

// BenchmarkStreamFirstChunk measures time-to-first-rows through the morsel
// pipeline — the latency a remote client sees before any output, which must
// stay flat as the table grows (it scans one morsel, not the table).
func BenchmarkStreamFirstChunk(b *testing.B) {
	catalog := NewMapCatalog(benchTables(100_000))
	stmt, err := Parse(benchStreamQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		chunk, err := rs.Next()
		if err != nil {
			b.Fatal(err)
		}
		if chunk == nil || chunk.NumRows() == 0 {
			b.Fatal("empty first chunk")
		}
	}
}

// BenchmarkStreamDrain measures full-stream throughput against the buffered
// reference execution of the identical statement.
func BenchmarkStreamDrain(b *testing.B) {
	const n = 100_000
	catalog := NewMapCatalog(benchTables(n))
	stmt, err := Parse(benchStreamQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rs.Drain(func(*dataset.Table) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecStmtOptions(catalog, stmt, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkStreamGroupBy measures the chunked hash group-by under its memory
// budget, where the pipeline breaker buffers groups rather than input rows.
func BenchmarkStreamGroupBy(b *testing.B) {
	catalog := NewMapCatalog(benchTables(100_000))
	stmt, err := Parse("SELECT k, SUM(v), COUNT(*) FROM big GROUP BY k")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.Drain(nil); err != nil {
			b.Fatal(err)
		}
	}
}
