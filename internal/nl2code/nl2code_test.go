package nl2code

import (
	"strings"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/skills"
	"datachat/internal/spider"
)

var (
	reg     = skills.NewRegistry()
	domains = spider.Domains(1)
)

func domainByName(t *testing.T, name string) *spider.Domain {
	t.Helper()
	for _, d := range domains {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no domain %s", name)
	return nil
}

func libraryFor(t *testing.T) *Library {
	t.Helper()
	var examples []*LibraryExample
	for _, ex := range spider.GenerateLibrary(domains, 99, 8) {
		examples = append(examples, &LibraryExample{
			Question: ex.Question, Program: ex.Gold, Domain: ex.Domain,
		})
	}
	return NewLibrary(examples)
}

func TestMisalignmentSeparatesZones(t *testing.T) {
	sales := domainByName(t, "sales")
	vocab := SchemaVocabulary(sales.Tables)
	low := Misalignment("How many orders have status equal to Successful?", vocab, []string{"status"})
	high := Misalignment("How many orders fall under purchase outcome Successful?", vocab, []string{"status"})
	if low >= MThreshold {
		t.Errorf("low-M question scored %v", low)
	}
	if high <= MThreshold {
		t.Errorf("high-M question scored %v", high)
	}
	if high <= low {
		t.Errorf("high (%v) should exceed low (%v)", high, low)
	}
}

func TestCompositionSeparatesZones(t *testing.T) {
	simple := []skills.Invocation{
		{Skill: "Compute", Inputs: []string{"orders"},
			Args: skills.Args{"aggregates": []string{"avg of price as r"}, "for_each": []string{"region"}}},
	}
	deep := []skills.Invocation{
		{Skill: "JoinDatasets", Inputs: []string{"orders", "customers"}, Args: skills.Args{"on": "a = b"}},
		{Skill: "KeepRows", Inputs: []string{"j"}, Args: skills.Args{"condition": "x = 1"}},
		{Skill: "Compute", Inputs: []string{"f"},
			Args: skills.Args{"aggregates": []string{"sum of price as r"}, "for_each": []string{"segment"}}},
		{Skill: "SortRows", Inputs: []string{"g"}, Args: skills.Args{"columns": []string{"r"}}},
		{Skill: "LimitRows", Inputs: []string{"s"}, Args: skills.Args{"count": 3}},
	}
	cSimple := Composition(simple)
	cDeep := Composition(deep)
	if cSimple >= CThreshold {
		t.Errorf("simple program C = %v", cSimple)
	}
	if cDeep <= CThreshold {
		t.Errorf("deep program C = %v", cDeep)
	}
}

// TestMetricsAgreeWithGeneratorIntent characterizes the full dev split and
// checks the measured (M, C) zones match the generator's intended zones for
// the overwhelming majority — Figure 7's premise.
func TestMetricsAgreeWithGeneratorIntent(t *testing.T) {
	byName := map[string]*spider.Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}
	dev := spider.GenerateDev(domains, 42)
	agree, total := 0, 0
	vocabCache := map[string]map[string]bool{}
	for _, ex := range dev {
		d := byName[ex.Domain]
		vocab, ok := vocabCache[d.Name]
		if !ok {
			vocab = SchemaVocabulary(d.Tables)
			vocabCache[d.Name] = vocab
		}
		m := Misalignment(ex.Question, vocab, NeededColumns(ex.Gold))
		c := Composition(ex.Gold)
		highM, highC := ZoneOf(m, c)
		var measured spider.Zone
		switch {
		case highM && highC:
			measured = spider.HighHigh
		case highM:
			measured = spider.HighLow
		case highC:
			measured = spider.LowHigh
		default:
			measured = spider.LowLow
		}
		total++
		if measured == ex.Zone {
			agree++
		}
	}
	rate := float64(agree) / float64(total)
	if rate < 0.85 {
		t.Errorf("zone agreement = %.3f (%d/%d), want >= 0.85", rate, agree, total)
	}
}

func TestNeededColumns(t *testing.T) {
	program := []skills.Invocation{
		{Skill: "KeepRows", Args: skills.Args{"condition": "status = 'ok' AND price > 3"}},
		{Skill: "Compute", Args: skills.Args{
			"aggregates": []string{"sum of price as total"}, "for_each": []string{"region"}}},
	}
	cols := NeededColumns(program)
	want := map[string]bool{"status": true, "price": true, "region": true}
	if len(cols) != 3 {
		t.Fatalf("needed = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected needed column %s", c)
		}
	}
}

func TestLibraryRetrieval(t *testing.T) {
	lib := libraryFor(t)
	if lib.Len() != 32 {
		t.Fatalf("library size = %d", lib.Len())
	}
	got := lib.Retrieve("What is the average salary for each dept?", 4, SimilarDiverse)
	if len(got) != 4 {
		t.Fatalf("retrieved = %d", len(got))
	}
	if got[0].Similarity <= 0 {
		t.Error("best match should have positive similarity")
	}
	// Diversity: the four picks shouldn't all share one function signature.
	sigs := map[string]bool{}
	for _, s := range got {
		sigs[s.Example.Functions()] = true
	}
	if len(sigs) < 2 {
		t.Errorf("retrieval not diverse: %d signatures", len(sigs))
	}
	// Random mode is deterministic per question.
	r1 := lib.Retrieve("some question", 3, Random)
	r2 := lib.Retrieve("some question", 3, Random)
	for i := range r1 {
		if r1[i].Example != r2[i].Example {
			t.Error("random retrieval should be deterministic per question")
		}
	}
	if lib.Retrieve("q", 0, SimilarOnly) != nil {
		t.Error("k=0 should return nothing")
	}
}

func TestComposerBudgetTradeoff(t *testing.T) {
	sales := domainByName(t, "sales")
	lib := libraryFor(t)
	c := NewComposer(reg)
	simple := c.Compose("How many orders have status equal to Successful?", sales.Tables, sales.Layer, lib, 10)
	complexP := c.Compose("Across the joined customers, which 3 segment have the highest total amount charged, restricted to successful purchases?",
		sales.Tables, sales.Layer, lib, 60)
	if len(simple.Examples) == 0 {
		t.Error("simple prompt should carry examples")
	}
	if len(complexP.Examples) > 2 {
		t.Errorf("complex prompt kept %d examples; §4.4 trades them for semantic context", len(complexP.Examples))
	}
	if len(complexP.Hints) == 0 {
		t.Error("complex prompt should carry semantic hints")
	}
	text := complexP.Text(reg)
	for _, section := range []string{"## DataChat Python API", "## Schema", "## Request"} {
		if !strings.Contains(text, section) {
			t.Errorf("prompt text missing %s", section)
		}
	}
	// Ablation: semantic disabled.
	c.DisableSemantic = true
	noSem := c.Compose("successful purchases", sales.Tables, sales.Layer, lib, 10)
	if len(noSem.Hints) != 0 {
		t.Error("DisableSemantic should drop hints")
	}
}

func TestGeneratorOnEasyQuestion(t *testing.T) {
	sales := domainByName(t, "sales")
	lib := libraryFor(t)
	sys := NewSystem(reg, lib)
	sys.Generator.SlipBase = 0 // isolate resolution from noise
	sys.Generator.PlanPenalty = 0
	sys.Generator.TypoRate = 0
	resp, err := sys.Generate(Request{
		Question: "What is the average price for each region?",
		Tables:   sales.Tables,
		Layer:    sales.Layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Program) != 1 || resp.Program[0].Skill != "Compute" {
		t.Fatalf("program = %+v", resp.Program)
	}
	aggs, _ := resp.Program[0].Args.AggSpecs("aggregates")
	if aggs[0].Func != "avg" || aggs[0].Column != "price" {
		t.Errorf("agg = %+v", aggs[0])
	}
	keys := resp.Program[0].Args.StringListOr("for_each")
	if len(keys) != 1 || keys[0] != "region" {
		t.Errorf("group = %v", keys)
	}
	if len(resp.GEL) == 0 || !strings.Contains(resp.GEL[0], "Compute the avg of price") {
		t.Errorf("GEL = %v", resp.GEL)
	}
}

func TestGeneratorUsesSemanticHintForPhrase(t *testing.T) {
	sales := domainByName(t, "sales")
	lib := libraryFor(t)
	sys := NewSystem(reg, lib)
	sys.Generator.SlipBase = 0
	sys.Generator.PlanPenalty = 0
	sys.Generator.TypoRate = 0
	resp, err := sys.Generate(Request{
		Question: "How many successful purchases were there?",
		Tables:   sales.Tables,
		Layer:    sales.Layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Program) < 2 || resp.Program[0].Skill != "KeepRows" {
		t.Fatalf("program = %+v", resp.Program)
	}
	cond := resp.Program[0].Args.StringOr("condition", "")
	if !strings.Contains(cond, "status = 'Successful'") {
		t.Errorf("condition = %s (semantic hint not applied)", cond)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	sales := domainByName(t, "sales")
	lib := libraryFor(t)
	sys := NewSystem(reg, lib)
	req := Request{Question: "Which 3 region have the highest total price where status is Refunded?",
		Tables: sales.Tables, Layer: sales.Layer}
	a, err := sys.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Python != b.Python {
		t.Errorf("generation not deterministic:\n%s\nvs\n%s", a.Python, b.Python)
	}
}

func TestCheckerRepairsTypo(t *testing.T) {
	sales := domainByName(t, "sales")
	checker := NewChecker(reg)
	code := `step1 = orders.compute(aggregates = [Sum("prices", as_name="total")], for_each = ["region"])`
	program, report, err := checker.Check(code, sales.Tables)
	if err != nil {
		t.Fatalf("checker should repair the typo: %v", err)
	}
	if len(report.Repairs) != 1 || !strings.Contains(report.Repairs[0], "prices → price") {
		t.Errorf("repairs = %v", report.Repairs)
	}
	aggs, _ := program[0].Args.AggSpecs("aggregates")
	if aggs[0].Column != "price" {
		t.Errorf("column = %s", aggs[0].Column)
	}
}

func TestCheckerRemovesDeadCode(t *testing.T) {
	sales := domainByName(t, "sales")
	checker := NewChecker(reg)
	code := `unused = orders.keep_rows(condition = "price > 10")
answer = orders.compute(aggregates = [Count("order_id", as_name="n")])`
	program, report, err := checker.Check(code, sales.Tables)
	if err != nil {
		t.Fatal(err)
	}
	if report.Removed != 1 || len(program) != 1 {
		t.Errorf("removed = %d, program = %d statements", report.Removed, len(program))
	}
}

func TestCheckerRejects(t *testing.T) {
	sales := domainByName(t, "sales")
	checker := NewChecker(reg)
	cases := []string{
		`orders.compute(aggregates = [Sum("zzzzzz")])`,      // unrepairable column
		`orders.keep_rows(condition = "price >")`,           // bad condition
		`mystery.compute(aggregates = [Count("order_id")])`, // undefined dataset
		`orders.limit_rows(count = -5)`,                     // type check
		`x = orders.frobnicate(y = 1)`,                      // unknown method
		`this is not python at all`,                         // syntax
		`orders.compute(for_each = ["region"])`,             // missing required param
	}
	for _, code := range cases {
		if _, _, err := checker.Check(code, sales.Tables); err == nil {
			t.Errorf("Check(%q) should fail", code)
		}
	}
}

func TestExecutionAccuracyMatchesAndRejects(t *testing.T) {
	sales := domainByName(t, "sales")
	gold := []skills.Invocation{
		{Skill: "Compute", Inputs: []string{"orders"}, Output: "a",
			Args: skills.Args{"aggregates": []string{"count of records as n"}, "for_each": []string{"region"}}},
	}
	same := []skills.Invocation{
		{Skill: "Compute", Inputs: []string{"orders"}, Output: "b",
			Args: skills.Args{"aggregates": []string{"count of records as total"}, "for_each": []string{"region"}}},
	}
	different := []skills.Invocation{
		{Skill: "Compute", Inputs: []string{"orders"}, Output: "c",
			Args: skills.Args{"aggregates": []string{"count of records as n"}, "for_each": []string{"status"}}},
	}
	broken := []skills.Invocation{
		{Skill: "KeepRows", Inputs: []string{"orders"}, Output: "d",
			Args: skills.Args{"condition": "nope > 1"}},
	}
	if ea, err := ExecutionAccuracy(reg, sales.Tables, gold, same); err != nil || ea != 1 {
		t.Errorf("alias-differing equivalent program: ea=%d err=%v", ea, err)
	}
	if ea, _ := ExecutionAccuracy(reg, sales.Tables, gold, different); ea != 0 {
		t.Error("different grouping should score 0")
	}
	if ea, _ := ExecutionAccuracy(reg, sales.Tables, gold, broken); ea != 0 {
		t.Error("crashing program should score 0")
	}
	if _, err := ExecutionAccuracy(reg, sales.Tables, broken, gold); err == nil {
		t.Error("broken ground truth should be reported")
	}
}

// TestEndToEndAccuracyShape runs the full pipeline over a balanced sample
// and checks the Table 2 shape: easy zones beat (high, high), and spider
// domains beat custom domains.
func TestEndToEndAccuracyShape(t *testing.T) {
	lib := libraryFor(t)
	sys := NewSystem(reg, lib)
	byName := map[string]*spider.Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}
	evalSet := func(examples []*spider.Example, perZone int) map[spider.Zone][2]int {
		out := map[spider.Zone][2]int{}
		taken := map[spider.Zone]int{}
		for _, ex := range examples {
			if taken[ex.Zone] >= perZone {
				continue
			}
			taken[ex.Zone]++
			d := byName[ex.Domain]
			resp, err := sys.Generate(Request{Question: ex.Question, Tables: d.Tables, Layer: d.Layer})
			ea := 0
			if err == nil {
				var evalErr error
				ea, evalErr = ExecutionAccuracy(reg, d.Tables, ex.Gold, resp.Program)
				if evalErr != nil {
					t.Fatalf("%s: %v", ex.ID, evalErr)
				}
			}
			cur := out[ex.Zone]
			cur[0] += ea
			cur[1]++
			out[ex.Zone] = cur
		}
		return out
	}
	dev := evalSet(spider.GenerateDev(domains, 42), 15)
	custom := evalSet(spider.GenerateCustom(domains, 43), 10)

	rate := func(m map[spider.Zone][2]int, z spider.Zone) float64 {
		c := m[z]
		if c[1] == 0 {
			return 0
		}
		return float64(c[0]) / float64(c[1])
	}
	devLL, devHH := rate(dev, spider.LowLow), rate(dev, spider.HighHigh)
	customHH := rate(custom, spider.HighHigh)
	if devLL < 0.6 {
		t.Errorf("dev (low,low) accuracy = %.2f, too low", devLL)
	}
	if devHH >= devLL {
		t.Errorf("dev (high,high) %.2f should trail (low,low) %.2f", devHH, devLL)
	}
	if customHH >= devHH {
		t.Errorf("custom (high,high) %.2f should trail dev (high,high) %.2f", customHH, devHH)
	}
	if customHH > 0.5 {
		t.Errorf("custom (high,high) = %.2f; the paper reports a collapse (0.25)", customHH)
	}
}

func TestSystemErrors(t *testing.T) {
	sales := domainByName(t, "sales")
	sys := NewSystem(reg, libraryFor(t))
	if _, err := sys.Generate(Request{Question: "", Tables: sales.Tables}); err == nil {
		t.Error("empty question should fail")
	}
	if _, err := sys.Generate(Request{Question: "count things", Tables: nil}); err == nil {
		t.Error("no tables should fail")
	}
}

func TestSchemaVocabularyIncludesValues(t *testing.T) {
	tbl := dataset.MustNewTable("t",
		dataset.StringColumn("status", []string{"Successful", "Failed"}, nil),
		dataset.FloatColumn("price", []float64{1, 2}, nil),
	)
	vocab := SchemaVocabulary(map[string]*dataset.Table{"t": tbl})
	for _, want := range []string{"status", "price", "successful", "failed", "t"} {
		if !vocab[want] {
			t.Errorf("vocab missing %q", want)
		}
	}
}

// TestMultiTurnDecomposition exercises the §4.7 closing remark: a complex
// question decomposes into easier sequential questions, with each turn's
// artifact persisted and available to the next turn.
func TestMultiTurnDecomposition(t *testing.T) {
	sales := domainByName(t, "sales")
	lib := libraryFor(t)
	sys := NewSystem(reg, lib)
	sys.Generator.SlipBase = 0
	sys.Generator.PlanPenalty = 0
	sys.Generator.ProgramFailRate = 0
	sys.Generator.TypoRate = 0

	// Turn 1: narrow to successful purchases.
	turn1, err := sys.Generate(Request{
		Question: "Keep the orders where status is Successful",
		Tables:   sales.Tables,
		Layer:    sales.Layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	derived, err := Execute(reg, sales.Tables, turn1.Program)
	if err != nil {
		t.Fatal(err)
	}
	if derived.NumRows() == 0 {
		t.Fatal("turn 1 produced no rows")
	}
	// The artifact persists into the next turn's table universe.
	tables := map[string]*dataset.Table{"successful_orders": derived.WithName("successful_orders")}

	// Turn 2: aggregate over the turn-1 artifact.
	turn2, err := sys.Generate(Request{
		Question: "What is the average price for each region?",
		Tables:   tables,
		Layer:    sales.Layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	result, err := Execute(reg, tables, turn2.Program)
	if err != nil {
		t.Fatal(err)
	}
	if result.NumRows() == 0 || result.NumCols() != 2 {
		t.Errorf("turn 2 result shape = %d×%d", result.NumRows(), result.NumCols())
	}
	// The two-turn result equals the single-shot gold program.
	gold := []skills.Invocation{
		{Skill: "KeepRows", Inputs: []string{"orders"}, Output: "f",
			Args: skills.Args{"condition": "status = 'Successful'"}},
		{Skill: "Compute", Inputs: []string{"f"}, Output: "a",
			Args: skills.Args{"aggregates": []string{"avg of price as result"}, "for_each": []string{"region"}}},
	}
	goldResult, err := Execute(reg, sales.Tables, gold)
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsMatch(goldResult, result) {
		t.Errorf("multi-turn result differs from single-shot:\n%s\nvs\n%s", goldResult, result)
	}
}
