// Package conformance implements the declarative fixture-driven test
// corpus of the ROADMAP's "Recipe/GEL conformance harness" item: each
// `.case` file carries inline CSV fixtures, a pipeline body written in any
// front-end dialect (GEL, the Python API, a phrase sentence, or raw recipe
// steps), an expected result, and optional EXPLAIN-shape assertions. A
// runner executes every case through all five execution routes — GEL,
// pyapi, phrase, recipe replay, and over the wire against an in-process
// datachatd — and asserts cell-identical results, with a matrix mode
// (streamed vs buffered at several worker counts, with a tiny memory
// budget to force spill) and a dry-run mode that type-checks and plans
// without executing.
//
// The case format is a line-oriented plain-text file (no YAML dependency):
//
//	# comment
//	case: filter-int-ge
//	tags: filter int
//	fixture people:
//	  id,age,name
//	  1,34,ann
//	gel:
//	  Use the dataset people
//	  Keep the rows where age >= 30
//	expect:
//	  id,age,name
//	  1,34,ann
//
// Top-level sections start at column 0 with `key:` or `key operand:`;
// indented lines (two spaces) form the section's block. Exactly one body
// section (`gel:`, `pyapi:`, `recipe:`, `phrase <dataset>:`) is allowed.
package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"datachat/internal/recipe"
)

// Fixture is one inline table: CSV text registered as both a session
// dataset and a loadable file under Name.
type Fixture struct {
	Name string
	CSV  string
}

// DBFixture is one inline cloud-database table (for LoadTable cases):
// the table lands in a cloud.Database named DB.
type DBFixture struct {
	DB    string
	Table string
	CSV   string
}

// ExplainAssert is one dry-run plan-shape assertion.
type ExplainAssert struct {
	// Kind is "tasks", "pass", or "pushdown".
	Kind string
	// Op and N apply to "tasks" ("<=", ">=", "="; N is the bound).
	Op string
	N  int
	// Name is the pass name for "pass" (Want true = fired) or the marker
	// substring for "pushdown".
	Name string
	Want bool
}

// Case is one parsed conformance case.
type Case struct {
	// Name identifies the case (unique across the corpus).
	Name string
	// Path is the source file (set by LoadDir).
	Path string
	// Tags are free-form labels ("filter", "join", "nulls", ...).
	Tags []string
	// Kind selects extra harness behavior: "" (standard), "lock" (assert
	// §2.4 contention semantics around the pipeline), "cache" (assert
	// replay hits the sub-DAG cache), "degraded" (the case's cloud scans
	// fail permanently and must degrade, annotated).
	Kind string
	// Unordered compares the expected table as a multiset of rows.
	Unordered bool
	// Fixtures are the session datasets, in declaration order.
	Fixtures []Fixture
	// DBFixtures are cloud-database tables, in declaration order.
	DBFixtures []DBFixture
	// Dialect is the body's front end: "gel", "pyapi", "recipe", "phrase".
	Dialect string
	// PhraseDataset is the target dataset of a phrase body.
	PhraseDataset string
	// Body is the raw body text.
	Body string
	// Steps is the canonical lowering of the body (filled by Lower).
	Steps []recipe.Step
	// Expect is the expected result table as CSV ("" when the case expects
	// charts, a message, or an error instead).
	Expect string
	// ExpectMessage asserts the result message verbatim ("" = unchecked).
	ExpectMessage string
	// ExpectCharts asserts the number of charts built (-1 = unchecked).
	ExpectCharts int
	// ExpectError asserts execution fails with this substring on every route.
	ExpectError string
	// ExpectDegraded asserts the result is annotated as degraded.
	ExpectDegraded bool
	// ExpectDegradedNote asserts the degraded note contains this substring
	// on every route ("" = unchecked; requires ExpectDegraded).
	ExpectDegradedNote string
	// BudgetBytes caps the estimated cloud scan bytes per request (the §3
	// cost-budget knob); past it the planner substitutes block samples and
	// the result must be flagged degraded. 0 = unlimited.
	BudgetBytes int64
	// DryRunError asserts the dry-run type checker rejects the case with
	// this substring (such cases are never executed).
	DryRunError string
	// Explain are dry-run plan-shape assertions.
	Explain []ExplainAssert
}

// HasExpectation reports whether the case asserts anything beyond
// cross-route agreement.
func (c *Case) HasExpectation() bool {
	return c.Expect != "" || c.ExpectMessage != "" || c.ExpectCharts >= 0 ||
		c.ExpectError != "" || c.DryRunError != "" || len(c.Explain) > 0 || c.ExpectDegraded ||
		c.ExpectDegradedNote != ""
}

// ParseCase parses one case file.
func ParseCase(src string) (*Case, error) {
	c := &Case{ExpectCharts: -1}
	lines := strings.Split(src, "\n")
	i := 0
	nextSection := func() (key, operand, inline string, ok bool) {
		for i < len(lines) {
			line := lines[i]
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				i++
				continue
			}
			if strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t") {
				return "", "", "", false // stray indented line; caller reports
			}
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				return "", "", "", false
			}
			head := strings.Fields(line[:colon])
			if len(head) == 0 || len(head) > 2 {
				return "", "", "", false
			}
			key = head[0]
			if len(head) == 2 {
				operand = head[1]
			}
			inline = strings.TrimSpace(line[colon+1:])
			i++
			return key, operand, inline, true
		}
		return "", "", "", false
	}
	block := func() string {
		var b []string
		for i < len(lines) {
			line := lines[i]
			if strings.TrimSpace(line) == "" {
				// Blank lines inside a block are kept only if more indented
				// content follows; trailing blanks are dropped below.
				b = append(b, "")
				i++
				continue
			}
			if !strings.HasPrefix(line, "  ") && !strings.HasPrefix(line, "\t") {
				break
			}
			b = append(b, strings.TrimPrefix(strings.TrimPrefix(line, "  "), "\t"))
			i++
		}
		for len(b) > 0 && b[len(b)-1] == "" {
			b = b[:len(b)-1]
		}
		return strings.Join(b, "\n")
	}

	setBody := func(dialect, body string) error {
		if c.Dialect != "" {
			return fmt.Errorf("conformance: case has both a %q and a %q body", c.Dialect, dialect)
		}
		if strings.TrimSpace(body) == "" {
			return fmt.Errorf("conformance: empty %q body", dialect)
		}
		c.Dialect = dialect
		c.Body = body
		return nil
	}

	for {
		key, operand, inline, ok := nextSection()
		if !ok {
			if i < len(lines) && strings.TrimSpace(strings.Join(lines[i:], "")) != "" {
				return nil, fmt.Errorf("conformance: malformed line %d: %q", i+1, lines[i])
			}
			break
		}
		switch key {
		case "case":
			c.Name = inline
		case "tags":
			c.Tags = strings.Fields(inline)
		case "kind":
			switch inline {
			case "lock", "cache", "degraded":
				c.Kind = inline
			default:
				return nil, fmt.Errorf("conformance: unknown kind %q", inline)
			}
		case "unordered":
			c.Unordered = inline == "true"
		case "fixture":
			if operand == "" {
				return nil, fmt.Errorf("conformance: fixture needs a name")
			}
			csv := block()
			if dot := strings.IndexByte(operand, '.'); dot > 0 {
				c.DBFixtures = append(c.DBFixtures, DBFixture{DB: operand[:dot], Table: operand[dot+1:], CSV: csv})
			} else {
				c.Fixtures = append(c.Fixtures, Fixture{Name: operand, CSV: csv})
			}
		case "gel", "pyapi", "recipe":
			if err := setBody(key, block()); err != nil {
				return nil, err
			}
		case "phrase":
			if operand == "" {
				return nil, fmt.Errorf("conformance: phrase body needs a dataset operand")
			}
			c.PhraseDataset = operand
			body := inline
			if body == "" {
				body = block()
			}
			if err := setBody("phrase", body); err != nil {
				return nil, err
			}
		case "expect":
			c.Expect = block()
		case "expect-message":
			if inline != "" {
				c.ExpectMessage = inline
			} else {
				c.ExpectMessage = block()
			}
		case "expect-charts":
			n, err := strconv.Atoi(inline)
			if err != nil {
				return nil, fmt.Errorf("conformance: expect-charts: %w", err)
			}
			c.ExpectCharts = n
		case "expect-degraded":
			c.ExpectDegraded = inline == "true"
		case "expect-degraded-note":
			if inline != "" {
				c.ExpectDegradedNote = inline
			} else {
				c.ExpectDegradedNote = block()
			}
		case "budget-bytes":
			n, err := strconv.ParseInt(inline, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("conformance: budget-bytes: %w", err)
			}
			c.BudgetBytes = n
		case "error":
			c.ExpectError = inline
		case "dryrun-error":
			c.DryRunError = inline
		case "explain":
			asserts, err := parseExplainAsserts(block())
			if err != nil {
				return nil, err
			}
			c.Explain = asserts
		default:
			return nil, fmt.Errorf("conformance: unknown section %q", key)
		}
	}
	if c.Name == "" {
		return nil, fmt.Errorf("conformance: case has no name")
	}
	if c.Dialect == "" {
		return nil, fmt.Errorf("conformance: case %q has no body", c.Name)
	}
	return c, nil
}

// parseExplainAsserts parses the explain: block, one assertion per line:
//
//	tasks <= 3
//	pass pushdown fired
//	pass consolidate not-fired
//	pushdown condition
func parseExplainAsserts(body string) ([]ExplainAssert, error) {
	var out []ExplainAssert
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "tasks":
			if len(fields) != 3 {
				return nil, fmt.Errorf("conformance: explain tasks wants 'tasks <op> N', got %q", line)
			}
			op := fields[1]
			if op != "<=" && op != ">=" && op != "=" {
				return nil, fmt.Errorf("conformance: explain tasks: unknown op %q", op)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("conformance: explain tasks: %w", err)
			}
			out = append(out, ExplainAssert{Kind: "tasks", Op: op, N: n})
		case "pass":
			if len(fields) != 3 || (fields[2] != "fired" && fields[2] != "not-fired") {
				return nil, fmt.Errorf("conformance: explain pass wants 'pass <name> fired|not-fired', got %q", line)
			}
			out = append(out, ExplainAssert{Kind: "pass", Name: fields[1], Want: fields[2] == "fired"})
		case "pushdown":
			if len(fields) != 2 {
				return nil, fmt.Errorf("conformance: explain pushdown wants 'pushdown <marker>', got %q", line)
			}
			out = append(out, ExplainAssert{Kind: "pushdown", Name: fields[1]})
		default:
			return nil, fmt.Errorf("conformance: unknown explain assertion %q", line)
		}
	}
	return out, nil
}

// Format serializes a case back to the file format (the generator and the
// -update golden refresh write through here).
func (c *Case) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "case: %s\n", c.Name)
	if len(c.Tags) > 0 {
		fmt.Fprintf(&b, "tags: %s\n", strings.Join(c.Tags, " "))
	}
	if c.Kind != "" {
		fmt.Fprintf(&b, "kind: %s\n", c.Kind)
	}
	if c.Unordered {
		b.WriteString("unordered: true\n")
	}
	if c.BudgetBytes != 0 {
		fmt.Fprintf(&b, "budget-bytes: %d\n", c.BudgetBytes)
	}
	writeBlock := func(header, body string) {
		b.WriteString(header + ":\n")
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	for _, f := range c.Fixtures {
		writeBlock("fixture "+f.Name, f.CSV)
	}
	for _, f := range c.DBFixtures {
		writeBlock("fixture "+f.DB+"."+f.Table, f.CSV)
	}
	switch c.Dialect {
	case "phrase":
		if strings.Contains(strings.TrimRight(c.Body, "\n"), "\n") {
			writeBlock("phrase "+c.PhraseDataset, c.Body)
		} else {
			fmt.Fprintf(&b, "phrase %s: %s\n", c.PhraseDataset, c.Body)
		}
	default:
		writeBlock(c.Dialect, c.Body)
	}
	if c.Expect != "" {
		writeBlock("expect", c.Expect)
	}
	if c.ExpectMessage != "" {
		if strings.Contains(c.ExpectMessage, "\n") {
			writeBlock("expect-message", c.ExpectMessage)
		} else {
			fmt.Fprintf(&b, "expect-message: %s\n", c.ExpectMessage)
		}
	}
	if c.ExpectCharts >= 0 {
		fmt.Fprintf(&b, "expect-charts: %d\n", c.ExpectCharts)
	}
	if c.ExpectDegraded {
		b.WriteString("expect-degraded: true\n")
	}
	if c.ExpectDegradedNote != "" {
		fmt.Fprintf(&b, "expect-degraded-note: %s\n", c.ExpectDegradedNote)
	}
	if c.ExpectError != "" {
		fmt.Fprintf(&b, "error: %s\n", c.ExpectError)
	}
	if c.DryRunError != "" {
		fmt.Fprintf(&b, "dryrun-error: %s\n", c.DryRunError)
	}
	if len(c.Explain) > 0 {
		var lines []string
		for _, a := range c.Explain {
			switch a.Kind {
			case "tasks":
				lines = append(lines, fmt.Sprintf("tasks %s %d", a.Op, a.N))
			case "pass":
				state := "fired"
				if !a.Want {
					state = "not-fired"
				}
				lines = append(lines, fmt.Sprintf("pass %s %s", a.Name, state))
			case "pushdown":
				lines = append(lines, "pushdown "+a.Name)
			}
		}
		writeBlock("explain", strings.Join(lines, "\n"))
	}
	return b.String()
}

// LoadDir parses every .case file under dir (sorted by name) and lowers
// each body to canonical steps. Duplicate case names are an error.
func LoadDir(dir string) ([]*Case, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".case") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	seen := map[string]string{}
	var cases []*Case
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		c, err := ParseCase(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		c.Path = path
		if prev, dup := seen[c.Name]; dup {
			return nil, fmt.Errorf("%s: case name %q already used by %s", path, c.Name, prev)
		}
		seen[c.Name] = path
		if err := Lower(c); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		cases = append(cases, c)
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("conformance: no .case files under %s", dir)
	}
	return cases, nil
}
