package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"datachat/internal/client"
	"datachat/internal/core"
	"datachat/internal/server"
	"datachat/internal/wire"
)

// benchDeployment boots a server with a session holding a loaded table and
// returns a client plus the base dataset name.
func benchDeployment(b *testing.B, rows int) (*client.Client, string) {
	b.Helper()
	var csv strings.Builder
	csv.WriteString("id,grp,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%d,g%d,%d\n", i, i%7, i%100)
	}
	srv := server.New(core.New(), server.Config{MaxInFlight: 8, MaxQueue: 64})
	hs := httptest.NewServer(srv)
	b.Cleanup(hs.Close)
	c := client.New(hs.URL)
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "bench.csv", csv.String()); err != nil {
		b.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "bench", "ann"); err != nil {
		b.Fatal(err)
	}
	resp, err := c.RunGEL(ctx, "bench", "ann", "Load data from the file bench.csv", "")
	if err != nil {
		b.Fatal(err)
	}
	return c, fmt.Sprintf("node%d", resp.Nodes[len(resp.Nodes)-1])
}

// BenchmarkServerRunGEL measures one GEL transform round-trip through the
// full stack: HTTP, admission, the session lock, the DAG executor, and the
// wire encoding of the result page.
func BenchmarkServerRunGEL(b *testing.B) {
	c, base := benchDeployment(b, 1000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunGEL(ctx, "bench", "ann", "Keep the rows where v > 50", base); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerRowStream measures streaming a 10k-row table through the
// NDJSON chunk protocol and reassembling it client-side.
func BenchmarkServerRowStream(b *testing.B) {
	c, base := benchDeployment(b, 10_000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := c.StreamTable(ctx, "bench", base, 1000)
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 10_000 {
			b.Fatalf("rows = %d", t.NumRows())
		}
	}
}

// BenchmarkServerRunStream measures a GEL transform whose result streams
// back chunk-by-chunk through the morsel pipeline — the full run/stream
// round-trip including session locking and NDJSON reassembly.
func BenchmarkServerRunStream(b *testing.B) {
	c, base := benchDeployment(b, 10_000)
	ctx := context.Background()
	req := wire.RunRequest{User: "ann", GEL: "Keep the rows where v > 50", Current: base, MaxRows: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := c.RunStreamTable(ctx, "bench", req)
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() == 0 {
			b.Fatal("empty streamed result")
		}
	}
}

// BenchmarkServerRowPages measures the same table fetched through offset
// pagination instead of the stream.
func BenchmarkServerRowPages(b *testing.B) {
	c, base := benchDeployment(b, 10_000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := c.FetchTable(ctx, "bench", base, 1000)
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 10_000 {
			b.Fatalf("rows = %d", t.NumRows())
		}
	}
}

// BenchmarkServerConcurrentSessions measures aggregate throughput with one
// session per worker (no lock contention): the admission-control path under
// parallel load.
func BenchmarkServerConcurrentSessions(b *testing.B) {
	var csv strings.Builder
	csv.WriteString("id,grp,v\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&csv, "%d,g%d,%d\n", i, i%7, i%100)
	}
	srv := server.New(core.New(), server.Config{MaxInFlight: 8, MaxQueue: 64})
	hs := httptest.NewServer(srv)
	b.Cleanup(hs.Close)
	c := client.New(hs.URL)
	ctx := context.Background()
	if err := c.RegisterFile(ctx, "bench.csv", csv.String()); err != nil {
		b.Fatal(err)
	}
	// Pre-create a pool of sessions so each parallel worker owns one and the
	// timed loop is pure request traffic.
	const pool = 16
	bases := make([]string, pool)
	for i := 0; i < pool; i++ {
		name := fmt.Sprintf("bench-%d", i)
		if _, err := c.CreateSession(ctx, name, "ann"); err != nil {
			b.Fatal(err)
		}
		resp, err := c.RunGEL(ctx, name, "ann", "Load data from the file bench.csv", "")
		if err != nil {
			b.Fatal(err)
		}
		bases[i] = fmt.Sprintf("node%d", resp.Nodes[len(resp.Nodes)-1])
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)-1) % pool
		name := fmt.Sprintf("bench-%d", i)
		for pb.Next() {
			if _, err := c.RunGEL(ctx, name, "ann", "Keep the rows where v > 50", bases[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
