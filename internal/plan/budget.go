package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"datachat/internal/skills"
)

// Budgeted sample substitution (§3). When the plan's estimated cloud scan
// bytes exceed the per-request budget, the pass rewrites the most expensive
// LoadTable scans into SampleTable block samples, choosing each sample rate
// so the estimated total lands back inside the budget. The paper's honesty
// rule is load-bearing: every substituted scan is marked on the node, the
// executor wraps its result as Degraded with the substitution note, and a
// degraded result is never cached — an approximate answer is always
// labeled, never silently reused.
//
// Substitution preserves any pushdown arguments already on the scan
// (SampleTable accepts the same optional condition/columns), and re-runs
// the strict fingerprint pass afterwards: SampleTable is volatile, so the
// substituted node and its descendants automatically lose their cache keys.

// minSampleRate floors substitution so a budgeted scan still reads at least
// a few blocks; matches the degrade ladder's coarsest sample.
const minSampleRate = 0.05

type sampleSubstitutePass struct{}

// SampleSubstitutePass returns the budget-driven sample-substitution pass.
// It no-ops without a positive Env.CostBudgetBytes and TableStats hook.
func SampleSubstitutePass() Pass { return sampleSubstitutePass{} }

func (sampleSubstitutePass) Name() string { return "sample-substitute" }

func (sampleSubstitutePass) Run(p *Plan, env *Env, t *PassTrace) error {
	budget := env.CostBudgetBytes
	if budget <= 0 || env.TableStats == nil || !env.Costed() {
		return nil
	}
	// Costs are recomputed after every pass, so node annotations reflect
	// the pipeline as of the previous pass; compute the current scan total
	// and collect substitutable scans (descending cost, ID-stable).
	var total int64
	var scans []*Node
	for _, n := range p.Nodes {
		if n.Cached || n.Cost == nil {
			continue
		}
		total = satAdd64(total, n.Cost.ScanBytes)
		// ScanBytes is only set when catalog stats were found, so it is the
		// substitutability signal; Source may have been overridden to
		// "observed" by stats feedback from an earlier run of the same scan.
		if strings.EqualFold(n.Skill, "LoadTable") && n.Cost.ScanBytes > 0 {
			scans = append(scans, n)
		}
	}
	if total <= budget || len(scans) == 0 {
		return nil
	}
	sort.SliceStable(scans, func(i, j int) bool {
		if scans[i].Cost.ScanBytes != scans[j].Cost.ScanBytes {
			return scans[i].Cost.ScanBytes > scans[j].Cost.ScanBytes
		}
		return scans[i].ID < scans[j].ID
	})
	for _, n := range scans {
		if total <= budget {
			break
		}
		est := n.Cost.ScanBytes
		others := total - est
		rate := minSampleRate
		if remain := budget - others; remain > 0 {
			rate = float64(remain) / float64(est)
		}
		rate = math.Round(rate*100) / 100
		if rate < minSampleRate {
			rate = minSampleRate
		}
		if rate >= 1 {
			continue
		}
		db := n.Args.StringOr("database", "")
		table := n.Args.StringOr("table", "")
		args := make(skills.Args, len(n.Args)+1)
		for k, v := range n.Args {
			args[k] = v
		}
		args["rate"] = rate
		n.Skill = "SampleTable"
		n.Args = args
		n.Substituted = true
		n.SubstituteNote = fmt.Sprintf(
			"scan of %s.%s (~%d bytes) exceeds the %d-byte request budget; substituted a %d%% block sample",
			db, table, est, budget, int(math.Round(rate*100)))
		t.Detail = append(t.Detail, n.SubstituteNote)
		t.Substituted++
		total = others + int64(float64(est)*rate)
	}
	if t.Substituted == 0 {
		return nil
	}
	t.Fired = true
	// SampleTable is volatile: refingerprinting clears the substituted
	// subtree's cache keys, so a degraded result can never be cached.
	return (fingerprintPass{}).Run(p, env, &PassTrace{})
}
