// Package artifact implements §2.3's artifacts: persisted results (charts,
// tables, models, snapshots, explanations) that always carry the recipe
// that produced them, plus the sharing machinery of §2.4 — per-user access
// levels and secret-link sharing for recipients outside the platform.
package artifact

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/recipe"
	"datachat/internal/viz"
)

// Type classifies an artifact.
type Type string

// Artifact types.
const (
	TypeTable       Type = "table"
	TypeChart       Type = "chart"
	TypeModel       Type = "model"
	TypeSnapshot    Type = "snapshot"
	TypeExplanation Type = "explanation"
)

// Access is a sharing permission level.
type Access int

// Access levels, ordered by privilege.
const (
	NoAccess Access = iota
	ViewAccess
	EditAccess
	OwnerAccess
)

// String names the access level.
func (a Access) String() string {
	switch a {
	case ViewAccess:
		return "view"
	case EditAccess:
		return "edit"
	case OwnerAccess:
		return "owner"
	default:
		return "none"
	}
}

// Artifact is one persisted result and its provenance.
type Artifact struct {
	// Name is the unique artifact name within the store.
	Name string
	// Type classifies the payload.
	Type Type
	// Owner is the creating user.
	Owner string
	// CreatedAt and RefreshedAt track lifecycle times.
	CreatedAt, RefreshedAt time.Time
	// Recipe reproduces the artifact (§2.3: every artifact has one).
	Recipe *recipe.Recipe
	// Table, Chart, ModelName, Explanation hold the typed payload.
	Table       *dataset.Table
	Chart       *viz.Chart
	ModelName   string
	Explanation string
	// Degraded marks an artifact whose payload came from a fallback source
	// (stale snapshot, block sample) after the primary failed; DegradedNote
	// records which one, preserving §2.3 transparency through failures.
	Degraded     bool
	DegradedNote string
}

// Store holds artifacts with per-user permissions and secret links.
type Store struct {
	mu       sync.RWMutex
	byName   map[string]*Artifact
	perms    map[string]map[string]Access // artifact -> user -> access
	secrets  map[string]string            // secret -> artifact name
	clock    func() time.Time
	randRead func([]byte) (int, error)
}

// NewStore returns an empty artifact store.
func NewStore() *Store {
	return &Store{
		byName:   map[string]*Artifact{},
		perms:    map[string]map[string]Access{},
		secrets:  map[string]string{},
		clock:    time.Now,
		randRead: rand.Read,
	}
}

// SetClock overrides the time source for deterministic tests.
func (s *Store) SetClock(clock func() time.Time) { s.clock = clock }

// Save persists an artifact owned by its Owner. Names are unique.
func (s *Store) Save(a *Artifact) error {
	if a.Name == "" {
		return fmt.Errorf("artifact: name must not be empty")
	}
	if a.Owner == "" {
		return fmt.Errorf("artifact: owner must not be empty")
	}
	if a.Recipe == nil {
		return fmt.Errorf("artifact: %q must carry a recipe (§2.3)", a.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(a.Name)
	if _, dup := s.byName[key]; dup {
		return fmt.Errorf("artifact: %q already exists", a.Name)
	}
	a.CreatedAt = s.clock()
	a.RefreshedAt = a.CreatedAt
	s.byName[key] = a
	s.perms[key] = map[string]Access{a.Owner: OwnerAccess}
	return nil
}

// AccessOf returns user's access to the named artifact.
func (s *Store) AccessOf(name, user string) Access {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.perms[strings.ToLower(name)][user]
}

// Get fetches an artifact, enforcing at least view access.
func (s *Store) Get(name, user string) (*Artifact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	key := strings.ToLower(name)
	a, ok := s.byName[key]
	if !ok {
		return nil, fmt.Errorf("artifact: no artifact %q", name)
	}
	if s.perms[key][user] < ViewAccess {
		return nil, fmt.Errorf("artifact: %s has no access to %q", user, name)
	}
	return a, nil
}

// Share grants a user access to an artifact; only owners and editors may
// share, and only owners may grant edit.
func (s *Store) Share(name, byUser, withUser string, access Access) error {
	if access != ViewAccess && access != EditAccess {
		return fmt.Errorf("artifact: can only grant view or edit, not %v", access)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.byName[key]; !ok {
		return fmt.Errorf("artifact: no artifact %q", name)
	}
	granter := s.perms[key][byUser]
	if granter < EditAccess {
		return fmt.Errorf("artifact: %s cannot share %q", byUser, name)
	}
	if access == EditAccess && granter < OwnerAccess {
		return fmt.Errorf("artifact: only the owner may grant edit on %q", name)
	}
	s.perms[key][withUser] = access
	return nil
}

// Revoke removes a user's access (owners cannot be revoked).
func (s *Store) Revoke(name, byUser, fromUser string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.byName[key]; !ok {
		return fmt.Errorf("artifact: no artifact %q", name)
	}
	if s.perms[key][byUser] < OwnerAccess {
		return fmt.Errorf("artifact: %s cannot revoke access on %q", byUser, name)
	}
	if s.perms[key][fromUser] >= OwnerAccess {
		return fmt.Errorf("artifact: cannot revoke the owner of %q", name)
	}
	delete(s.perms[key], fromUser)
	return nil
}

// CreateSecretLink mints a secret that grants view access to the artifact
// without a platform account (§2.4's URL sharing). The returned secret is
// the link's key material.
func (s *Store) CreateSecretLink(name, byUser string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.byName[key]; !ok {
		return "", fmt.Errorf("artifact: no artifact %q", name)
	}
	if s.perms[key][byUser] < EditAccess {
		return "", fmt.Errorf("artifact: %s cannot create links for %q", byUser, name)
	}
	buf := make([]byte, 16)
	if _, err := s.randRead(buf); err != nil {
		return "", fmt.Errorf("artifact: generating secret: %w", err)
	}
	secret := hex.EncodeToString(buf)
	s.secrets[secret] = key
	return secret, nil
}

// GetBySecret resolves a secret link to its artifact (view-only).
func (s *Store) GetBySecret(secret string) (*Artifact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	key, ok := s.secrets[secret]
	if !ok {
		return nil, fmt.Errorf("artifact: invalid or revoked link")
	}
	a, ok := s.byName[key]
	if !ok {
		return nil, fmt.Errorf("artifact: linked artifact was deleted")
	}
	return a, nil
}

// RevokeSecret invalidates a secret link.
func (s *Store) RevokeSecret(secret, byUser string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.secrets[secret]
	if !ok {
		return fmt.Errorf("artifact: unknown link")
	}
	if s.perms[key][byUser] < EditAccess {
		return fmt.Errorf("artifact: %s cannot revoke links", byUser)
	}
	delete(s.secrets, secret)
	return nil
}

// Rename changes an artifact's name (edit access required).
func (s *Store) Rename(name, byUser, newName string) error {
	if newName == "" {
		return fmt.Errorf("artifact: new name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	newKey := strings.ToLower(newName)
	a, ok := s.byName[key]
	if !ok {
		return fmt.Errorf("artifact: no artifact %q", name)
	}
	if s.perms[key][byUser] < EditAccess {
		return fmt.Errorf("artifact: %s cannot rename %q", byUser, name)
	}
	if _, dup := s.byName[newKey]; dup && newKey != key {
		return fmt.Errorf("artifact: %q already exists", newName)
	}
	delete(s.byName, key)
	a.Name = newName
	s.byName[newKey] = a
	s.perms[newKey] = s.perms[key]
	if newKey != key {
		delete(s.perms, key)
	}
	for secret, target := range s.secrets {
		if target == key {
			s.secrets[secret] = newKey
		}
	}
	return nil
}

// Delete removes an artifact (owner only) and invalidates its links.
func (s *Store) Delete(name, byUser string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.byName[key]; !ok {
		return fmt.Errorf("artifact: no artifact %q", name)
	}
	if s.perms[key][byUser] < OwnerAccess {
		return fmt.Errorf("artifact: only the owner may delete %q", name)
	}
	delete(s.byName, key)
	delete(s.perms, key)
	for secret, target := range s.secrets {
		if target == key {
			delete(s.secrets, secret)
		}
	}
	return nil
}

// List returns the names of artifacts user can at least view, sorted.
func (s *Store) List(user string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	for key, a := range s.byName {
		if s.perms[key][user] >= ViewAccess {
			names = append(names, a.Name)
		}
	}
	sort.Strings(names)
	return names
}

// MarkRefreshed stamps a refresh time after a recipe replay.
func (s *Store) MarkRefreshed(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.byName[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("artifact: no artifact %q", name)
	}
	a.RefreshedAt = s.clock()
	return nil
}
